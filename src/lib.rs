//! `fdb` — a functional database with derived-function identification and
//! side-effect-free updates.
//!
//! This is a from-scratch Rust reproduction of *"Identifying and Update of
//! Derived Functions in Functional Databases"* (Yerneni & Lanka, ICDE
//! 1989). The workspace is re-exported here so downstream users depend on
//! one crate:
//!
//! * [`types`] — schemas, values, functionalities, derivations;
//! * [`graph`] — the function graph, Algorithm AMS (minimal schema under
//!   the Unique Form Assumption) and the Method 2.1 interactive design
//!   aid;
//! * [`storage`] — extensional tables with three-valued truth, negated
//!   conjunctions (NC) and null-valued chains (NVC);
//! * [`core`] — the database engine: updates, queries, consistency,
//!   FD-based ambiguity resolution, snapshots;
//! * [`check`] — the whole-program static analyzer behind `CHECK`,
//!   `STRICT` and the `fdb-lint` CLI (typed `FDB0xx` diagnostics);
//! * [`lang`] — a DAPLEX-flavoured textual front end and REPL;
//! * [`obs`] — the process-wide metrics registry, structured tracer and
//!   exporters behind `STATS` and `EXPLAIN ANALYZE`;
//! * [`relational`] — the Dayal–Bernstein / Fagin–Ullman–Vardi view-update
//!   baselines the paper compares against;
//! * [`workload`] — seeded generators and the paper's university example.
//!
//! # Quickstart
//!
//! ```
//! use fdb::core::Database;
//! use fdb::storage::Truth;
//! use fdb::types::{Derivation, Schema, Step, Value};
//!
//! // Schema: pupil is derived as teach o class_list.
//! let schema = Schema::builder()
//!     .function("teach", "faculty", "course", "many-many")
//!     .function("class_list", "course", "student", "many-many")
//!     .function("pupil", "faculty", "student", "many-many")
//!     .build()?;
//! let mut db = Database::new(schema);
//! let (teach, class_list, pupil) = (
//!     db.resolve("teach")?,
//!     db.resolve("class_list")?,
//!     db.resolve("pupil")?,
//! );
//! db.register_derived(
//!     pupil,
//!     vec![Derivation::new(vec![Step::identity(teach), Step::identity(class_list)])?],
//! )?;
//!
//! // Base updates hit the stored tables…
//! db.insert(teach, Value::atom("euclid"), Value::atom("math"))?;
//! db.insert(class_list, Value::atom("math"), Value::atom("john"))?;
//! db.insert(class_list, Value::atom("math"), Value::atom("bill"))?;
//!
//! // …derived updates store partial information instead of guessing.
//! db.delete(pupil, &Value::atom("euclid"), &Value::atom("john"))?;
//! assert_eq!(db.truth(pupil, &Value::atom("euclid"), &Value::atom("john"))?, Truth::False);
//! // The sibling fact is NOT collaterally deleted — it becomes ambiguous.
//! assert_eq!(db.truth(pupil, &Value::atom("euclid"), &Value::atom("bill"))?, Truth::Ambiguous);
//! # Ok::<(), fdb::types::FdbError>(())
//! ```

#![forbid(unsafe_code)]

pub use fdb_check as check;
pub use fdb_core as core;
pub use fdb_exec as exec;
pub use fdb_governor as governor;
pub use fdb_graph as graph;
pub use fdb_lang as lang;
pub use fdb_obs as obs;
pub use fdb_relational as relational;
pub use fdb_repl as repl;
pub use fdb_storage as storage;
pub use fdb_types as types;
pub use fdb_workload as workload;
