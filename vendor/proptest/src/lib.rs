//! Offline stand-in for `proptest`.
//!
//! Supports the API subset this workspace's property tests use:
//! `proptest!` with an optional `#![proptest_config(..)]` header,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`, `prop_oneof!`,
//! numeric-range strategies, `any::<T>()`, `prop::sample::select`,
//! `proptest::collection::vec`, string strategies from a character-class
//! regex subset (`"[a-z][a-z0-9_]{0,12}"`), and `.prop_map`/
//! `.prop_flat_map`. Generation is deterministic per test function (no
//! shrinking — failures report the generated case instead).

pub mod test_runner {
    use rand::{RngCore, SeedableRng};

    /// Deterministic RNG driving the generated cases.
    #[derive(Clone, Debug)]
    pub struct TestRng(rand::rngs::StdRng);

    impl TestRng {
        /// Creates the deterministic default stream.
        pub fn deterministic(salt: u64) -> Self {
            TestRng(rand::rngs::StdRng::seed_from_u64(
                0x70726f70_74657374u64 ^ salt,
            ))
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Uniform draw from `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0);
            self.next_u64() % bound
        }
    }

    /// A failed test case.
    #[derive(Debug)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError { msg: msg.into() }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.msg)
        }
    }

    /// Result type the `proptest!` body closures return.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

/// Run-time configuration for `proptest!` blocks.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Feeds generated values into a dependent strategy.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Boxes the strategy behind a uniform type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: std::rc::Rc::new(move |rng: &mut TestRng| self.generate(rng)),
            }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A type-erased strategy.
    #[derive(Clone)]
    pub struct BoxedStrategy<V> {
        inner: std::rc::Rc<dyn Fn(&mut TestRng) -> V>,
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            (self.inner)(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (S0 0, S1 1);
        (S0 0, S1 1, S2 2);
        (S0 0, S1 1, S2 2, S3 3);
        (S0 0, S1 1, S2 2, S3 3, S4 4);
    }

    /// One alternative of a [`Union`]: a boxed generator closure.
    pub type UnionArm<V> = Box<dyn Fn(&mut TestRng) -> V>;

    /// Uniform choice between equally-weighted alternatives
    /// (backs `prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<UnionArm<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union from generator closures.
        pub fn new(arms: Vec<UnionArm<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            (self.arms[i])(rng)
        }
    }

    /// Uniform choice from a fixed list (backs `prop::sample::select`).
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Select<T> {
        pub(crate) fn new(options: Vec<T>) -> Self {
            assert!(!options.is_empty(), "select from empty list");
            Select { options }
        }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128 + 1) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (start as i128 + v as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// String strategy from a character-class regex subset: a sequence
    /// of `[...]` classes (or literal/escaped characters), each with an
    /// optional `{n}` / `{m,n}` repetition.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let atoms = parse_pattern(self);
            let mut out = String::new();
            for atom in &atoms {
                let n = if atom.min == atom.max {
                    atom.min
                } else {
                    atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize
                };
                for _ in 0..n {
                    let i = rng.below(atom.chars.len() as u64) as usize;
                    out.push(atom.chars[i]);
                }
            }
            out
        }
    }

    struct PatternAtom {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    fn parse_pattern(pat: &str) -> Vec<PatternAtom> {
        let chars: Vec<char> = pat.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let set = match chars[i] {
                '[' => {
                    let (set, next) = parse_class(&chars, i + 1, pat);
                    i = next;
                    set
                }
                '\\' => {
                    i += 2;
                    vec![*chars
                        .get(i - 1)
                        .unwrap_or_else(|| panic!("dangling escape in pattern {pat:?}"))]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            let (min, max) = if chars.get(i) == Some(&'{') {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed repetition in pattern {pat:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad repetition lower bound"),
                        hi.trim().parse().expect("bad repetition upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("bad repetition count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(min <= max, "bad repetition in pattern {pat:?}");
            atoms.push(PatternAtom {
                chars: set,
                min,
                max,
            });
        }
        atoms
    }

    fn parse_class(chars: &[char], mut i: usize, pat: &str) -> (Vec<char>, usize) {
        // First decode class members into (char, was_escaped) pairs, then
        // resolve `-` ranges between unescaped neighbours.
        let mut members: Vec<(char, bool)> = Vec::new();
        while i < chars.len() && chars[i] != ']' {
            if chars[i] == '\\' {
                let c = *chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("dangling escape in class of {pat:?}"));
                members.push((c, true));
                i += 2;
            } else {
                members.push((chars[i], false));
                i += 1;
            }
        }
        assert!(
            chars.get(i) == Some(&']'),
            "unclosed character class in pattern {pat:?}"
        );
        let mut set = Vec::new();
        let mut j = 0;
        while j < members.len() {
            // `x-y` with an unescaped interior dash denotes a range; a
            // dash in first or last position is a literal.
            if j + 2 < members.len() && members[j + 1] == ('-', false) {
                let (lo, hi) = (members[j].0, members[j + 2].0);
                assert!(lo <= hi, "inverted range in class of {pat:?}");
                for v in (lo as u32)..=(hi as u32) {
                    if let Some(ch) = char::from_u32(v) {
                        set.push(ch);
                    }
                }
                j += 3;
            } else {
                set.push(members[j].0);
                j += 1;
            }
        }
        assert!(!set.is_empty(), "empty character class in pattern {pat:?}");
        (set, i + 1)
    }

    /// A `PhantomData`-tagged strategy for `any::<T>()`.
    pub struct Any<T> {
        pub(crate) _marker: PhantomData<T>,
    }

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A length specification for collection strategies: a fixed size or a
    /// (half-open or inclusive) range, mirroring `proptest::collection::SizeRange`.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        start: usize,
        /// Exclusive upper bound.
        end: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                start: *r.start(),
                end: *r.end() + 1,
            }
        }
    }

    /// A strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty vec size range");
            let span = (self.size.end - self.size.start) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies, mirroring `proptest::sample`.
pub mod sample {
    use crate::strategy::Select;

    /// Uniform choice from `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select::new(options)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T>() -> strategy::Any<T>
where
    strategy::Any<T>: strategy::Strategy,
{
    strategy::Any {
        _marker: std::marker::PhantomData,
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestCaseResult, TestRng};
    pub use crate::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Module alias so `prop::sample::select` / `prop::collection::vec`
    /// resolve after a prelude glob import.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Defines property test functions.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                // Salt the stream with the test name so sibling
                // properties explore different cases.
                let __salt = stringify!($name)
                    .bytes()
                    .fold(0xcbf29ce484222325u64, |h, b| {
                        (h ^ b as u64).wrapping_mul(0x100000001b3)
                    });
                let mut __rng = $crate::test_runner::TestRng::deterministic(__salt);
                for __case in 0..__config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                    let __result: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        Ok(())
                    })();
                    if let Err(__e) = __result {
                        panic!(
                            "proptest `{}` failed at case {}: {}",
                            stringify!($name),
                            __case,
                            __e
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, $($fmt)*);
    }};
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(
                {
                    let __s = $strat;
                    ::std::boxed::Box::new(move |__rng: &mut $crate::test_runner::TestRng| {
                        $crate::strategy::Strategy::generate(&__s, __rng)
                    }) as ::std::boxed::Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>
                }
            ),+
        ])
    };
}
