//! Offline stand-in for `ctrlc`.
//!
//! Registers a process-wide Ctrl-C (SIGINT) handler via the C runtime's
//! `signal(2)`, which is always available wherever std is. Unlike the
//! real crate there is no dedicated signal thread, so the callback runs
//! in signal-handler context: it MUST be async-signal-safe. Setting an
//! atomic flag (e.g. a cancellation token) is fine; allocating, locking,
//! or doing I/O is not.

use std::fmt;
use std::sync::OnceLock;

/// Why a handler could not be installed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// `set_handler` was already called once; the C API offers no safe
    /// way to swap a closure atomically, so one handler per process.
    MultipleHandlers,
    /// The OS refused to install the handler.
    System,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::MultipleHandlers => write!(f, "a Ctrl-C handler is already installed"),
            Error::System => write!(f, "the OS rejected the signal handler"),
        }
    }
}

impl std::error::Error for Error {}

static HANDLER: OnceLock<Box<dyn Fn() + Send + Sync>> = OnceLock::new();

#[cfg(unix)]
mod sys {
    extern "C" {
        /// `signal(2)` from the C runtime std already links against.
        pub fn signal(signum: i32, handler: usize) -> usize;
    }

    pub const SIGINT: i32 = 2;
    pub const SIG_ERR: usize = usize::MAX;

    pub extern "C" fn trampoline(_signum: i32) {
        if let Some(h) = super::HANDLER.get() {
            h();
        }
    }

    pub fn install() -> Result<(), super::Error> {
        let prev = unsafe { signal(SIGINT, trampoline as extern "C" fn(i32) as usize) };
        if prev == SIG_ERR {
            return Err(super::Error::System);
        }
        Ok(())
    }
}

#[cfg(not(unix))]
mod sys {
    /// No signal support off unix in this stand-in: registration
    /// succeeds but the handler never fires.
    pub fn install() -> Result<(), super::Error> {
        Ok(())
    }
}

/// Installs `handler` to run on Ctrl-C (SIGINT). The handler must be
/// async-signal-safe — restrict it to atomic operations. Can only be
/// called once per process.
pub fn set_handler<F>(handler: F) -> Result<(), Error>
where
    F: Fn() + Send + Sync + 'static,
{
    HANDLER
        .set(Box::new(handler))
        .map_err(|_| Error::MultipleHandlers)?;
    sys::install()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn handler_installs_once_and_fires_on_raise() {
        let hit = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&hit);
        set_handler(move || flag.store(true, Ordering::SeqCst)).unwrap();
        assert_eq!(set_handler(|| {}).unwrap_err(), Error::MultipleHandlers,);
        #[cfg(unix)]
        {
            extern "C" {
                fn raise(signum: i32) -> i32;
            }
            unsafe { raise(2) };
            assert!(hit.load(Ordering::SeqCst));
        }
    }
}
