//! Offline stand-in for `serde`.
//!
//! The registry is unreachable in this build environment, so this crate
//! provides the subset of serde's surface the workspace uses: derivable
//! `Serialize`/`Deserialize` traits over a self-describing [`Content`]
//! tree (the vendored `serde_json` renders `Content` to and from JSON
//! text with the same conventions as the real crates — externally
//! tagged enums, transparent newtypes, stringified integer map keys).

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::{BuildHasher, Hash};
use std::rc::Rc;
use std::sync::Arc;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the data model both the derive
/// macros and `serde_json` speak).
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered key→value map.
    Map(Vec<(Content, Content)>),
}

impl Content {
    /// The entries of a map, if this is one.
    pub fn as_map(&self) -> Option<&[(Content, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The items of a sequence, if this is one.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Looks up `key` in serialized map entries (string keys only).
pub fn map_get<'a>(entries: &'a [(Content, Content)], key: &str) -> Option<&'a Content> {
    entries
        .iter()
        .find(|(k, _)| matches!(k, Content::Str(s) if s == key))
        .map(|(_, v)| v)
}

/// A deserialization error.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Serialization into the [`Content`] data model.
pub trait Serialize {
    /// Renders `self` as a content tree.
    fn to_content(&self) -> Content;
}

/// Deserialization from the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a content tree.
    fn from_content(c: &Content) -> Result<Self, DeError>;
}

// --- primitives ---

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v = match c {
                    Content::U64(v) => *v,
                    Content::I64(v) if *v >= 0 => *v as u64,
                    // Map keys arrive as strings; accept numeric text.
                    Content::Str(s) => s
                        .parse::<u64>()
                        .map_err(|_| DeError::new(format!("expected unsigned integer, got `{s}`")))?,
                    other => return Err(DeError::new(format!("expected unsigned integer, got {other:?}"))),
                };
                <$t>::try_from(v).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 { Content::U64(v as u64) } else { Content::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v = match c {
                    Content::I64(v) => *v,
                    Content::U64(v) => i64::try_from(*v)
                        .map_err(|_| DeError::new("integer out of range"))?,
                    Content::Str(s) => s
                        .parse::<i64>()
                        .map_err(|_| DeError::new(format!("expected integer, got `{s}`")))?,
                    other => return Err(DeError::new(format!("expected integer, got {other:?}"))),
                };
                <$t>::try_from(v).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::F64(v) => Ok(*v),
            Content::U64(v) => Ok(*v as f64),
            Content::I64(v) => Ok(*v as f64),
            other => Err(DeError::new(format!("expected float, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        f64::from_content(c).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let s = String::from_content(c)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(ch), None) => Ok(ch),
            _ => Err(DeError::new("expected single-character string")),
        }
    }
}

// --- references and smart pointers ---

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}
impl Deserialize for Arc<str> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        String::from_content(c).map(Arc::from)
    }
}
impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Arc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}
impl Deserialize for Rc<str> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        String::from_content(c).map(Rc::from)
    }
}

// --- std containers ---

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_seq()
            .ok_or_else(|| DeError::new("expected sequence"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_seq()
            .ok_or_else(|| DeError::new("expected sequence"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize + Eq + Hash, S: BuildHasher> Serialize for HashSet<T, S> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize + Eq + Hash, S: BuildHasher + Default> Deserialize for HashSet<T, S> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_seq()
            .ok_or_else(|| DeError::new("expected sequence"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_content(), v.to_content()))
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_map()
            .ok_or_else(|| DeError::new("expected map"))?
            .iter()
            .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
            .collect()
    }
}

impl<K: Serialize + Eq + Hash, V: Serialize, S: BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_content(), v.to_content()))
                .collect(),
        )
    }
}
impl<K: Deserialize + Eq + Hash, V: Deserialize, S: BuildHasher + Default> Deserialize
    for HashMap<K, V, S>
{
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_map()
            .ok_or_else(|| DeError::new("expected map"))?
            .iter()
            .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
            .collect()
    }
}

// --- tuples ---

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let s = c.as_seq().ok_or_else(|| DeError::new("expected tuple sequence"))?;
                Ok(($(
                    $t::from_content(
                        s.get($n).ok_or_else(|| DeError::new("tuple too short"))?,
                    )?,
                )+))
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}
impl Deserialize for () {
    fn from_content(_: &Content) -> Result<Self, DeError> {
        Ok(())
    }
}
