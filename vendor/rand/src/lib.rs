//! Offline stand-in for `rand` 0.8.
//!
//! Implements the API subset this workspace uses — `SeedableRng::
//! seed_from_u64`, `Rng::gen_range`/`gen_bool`, `SliceRandom::shuffle`/
//! `choose` — over a deterministic xoshiro256** core seeded via
//! SplitMix64 (the same expansion real rand uses for `seed_from_u64`,
//! though the streams differ; callers only rely on determinism, not on
//! matching upstream streams).

use std::ops::{Range, RangeInclusive};

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word in the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from OS entropy; this offline stand-in derives
    /// the seed from the system clock instead.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(nanos)
    }
}

/// Types usable as the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let v = (rng.next_u64() as u128) % span;
                (self.start as u128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as u128 + v) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range_signed!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// High-level sampling helpers, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// xoshiro256** core shared by [`rngs::StdRng`] and [`rngs::SmallRng`].
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // Guard against the all-zero state.
        if s.iter().all(|&w| w == 0) {
            s[0] = 0x9e3779b97f4a7c15;
        }
        Xoshiro256 { s }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Named generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// The default deterministic generator.
    #[derive(Clone, Debug)]
    pub struct StdRng(Xoshiro256);

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256::from_u64(seed))
        }
    }

    /// A small, fast generator (same core as [`StdRng`] here).
    #[derive(Clone, Debug)]
    pub struct SmallRng(Xoshiro256);

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(Xoshiro256::from_u64(seed))
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..=4u32);
            assert!(w <= 4);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
