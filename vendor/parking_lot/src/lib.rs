//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API.
//! A poisoned std lock (a writer panicked) is recovered by taking the
//! inner guard anyway, matching parking_lot's behaviour of not
//! propagating panics to other lock users.

use std::fmt;
use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard, TryLockError,
};
use std::time::{Duration, Instant};

/// Guard types; the std guards already have the right shape, so the
/// stand-in re-exports them under parking_lot's names.
pub type RwLockReadGuard<'a, T> = StdReadGuard<'a, T>;
/// Write-guard alias, see [`RwLockReadGuard`].
pub type RwLockWriteGuard<'a, T> = StdWriteGuard<'a, T>;
/// Mutex-guard alias, see [`RwLockReadGuard`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

/// Backoff sleep for the timed acquisition loops. std locks have no
/// native timed wait, so `*_for` methods spin with a short sleep; the
/// interval bounds how far past the timeout a success can land.
const TIMED_BACKOFF: Duration = Duration::from_micros(200);

/// A reader-writer lock with parking_lot's panic-tolerant API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> StdReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> StdWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<StdReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<StdWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts shared read access, giving up after `timeout`.
    pub fn try_read_for(&self, timeout: Duration) -> Option<StdReadGuard<'_, T>> {
        timed(timeout, || self.try_read())
    }

    /// Attempts exclusive write access, giving up after `timeout`.
    pub fn try_write_for(&self, timeout: Duration) -> Option<StdWriteGuard<'_, T>> {
        timed(timeout, || self.try_write())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// Try-acquire loop with sleep backoff; always makes at least one
/// attempt, so a zero timeout degrades to plain `try_*`.
fn timed<G>(timeout: Duration, mut attempt: impl FnMut() -> Option<G>) -> Option<G> {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(g) = attempt() {
            return Some(g);
        }
        if Instant::now() >= deadline {
            return None;
        }
        std::thread::sleep(TIMED_BACKOFF.min(deadline.saturating_duration_since(Instant::now())));
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

/// A mutex with parking_lot's panic-tolerant API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> StdMutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<StdMutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire the lock, giving up after `timeout`.
    pub fn try_lock_for(&self, timeout: Duration) -> Option<StdMutexGuard<'_, T>> {
        timed(timeout, || self.try_lock())
    }

    /// Whether the mutex is currently held (a point-in-time probe, as in
    /// parking_lot; the answer may be stale by the time it is used).
    pub fn is_locked(&self) -> bool {
        self.try_lock().is_none()
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}
