//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API.
//! A poisoned std lock (a writer panicked) is recovered by taking the
//! inner guard anyway, matching parking_lot's behaviour of not
//! propagating panics to other lock users.

use std::fmt;
use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard,
};

/// A reader-writer lock with parking_lot's panic-tolerant API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> StdReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> StdWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

/// A mutex with parking_lot's panic-tolerant API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> StdMutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}
