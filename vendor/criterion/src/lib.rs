//! Offline stand-in for `criterion`.
//!
//! Implements the API subset this workspace's benches use — groups,
//! `bench_function`/`bench_with_input`, `iter`/`iter_batched`,
//! `BenchmarkId`, `Throughput` — with a simple mean-of-N timing loop
//! instead of criterion's statistical machinery. Output is one line per
//! benchmark: `group/id  <mean time per iteration>`.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard black box.
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement time; accepted for API compatibility (the
    /// stub's loop count is governed by `sample_size`).
    pub fn measurement_time(self, _: Duration) -> Self {
        self
    }

    /// Sets the warm-up time; accepted for API compatibility.
    pub fn warm_up_time(self, _: Duration) -> Self {
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_one(&id.to_string(), self.sample_size, &mut f);
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Records the workload size; the stub accepts and ignores it.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Sets the measurement time; accepted for API compatibility.
    pub fn measurement_time(&mut self, _: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Runs one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, f: &mut F) {
    let mut bencher = Bencher {
        samples,
        total: Duration::ZERO,
        iterations: 0,
    };
    f(&mut bencher);
    let mean_ns = if bencher.iterations == 0 {
        0.0
    } else {
        bencher.total.as_nanos() as f64 / bencher.iterations as f64
    };
    println!("{label:<60} {}", format_time(mean_ns));
}

fn format_time(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:9.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:9.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:9.3} µs", ns / 1e3)
    } else {
        format!("{ns:9.1} ns")
    }
}

/// Times closures; handed to benchmark bodies.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times `f`, running it `samples` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.total += start.elapsed();
            self.iterations += 1;
        }
    }

    /// Times `routine` over fresh inputs from `setup` (setup untimed).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iterations += 1;
        }
    }

    /// Like [`Bencher::iter_batched`] but passing the input by reference.
    pub fn iter_batched_ref<I, O, S: FnMut() -> I, R: FnMut(&mut I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        for _ in 0..self.samples {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.total += start.elapsed();
            self.iterations += 1;
        }
    }
}

/// Batch sizing hints (ignored by the stub's timing loop).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small inputs: many per batch.
    SmallInput,
    /// Large inputs: one per batch.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Workload-size annotations for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", name.into(), param),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            text: param.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
