//! Offline stand-in for `serde_json`.
//!
//! Serializes the vendored `serde` [`Content`] data model to compact
//! JSON text and parses JSON text back, following the real crate's
//! conventions: externally tagged enums, integer map keys rendered as
//! strings, strict string escaping with `\uXXXX` support (including
//! surrogate pairs).

use std::fmt;

use serde::{Content, Deserialize, Serialize};

/// A serialization or parse error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out)?;
    Ok(out)
}

/// Parses JSON text into a value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let content = parse(s)?;
    T::from_content(&content).map_err(|e| Error::new(e.to_string()))
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_content(c: &Content, out: &mut String) -> Result<(), Error> {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if v.is_finite() {
                // Match serde_json: always keep a fractional marker.
                let s = v.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                return Err(Error::new("cannot serialize non-finite float"));
            }
        }
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(item, out)?;
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                match k {
                    Content::Str(s) => write_escaped(s, out),
                    Content::U64(n) => write_escaped(&n.to_string(), out),
                    Content::I64(n) => write_escaped(&n.to_string(), out),
                    other => {
                        return Err(Error::new(format!(
                            "map key must be a string or integer, got {other:?}"
                        )))
                    }
                }
                out.push(':');
                write_content(v, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses JSON text into a [`Content`] tree.
pub fn parse(s: &str) -> Result<Content, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') => {
                if self.literal("null") {
                    Ok(Content::Null)
                } else {
                    Err(Error::new("invalid literal"))
                }
            }
            Some(b't') => {
                if self.literal("true") {
                    Ok(Content::Bool(true))
                } else {
                    Err(Error::new("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.literal("false") {
                    Ok(Content::Bool(false))
                } else {
                    Err(Error::new("invalid literal"))
                }
            }
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!(
                "unexpected character at offset {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error::new("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((Content::Str(key), value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(Error::new("expected `,` or `}` in object")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let slice = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let v = u16::from_str_radix(slice, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-path over plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => {
                            out.push('"');
                            self.pos += 1;
                        }
                        Some(b'\\') => {
                            out.push('\\');
                            self.pos += 1;
                        }
                        Some(b'/') => {
                            out.push('/');
                            self.pos += 1;
                        }
                        Some(b'n') => {
                            out.push('\n');
                            self.pos += 1;
                        }
                        Some(b't') => {
                            out.push('\t');
                            self.pos += 1;
                        }
                        Some(b'r') => {
                            out.push('\r');
                            self.pos += 1;
                        }
                        Some(b'b') => {
                            out.push('\u{08}');
                            self.pos += 1;
                        }
                        Some(b'f') => {
                            out.push('\u{0c}');
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.literal("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let c = 0x10000
                                    + ((u32::from(hi) - 0xD800) << 10)
                                    + (u32::from(lo) - 0xDC00);
                                char::from_u32(c).ok_or_else(|| Error::new("invalid code point"))?
                            } else {
                                char::from_u32(u32::from(hi))
                                    .ok_or_else(|| Error::new("invalid code point"))?
                            };
                            out.push(ch);
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Content::I64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\\c\n").unwrap(), r#""a\"b\\c\n""#);
        assert_eq!(from_str::<String>(r#""a\"b\\c\n""#).unwrap(), "a\"b\\c\n");
    }

    #[test]
    fn round_trip_containers() {
        let v = vec![(1u64, "x".to_string()), (2, "y".to_string())];
        let s = to_string(&v).unwrap();
        assert_eq!(s, r#"[[1,"x"],[2,"y"]]"#);
        let back: Vec<(u64, String)> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str::<String>(r#""é""#).unwrap(), "é");
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "😀");
    }

    #[test]
    fn map_keys_stringify() {
        let mut m = std::collections::BTreeMap::new();
        m.insert(3u64, "x".to_string());
        let s = to_string(&m).unwrap();
        assert_eq!(s, r#"{"3":"x"}"#);
        let back: std::collections::BTreeMap<u64, String> = from_str(&s).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("{not json").is_err());
        assert!(from_str::<u32>("42 junk").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
