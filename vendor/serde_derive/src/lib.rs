//! Offline stand-in for `serde_derive`.
//!
//! The real crates.io `serde_derive` is unavailable in this build
//! environment, so this proc-macro derives the vendored `serde` crate's
//! simplified data-model traits (`Serialize`/`Deserialize` over a
//! self-describing `Content` tree). It hand-parses the item token stream
//! (no `syn`/`quote`) and supports exactly the shapes this workspace
//! uses: non-generic structs (named, tuple, unit) and enums (unit,
//! tuple and struct variants), plus the `#[serde(transparent)]`,
//! `#[serde(skip)]` and `#[serde(default)]` attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Default)]
struct FieldAttrs {
    skip: bool,
    default: bool,
}

#[derive(Debug)]
struct Field {
    name: String,
    attrs: FieldAttrs,
}

#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Kind {
    Struct(Shape),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Input {
    name: String,
    transparent: bool,
    kind: Kind,
}

/// Collects `#[...]` attribute groups, returning serde-relevant flags.
/// Consumes tokens from the iterator until a non-attribute token, which
/// is returned.
fn skip_attrs(
    iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>,
) -> (FieldAttrs, bool) {
    let mut attrs = FieldAttrs::default();
    let mut transparent = false;
    while let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() != '#' {
            break;
        }
        iter.next(); // '#'
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                let mut inner = g.stream().into_iter();
                if let Some(TokenTree::Ident(id)) = inner.next() {
                    if id.to_string() == "serde" {
                        if let Some(TokenTree::Group(args)) = inner.next() {
                            for t in args.stream() {
                                if let TokenTree::Ident(flag) = t {
                                    match flag.to_string().as_str() {
                                        "skip" | "skip_serializing" | "skip_deserializing" => {
                                            attrs.skip = true
                                        }
                                        "default" => attrs.default = true,
                                        "transparent" => transparent = true,
                                        other => panic!(
                                            "serde_derive stub: unsupported serde attribute `{other}`"
                                        ),
                                    }
                                }
                            }
                        }
                    }
                }
            }
            other => panic!("serde_derive stub: malformed attribute: {other:?}"),
        }
    }
    (attrs, transparent)
}

/// Skips an optional visibility qualifier (`pub`, `pub(crate)`, …).
fn skip_vis(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if let Some(TokenTree::Ident(id)) = iter.peek() {
        if id.to_string() == "pub" {
            iter.next();
            if let Some(TokenTree::Group(g)) = iter.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    iter.next();
                }
            }
        }
    }
}

/// Consumes type tokens up to a `,` at angle-bracket depth 0 (the comma
/// is consumed too). Returns `true` if any tokens were consumed.
fn skip_type(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) -> bool {
    let mut depth = 0i32;
    let mut any = false;
    while let Some(tt) = iter.peek() {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    iter.next();
                    return any;
                }
                _ => {}
            }
        }
        any = true;
        iter.next();
    }
    any
}

/// Parses the fields of a brace-delimited (named) body.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let (attrs, _) = skip_attrs(&mut iter);
        skip_vis(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive stub: expected field name, got {other:?}"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive stub: expected `:` after field, got {other:?}"),
        }
        skip_type(&mut iter);
        fields.push(Field { name, attrs });
    }
    fields
}

/// Counts the fields of a parenthesised (tuple) body.
fn parse_tuple_fields(stream: TokenStream) -> usize {
    let mut iter = stream.into_iter().peekable();
    let mut count = 0;
    loop {
        let (_, _) = skip_attrs(&mut iter);
        skip_vis(&mut iter);
        if iter.peek().is_none() {
            break;
        }
        if !skip_type(&mut iter) {
            break;
        }
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        let (_, _) = skip_attrs(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive stub: expected variant name, got {other:?}"),
        };
        let shape = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = parse_tuple_fields(g.stream());
                iter.next();
                Shape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                iter.next();
                Shape::Named(fields)
            }
            _ => Shape::Unit,
        };
        // Consume a trailing comma, if any.
        if let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == ',' {
                iter.next();
            }
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let mut iter = input.into_iter().peekable();
    let (_, transparent) = skip_attrs(&mut iter);
    skip_vis(&mut iter);
    let kw = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected struct/enum, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected item name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive stub: generic types are not supported (type {name})");
        }
    }
    let kind = match kw.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(Shape::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Struct(Shape::Tuple(parse_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Struct(Shape::Unit),
            other => panic!("serde_derive stub: unsupported struct body: {other:?}"),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive stub: unsupported enum body: {other:?}"),
        },
        other => panic!("serde_derive stub: cannot derive for `{other}` items"),
    };
    Input {
        name,
        transparent,
        kind,
    }
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Shape::Named(fields)) => {
            if input.transparent {
                let f = fields
                    .iter()
                    .find(|f| !f.attrs.skip)
                    .expect("transparent struct needs a field");
                format!("::serde::Serialize::to_content(&self.{})", f.name)
            } else {
                let mut s = String::from("let mut __m = ::std::vec::Vec::new();\n");
                for f in fields.iter().filter(|f| !f.attrs.skip) {
                    s.push_str(&format!(
                        "__m.push((::serde::Content::Str(\"{0}\".to_string()), ::serde::Serialize::to_content(&self.{0})));\n",
                        f.name
                    ));
                }
                s.push_str("::serde::Content::Map(__m)");
                s
            }
        }
        Kind::Struct(Shape::Tuple(1)) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Kind::Struct(Shape::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(vec![{}])", items.join(", "))
        }
        Kind::Struct(Shape::Unit) => "::serde::Content::Null".to_string(),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Content::Str(\"{vn}\".to_string()),\n"
                    )),
                    Shape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__a0) => ::serde::Content::Map(vec![(::serde::Content::Str(\"{vn}\".to_string()), ::serde::Serialize::to_content(__a0))]),\n"
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__a{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_content(__a{i})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Content::Map(vec![(::serde::Content::Str(\"{vn}\".to_string()), ::serde::Content::Seq(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let mut inner = String::from(
                            "{ let mut __m = ::std::vec::Vec::new();\n",
                        );
                        for f in fields {
                            inner.push_str(&format!(
                                "__m.push((::serde::Content::Str(\"{0}\".to_string()), ::serde::Serialize::to_content({0})));\n",
                                f.name
                            ));
                        }
                        inner.push_str("::serde::Content::Map(vec![(::serde::Content::Str(\"");
                        inner.push_str(vn);
                        inner.push_str("\".to_string()), ::serde::Content::Map(__m))]) }");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {inner},\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}\n}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n fn to_content(&self) -> ::serde::Content {{\n {body}\n }}\n}}\n"
    )
}

fn gen_named_field_reads(fields: &[Field], type_name: &str) -> String {
    let mut s = String::new();
    for f in fields {
        if f.attrs.skip {
            s.push_str(&format!(
                "{}: ::std::default::Default::default(),\n",
                f.name
            ));
        } else if f.attrs.default {
            s.push_str(&format!(
                "{0}: match ::serde::map_get(__m, \"{0}\") {{ Some(__v) => ::serde::Deserialize::from_content(__v)?, None => ::std::default::Default::default() }},\n",
                f.name
            ));
        } else {
            s.push_str(&format!(
                "{0}: ::serde::Deserialize::from_content(::serde::map_get(__m, \"{0}\").ok_or_else(|| ::serde::DeError::new(\"{1}: missing field `{0}`\"))?)?,\n",
                f.name, type_name
            ));
        }
    }
    s
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Shape::Named(fields)) => {
            if input.transparent {
                let f = fields
                    .iter()
                    .find(|f| !f.attrs.skip)
                    .expect("transparent struct needs a field");
                format!(
                    "Ok({name} {{ {}: ::serde::Deserialize::from_content(__c)? }})",
                    f.name
                )
            } else {
                format!(
                    "let __m = __c.as_map().ok_or_else(|| ::serde::DeError::new(\"{name}: expected map\"))?;\nOk({name} {{\n{}\n}})",
                    gen_named_field_reads(fields, name)
                )
            }
        }
        Kind::Struct(Shape::Tuple(1)) => {
            format!("Ok({name}(::serde::Deserialize::from_content(__c)?))")
        }
        Kind::Struct(Shape::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(__s.get({i}).ok_or_else(|| ::serde::DeError::new(\"{name}: short tuple\"))?)?"))
                .collect();
            format!(
                "let __s = __c.as_seq().ok_or_else(|| ::serde::DeError::new(\"{name}: expected sequence\"))?;\nOk({name}({}))",
                items.join(", ")
            )
        }
        Kind::Struct(Shape::Unit) => format!("Ok({name})"),
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                        payload_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                    }
                    Shape::Tuple(1) => payload_arms.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_content(__payload)?)),\n"
                    )),
                    Shape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_content(__s.get({i}).ok_or_else(|| ::serde::DeError::new(\"{name}::{vn}: short tuple\"))?)?"))
                            .collect();
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => {{ let __s = __payload.as_seq().ok_or_else(|| ::serde::DeError::new(\"{name}::{vn}: expected sequence\"))?; Ok({name}::{vn}({})) }},\n",
                            items.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => {{ let __m = __payload.as_map().ok_or_else(|| ::serde::DeError::new(\"{name}::{vn}: expected map\"))?; Ok({name}::{vn} {{\n{}\n}}) }},\n",
                            gen_named_field_reads(fields, name)
                        ));
                    }
                }
            }
            format!(
                "match __c {{\n\
                 ::serde::Content::Str(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => Err(::serde::DeError::new(format!(\"{name}: unknown variant `{{__other}}`\"))),\n}},\n\
                 ::serde::Content::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__k, __payload) = &__entries[0];\n\
                 let __k = __k.as_str().ok_or_else(|| ::serde::DeError::new(\"{name}: non-string variant key\"))?;\n\
                 match __k {{\n{payload_arms}\
                 __other => Err(::serde::DeError::new(format!(\"{name}: unknown variant `{{__other}}`\"))),\n}}\n}},\n\
                 _ => Err(::serde::DeError::new(\"{name}: expected string or single-entry map\")),\n}}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n fn from_content(__c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{\n {body}\n }}\n}}\n"
    )
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde_derive stub: generated invalid Serialize impl")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde_derive stub: generated invalid Deserialize impl")
}
