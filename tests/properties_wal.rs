//! WAL-layer property tests: arbitrary log records (null ids, multi-step
//! derivations, hostile strings) must survive the v2 frame encoding, torn
//! frames must always salvage to a clean record prefix, and concurrent
//! logged writers must replay to exactly the live state.

use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fdb::core::wal::{crc32, encode_frame, scan, LogRecord};
use fdb::core::{
    DurabilityConfig, LoggedDatabase, SharedLoggedDatabase, SimDisk, SyncPolicy, Wal, WalStorage,
};
use fdb::types::{Functionality, NullId, Value};

/// Strings that stress the framing: empty, quotes, newlines (the v1
/// format's record separator), unicode, long runs.
fn arb_name(rng: &mut StdRng) -> String {
    match rng.gen_range(0..6usize) {
        0 => String::new(),
        1 => "teach".to_owned(),
        2 => "line\nbreak \"quoted\" \\slash".to_owned(),
        3 => "näïve-función-関数".to_owned(),
        4 => "x".repeat(rng.gen_range(0..200usize)),
        _ => format!("f{}", rng.gen_range(0..50u32)),
    }
}

fn arb_value(rng: &mut StdRng) -> Value {
    if rng.gen_range(0..4usize) == 0 {
        Value::Null(NullId(rng.gen_range(0..1000u32) as u64))
    } else {
        Value::atom(arb_name(rng))
    }
}

fn arb_functionality(rng: &mut StdRng) -> Functionality {
    match rng.gen_range(0..4usize) {
        0 => Functionality::OneOne,
        1 => Functionality::OneMany,
        2 => Functionality::ManyOne,
        _ => Functionality::ManyMany,
    }
}

fn arb_record(rng: &mut StdRng) -> LogRecord {
    match rng.gen_range(0..5usize) {
        0 => LogRecord::Declare {
            name: arb_name(rng),
            domain: arb_name(rng),
            range: arb_name(rng),
            functionality: arb_functionality(rng),
        },
        1 => LogRecord::Derive {
            name: arb_name(rng),
            // Multi-step derivations with inverse marks.
            steps: (0..rng.gen_range(1..5usize))
                .map(|_| (arb_name(rng), rng.gen_range(0..2u32) == 0))
                .collect(),
        },
        2 => LogRecord::Insert {
            function: arb_name(rng),
            x: arb_value(rng),
            y: arb_value(rng),
        },
        3 => LogRecord::Delete {
            function: arb_name(rng),
            x: arb_value(rng),
            y: arb_value(rng),
        },
        _ => LogRecord::Replace {
            function: arb_name(rng),
            old: (arb_value(rng), arb_value(rng)),
            new: (arb_value(rng), arb_value(rng)),
        },
    }
}

/// Appends `records` to a fresh v2 log on a simulated disk and returns the
/// raw on-disk bytes.
fn encode_log(records: &[LogRecord]) -> Vec<u8> {
    let disk = Arc::new(SimDisk::new());
    let path = std::path::Path::new("/prop.wal");
    let mut wal = Wal::create_on(disk.clone() as Arc<dyn WalStorage>, path, 1).unwrap();
    for r in records {
        wal.append(r).unwrap();
    }
    wal.sync().unwrap();
    disk.read(path).unwrap()
}

fn v(s: &str) -> Value {
    Value::atom(s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every record written comes back identical from a scan — null ids,
    /// multi-step derivations, hostile strings and all.
    #[test]
    fn every_record_survives_the_frame_round_trip(seed in 0u64..10_000, len in 0usize..40) {
        let mut rng = StdRng::seed_from_u64(seed);
        let records: Vec<LogRecord> = (0..len).map(|_| arb_record(&mut rng)).collect();
        let bytes = encode_log(&records);
        let scanned = scan(&bytes, 1);
        prop_assert!(scanned.flaw.is_none(), "clean log scanned a flaw: {:?}", scanned.flaw);
        prop_assert_eq!(scanned.valid_len, bytes.len() as u64);
        prop_assert_eq!(scanned.records.len(), records.len());
        for (i, (seq, got)) in scanned.records.iter().enumerate() {
            prop_assert_eq!(*seq, i as u64 + 1);
            prop_assert_eq!(got, &records[i]);
        }
    }

    /// Cutting the log at any byte still salvages a clean prefix of the
    /// original records — never garbage, never a panic.
    #[test]
    fn any_truncation_salvages_a_record_prefix(seed in 0u64..10_000, len in 1usize..25) {
        let mut rng = StdRng::seed_from_u64(seed);
        let records: Vec<LogRecord> = (0..len).map(|_| arb_record(&mut rng)).collect();
        let bytes = encode_log(&records);
        let cut = rng.gen_range(0..bytes.len());
        let scanned = scan(&bytes[..cut], 1);
        prop_assert!(scanned.valid_len <= cut as u64);
        prop_assert!(scanned.records.len() <= records.len());
        for (i, (seq, got)) in scanned.records.iter().enumerate() {
            prop_assert_eq!(*seq, i as u64 + 1);
            prop_assert_eq!(got, &records[i]);
        }
    }

    /// A record written by a newer version — valid JSON, unknown type —
    /// is skipped with a warning, never an error, in both log formats
    /// and wherever it lands among known records.
    #[test]
    fn unknown_record_types_are_skipped_in_both_formats(seed in 0u64..10_000, len in 1usize..20) {
        let mut rng = StdRng::seed_from_u64(seed);
        let records: Vec<LogRecord> = (0..len).map(|_| arb_record(&mut rng)).collect();
        let at = rng.gen_range(0..=records.len());
        let future = br#"{"Vacuum":{"aggressive":true}}"#;

        // v2: splice in a CRC-valid frame carrying the future payload.
        let disk = Arc::new(SimDisk::new());
        let path = std::path::Path::new("/unknown_v2.wal");
        {
            let mut wal = Wal::create_on(disk.clone() as Arc<dyn WalStorage>, path, 1).unwrap();
            for r in &records[..at] {
                wal.append(r).unwrap();
            }
            wal.sync().unwrap();
        }
        {
            let mut checked = Vec::new();
            checked.extend_from_slice(&(at as u64 + 1).to_le_bytes());
            checked.extend_from_slice(future);
            let mut frame = Vec::new();
            frame.extend_from_slice(&(future.len() as u32).to_le_bytes());
            frame.extend_from_slice(&crc32(&checked).to_le_bytes());
            frame.extend_from_slice(&checked);
            let mut f = disk.open_append(path).unwrap();
            f.append(&frame).unwrap();
            for (i, r) in records[at..].iter().enumerate() {
                f.append(&encode_frame(at as u64 + 2 + i as u64, r).unwrap()).unwrap();
            }
        }
        let scanned = scan(&disk.read(path).unwrap(), 1);
        prop_assert!(scanned.flaw.is_none(), "v2 skip became a flaw: {:?}", scanned.flaw);
        prop_assert_eq!(scanned.skipped, 1);
        prop_assert_eq!(scanned.records.len(), records.len());
        for ((_, got), want) in scanned.records.iter().zip(&records) {
            prop_assert_eq!(got, want);
        }

        // v1 legacy: the same future payload as a plain JSON line.
        let mut bytes = Vec::new();
        for r in &records[..at] {
            bytes.extend_from_slice(serde_json::to_string(r).unwrap().as_bytes());
            bytes.push(b'\n');
        }
        bytes.extend_from_slice(future);
        bytes.push(b'\n');
        for r in &records[at..] {
            bytes.extend_from_slice(serde_json::to_string(r).unwrap().as_bytes());
            bytes.push(b'\n');
        }
        let scanned = scan(&bytes, 1);
        prop_assert!(scanned.flaw.is_none(), "v1 skip became a flaw: {:?}", scanned.flaw);
        prop_assert_eq!(scanned.skipped, 1);
        prop_assert_eq!(scanned.records.len(), records.len());
        for ((_, got), want) in scanned.records.iter().zip(&records) {
            prop_assert_eq!(got, want);
        }
    }

    /// Concurrent writers through `SharedLoggedDatabase`: whatever
    /// interleaving the scheduler picks, replaying the log reproduces the
    /// live state byte-for-byte.
    #[test]
    fn concurrent_writers_replay_to_live_state(seed in 0u64..1_000) {
        let disk = Arc::new(SimDisk::new());
        let mut ldb = LoggedDatabase::create_with(
            disk.clone() as Arc<dyn WalStorage>,
            "/prop_shared",
            DurabilityConfig {
                sync_policy: SyncPolicy::EveryN(8),
                checkpoint_every: Some(48),
                segment_max_bytes: 2048,
            },
        )
        .unwrap();
        ldb.declare("teach", "faculty", "course", Functionality::ManyMany).unwrap();
        ldb.declare("class_list", "course", "student", Functionality::ManyMany).unwrap();
        ldb.declare("pupil", "faculty", "student", Functionality::ManyMany).unwrap();
        ldb.derive("pupil", &[("teach", false), ("class_list", false)]).unwrap();
        let shared = SharedLoggedDatabase::new(ldb);

        let mut handles = Vec::new();
        for w in 0..3u64 {
            let h = shared.clone();
            handles.push(std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ (w + 1));
                for i in 0..20 {
                    let x = v(&format!("p{}_{}", w, rng.gen_range(0..8u32)));
                    let y = v(&format!("c{i}"));
                    if rng.gen_range(0..4u32) == 0 {
                        h.delete("teach", x, y).unwrap();
                    } else {
                        h.insert("teach", x, y).unwrap();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        prop_assert!(shared.is_consistent().unwrap());
        let live = shared.read(|db| db.to_snapshot().unwrap()).unwrap();
        drop(shared.try_unwrap().expect("last handle"));

        let (recovered, report) = LoggedDatabase::open_with(
            disk as Arc<dyn WalStorage>,
            "/prop_shared",
            DurabilityConfig::default(),
        )
        .unwrap();
        prop_assert!(!report.damaged());
        prop_assert_eq!(recovered.database().to_snapshot().unwrap(), live);
    }
}
