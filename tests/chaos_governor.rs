//! Adversarial chaos harness for the resource governor.
//!
//! Crosses the nasty axes at once, with a fixed seed so failures replay:
//!
//! * **exponential-cycle schemas** ([`Topology::CycleBomb`]) that make
//!   ungoverned graph search effectively non-terminating,
//! * **random budgets** — step budgets, near-zero deadlines, result
//!   caps, and cancellation fired from a sibling thread,
//! * **≥4 concurrent threads** hammering one shared database through
//!   the bounded-lock / admission-gate write path,
//! * **disk faults** (SimDisk injected sync failures) under the logged
//!   shared handle.
//!
//! Invariants checked everywhere: no panics, no deadlocks (the test
//! finishing *is* the assertion), every refusal is a typed error,
//! deadlines are honoured within a coarse tolerance, and every
//! `Exhausted` partial is a sound prefix of the true answer.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fdb::core::{
    Database, DurabilityConfig, LoggedDatabase, OverloadPolicy, SharedDatabase,
    SharedLoggedDatabase, SimDisk, SyncPolicy,
};
use fdb::governor::{Budget, CancelToken, Governor, Outcome};
use fdb::graph::{
    all_simple_paths_governed, cycles_through_edge_governed, minimal_schema_governed,
    FunctionGraph, PathLimits,
};
use fdb::types::{Derivation, FdbError, Schema, Step, Value};
use fdb::workload::topology::Topology;

const SEED: u64 = 0xC4A0_5EED;
const THREADS: usize = 6;
const DEFAULT_ROUNDS: usize = 40;

/// Per-thread round count; `FDB_CHAOS_ROUNDS` scales it up for CI soak
/// runs (the workload stays seeded and bounded, just longer).
fn rounds() -> usize {
    std::env::var("FDB_CHAOS_ROUNDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_ROUNDS)
}
/// Slack on deadline adherence: the governor consults the clock every 16
/// steps and lock backoff sleeps 200µs, so the governor's own overshoot
/// is microseconds; 100ms absorbs scheduler preemption under an
/// oversubscribed CI runner.
const DEADLINE_TOLERANCE: Duration = Duration::from_millis(100);

fn v(s: impl std::fmt::Display) -> Value {
    Value::atom(s.to_string())
}

/// Graph search over a cycle bomb: every stop reason, concurrently,
/// with partial-soundness checked against the full enumeration.
#[test]
fn chaos_graph_search_cycle_bomb() {
    // width 4, 8 rungs (+ back edge): 4^8 = 65536 cycles through `back`.
    let schema = Arc::new(Topology::CycleBomb { width: 4 }.build(33));
    let graph = Arc::new(FunctionGraph::from_schema(&schema));
    let back = schema
        .functions()
        .iter()
        .find(|d| d.name == "back")
        .unwrap();
    let back_edge = graph.edge_of(back.id).unwrap().id;
    let big = PathLimits {
        max_len: usize::MAX,
        max_paths: 100_000,
    };

    // Reference answer, computed once (bounded: 65536 cycles).
    let full: Arc<Vec<_>> = Arc::new(
        cycles_through_edge_governed(&graph, back_edge, big, &Governor::unbounded()).value(),
    );
    assert_eq!(full.len() as u64, Topology::cycle_bomb_cycle_count(4, 33));

    let overshoots = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let schema = Arc::clone(&schema);
        let graph = Arc::clone(&graph);
        let full = Arc::clone(&full);
        let overshoots = Arc::clone(&overshoots);
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(SEED ^ (t as u64 + 1));
            for round in 0..rounds() {
                // Random budget mix.
                let mut budget = Budget::unbounded();
                let mut deadline = None;
                match rng.gen_range(0..4u32) {
                    0 => budget = budget.with_max_steps(rng.gen_range(0..5_000u64)),
                    1 => {
                        let d = Duration::from_millis(rng.gen_range(0..8u64));
                        deadline = Some(d);
                        budget = budget.with_deadline(d);
                    }
                    2 => {
                        budget = budget
                            .with_max_steps(rng.gen_range(0..20_000u64))
                            .with_deadline(Duration::from_millis(rng.gen_range(1..20u64)));
                    }
                    _ => budget = budget.with_max_steps(rng.gen_range(0..500u64)),
                }
                let cancel = CancelToken::new();
                let governor = Governor::with_cancel(budget, &cancel);

                // Sometimes fire cancellation from a sibling thread.
                let canceller = if rng.gen_range(0..3u32) == 0 {
                    let token = cancel.clone();
                    let delay = Duration::from_micros(rng.gen_range(0..2_000u64));
                    Some(std::thread::spawn(move || {
                        std::thread::sleep(delay);
                        token.cancel();
                    }))
                } else {
                    None
                };

                let t0 = Instant::now();
                match round % 3 {
                    0 => {
                        let outcome =
                            cycles_through_edge_governed(&graph, back_edge, big, &governor);
                        if let Outcome::Exhausted { partial, reason: _ } = &outcome {
                            assert!(partial.len() <= full.len());
                            assert_eq!(&full[..partial.len()], &partial[..], "unsound prefix");
                        }
                    }
                    1 => {
                        let from = schema.types().lookup("t0").unwrap();
                        let to = schema.types().lookup("t4").unwrap();
                        let _ = all_simple_paths_governed(
                            &graph,
                            from,
                            to,
                            &HashSet::new(),
                            big,
                            &governor,
                        );
                    }
                    _ => {
                        // AMS over the bomb: must stop, never hang.
                        let _ = minimal_schema_governed(&schema, PathLimits::default(), &governor);
                    }
                }
                let elapsed = t0.elapsed();
                if let Some(d) = deadline {
                    if elapsed > d + DEADLINE_TOLERANCE {
                        overshoots.fetch_add(1, Ordering::Relaxed);
                    }
                }
                if let Some(h) = canceller {
                    h.join().unwrap();
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("worker panicked");
    }
    assert_eq!(
        overshoots.load(Ordering::Relaxed),
        0,
        "deadline overshoots past tolerance"
    );
}

fn university() -> Database {
    let schema = Schema::builder()
        .function("teach", "faculty", "course", "many-many")
        .function("class_list", "course", "student", "many-many")
        .function("pupil", "faculty", "student", "many-many")
        .build()
        .unwrap();
    let mut db = Database::new(schema);
    let (t, c, p) = (
        db.resolve("teach").unwrap(),
        db.resolve("class_list").unwrap(),
        db.resolve("pupil").unwrap(),
    );
    db.register_derived(
        p,
        vec![Derivation::new(vec![Step::identity(t), Step::identity(c)]).unwrap()],
    )
    .unwrap();
    db
}

/// Typed-shedding chaos on the shared database: a tight overload policy,
/// concurrent writers/readers/governed queries. Every operation either
/// succeeds or fails with a *typed* overload/governor error; the store
/// stays consistent.
#[test]
fn chaos_shared_database_overload() {
    let shared = SharedDatabase::with_policy(
        university(),
        OverloadPolicy {
            lock_timeout: Duration::from_millis(25),
            max_inflight_writers: 3,
        },
    );
    let teach = shared.resolve("teach").unwrap();
    let class_list = shared.resolve("class_list").unwrap();
    let pupil = shared.resolve("pupil").unwrap();

    let shed = Arc::new(AtomicU64::new(0));
    let ok = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let h = shared.clone();
        let shed = Arc::clone(&shed);
        let ok = Arc::clone(&ok);
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(SEED ^ (0x100 + t as u64));
            for i in 0..rounds() {
                match rng.gen_range(0..4u32) {
                    // Plain bounded write (may be shed).
                    0 => {
                        let r = h.insert(teach, v(format!("p{t}_{i}")), v(format!("c{}", i % 5)));
                        match r {
                            Ok(()) => {
                                ok.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(FdbError::Overloaded { .. }) => {
                                shed.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(other) => panic!("untyped failure: {other:?}"),
                        }
                    }
                    // Governed write under a random (possibly dead) deadline.
                    1 => {
                        let gov =
                            Governor::with_deadline(Duration::from_millis(rng.gen_range(0..30u64)));
                        let r = h.write_governed(&gov, |db| {
                            db.insert(class_list, v(format!("c{}", i % 5)), v(format!("s{t}_{i}")))
                        });
                        match r {
                            Ok(inner) => {
                                inner.unwrap();
                                ok.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(
                                FdbError::Overloaded { .. }
                                | FdbError::DeadlineExceeded(_)
                                | FdbError::Cancelled,
                            ) => {
                                shed.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(other) => panic!("untyped failure: {other:?}"),
                        }
                    }
                    // Governed derived query with a small step budget.
                    2 => {
                        let budget = rng.gen_range(0..2_000u64);
                        let gov = Governor::with_max_steps(budget);
                        let outcome = h.read(|db| db.extension_governed(pupil, &gov)).unwrap();
                        // Partial or complete — either way sound rows only.
                        let rows = outcome.value();
                        h.read(|db| {
                            let full = db.extension(pupil).unwrap();
                            assert!(rows.iter().all(|r| full.contains(r)));
                        });
                    }
                    // Plain read.
                    _ => {
                        let _ = h.stats();
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("worker panicked");
    }
    assert!(shared.is_consistent());
    assert!(ok.load(Ordering::Relaxed) > 0, "every write was shed");
}

/// One whole transaction under a single lock hold: begin, a few writes,
/// then commit or (every fourth round) rollback. On any mid-frame error
/// the frame is rolled back best-effort so the handle is never left
/// poisoned for the next holder.
fn txn_round(ldb: &mut LoggedDatabase, t: usize, i: usize, commit: bool) -> Result<(), FdbError> {
    ldb.begin()?;
    let r = (|| {
        for j in 0..3 {
            ldb.insert(
                "teach",
                v(format!("txn{t}_{i}_{j}")),
                v(format!("c{}", (i + j) % 4)),
            )?;
        }
        if commit {
            ldb.commit()
        } else {
            ldb.rollback()
        }
    })();
    if r.is_err() && ldb.txn_active() {
        let _ = ldb.rollback();
    }
    r
}

/// Transactional chaos through `retry_on_overload`: concurrent workers
/// each run whole BEGIN..COMMIT/ROLLBACK frames under a tight lock
/// timeout and injected fsync faults, retrying shed attempts with
/// jittered backoff bounded by the governor's remaining deadline. Every
/// failure must be typed, committed work must survive replay, and
/// rolled-back work must leave no trace.
#[test]
fn chaos_transactions_with_overload_retry() {
    let disk = Arc::new(SimDisk::new());
    let mut ldb = LoggedDatabase::create_with(
        disk.clone(),
        "/chaos_txn_db",
        DurabilityConfig {
            sync_policy: SyncPolicy::EveryN(4),
            checkpoint_every: Some(32),
            segment_max_bytes: 4096,
        },
    )
    .unwrap();
    ldb.import_schema(&university()).unwrap();
    let shared = SharedLoggedDatabase::with_policy(
        ldb,
        OverloadPolicy {
            lock_timeout: Duration::from_millis(5),
            max_inflight_writers: 2,
        },
    );
    for k in 1..8u64 {
        disk.fail_sync(k * 11);
    }

    let committed = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let h = shared.clone();
        let committed = Arc::clone(&committed);
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(SEED ^ (0x300 + t as u64));
            for i in 0..rounds() {
                let gov = Governor::with_deadline(Duration::from_millis(rng.gen_range(20..120u64)));
                let commit = i % 4 != 3;
                match h.retry_on_overload(&gov, 5, |ldb| txn_round(ldb, t, i, commit)) {
                    Ok(()) => {
                        if commit {
                            committed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    // Exhausted retries, a shed past the deadline, an
                    // injected fsync fault mid-frame (aborting the
                    // transaction), or a raw mapped I/O error — all typed.
                    Err(
                        FdbError::Overloaded { .. }
                        | FdbError::DeadlineExceeded(_)
                        | FdbError::TxnAborted { .. }
                        | FdbError::Internal(_),
                    ) => {}
                    Err(other) => panic!("untyped failure: {other:?}"),
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("worker panicked");
    }

    assert!(shared.is_consistent().unwrap());
    assert!(
        committed.load(Ordering::Relaxed) > 0,
        "every transaction was shed or aborted"
    );
    let live = shared.read(|db| db.to_snapshot().unwrap()).unwrap();
    drop(shared.try_unwrap().expect("last handle"));
    let (recovered, report) =
        LoggedDatabase::open_with(disk, "/chaos_txn_db", DurabilityConfig::default()).unwrap();
    assert!(!recovered.txn_active(), "recovery left a frame open");
    assert_eq!(
        recovered.database().to_snapshot().unwrap(),
        live,
        "recovered state disagrees with live state ({report:?})"
    );
}

/// Disk-fault chaos on the logged shared handle: injected sync failures
/// and governed syncs racing concurrent writers. Failures must be typed;
/// whatever survives must replay to the live state.
#[test]
fn chaos_logged_database_with_disk_faults() {
    let disk = Arc::new(SimDisk::new());
    let mut ldb = LoggedDatabase::create_with(
        disk.clone(),
        "/chaos_db",
        DurabilityConfig {
            sync_policy: SyncPolicy::EveryN(8),
            checkpoint_every: Some(64),
            segment_max_bytes: 4096,
        },
    )
    .unwrap();
    ldb.import_schema(&university()).unwrap();
    let shared = SharedLoggedDatabase::with_policy(
        ldb,
        OverloadPolicy {
            lock_timeout: Duration::from_millis(50),
            max_inflight_writers: 8,
        },
    );

    // Inject sporadic sync failures ahead of the run.
    for k in 1..6u64 {
        disk.fail_sync(k * 7);
    }

    let mut handles = Vec::new();
    for t in 0..4 {
        let h = shared.clone();
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(SEED ^ (0x200 + t as u64));
            for i in 0..rounds() {
                match rng.gen_range(0..3u32) {
                    0 => {
                        // Inserts may fail on an injected sync error or be
                        // shed — both are typed; nothing may panic.
                        match h.insert("teach", v(format!("p{t}_{i}")), v(format!("c{}", i % 4))) {
                            // Internal carries the WAL's mapped I/O error
                            // for an injected sync failure.
                            Ok(())
                            | Err(FdbError::Overloaded { .. })
                            | Err(FdbError::Internal(_)) => {}
                            Err(other) => panic!("untyped failure: {other:?}"),
                        }
                    }
                    1 => {
                        let gov =
                            Governor::with_deadline(Duration::from_millis(rng.gen_range(0..20u64)));
                        match h.sync_governed(&gov) {
                            Ok(())
                            | Err(FdbError::Overloaded { .. })
                            | Err(FdbError::DeadlineExceeded(_))
                            | Err(FdbError::Cancelled)
                            | Err(FdbError::Internal(_)) => {}
                            Err(other) => panic!("untyped failure: {other:?}"),
                        }
                    }
                    _ => {
                        let _ = h.stats();
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("worker panicked");
    }

    // Whatever got through must be a consistent, replayable state.
    assert!(shared.is_consistent().unwrap());
    let live = shared.read(|db| db.to_snapshot().unwrap()).unwrap();
    drop(shared.try_unwrap().expect("last handle"));
    let (recovered, _report) =
        LoggedDatabase::open_with(disk, "/chaos_db", DurabilityConfig::default()).unwrap();
    assert_eq!(recovered.database().to_snapshot().unwrap(), live);
}
