//! Causal tracing end-to-end: the `TRACE`/`SHOW TRACE`/`SHOW SLOW`
//! language surface, per-query span attribution through the executor,
//! the group-commit convoy linkage (follower spans point at the leader
//! fsync that covered them), byte-stable Chrome trace export, and the
//! flight recorder's dump surface.
//!
//! The span recorder is process-global (like the metrics registry), so
//! every test here serializes on a lock and clears the recorder before
//! measuring.

use std::sync::Mutex;
use std::time::Duration;

use fdb::core::GroupCommit;
use fdb::lang::Engine;
use fdb::obs;
use fdb::obs::causal;

/// Serializes the tests in this binary around the global span recorder.
static RECORDER_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    RECORDER_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The paper's Example 1 schema with a few facts, tracing every
/// statement.
fn university() -> Engine {
    let mut e = Engine::new();
    for line in [
        "DECLARE teach: faculty -> course (many-many)",
        "DECLARE class_list: course -> student (many-many)",
        "DECLARE pupil: faculty -> student (many-many)",
        "DERIVE pupil = teach o class_list",
        "INSERT teach(euclid, math)",
        "INSERT teach(laplace, math)",
        "INSERT class_list(math, john)",
        "INSERT class_list(math, bill)",
    ] {
        e.execute_line(line).unwrap();
    }
    e
}

/// Zeroes every measured `wait_ns=<n>` annotation, the one time-valued
/// field that lives inside a span's detail string.
fn redact_wait(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(i) = rest.find("wait_ns=") {
        let j = i + "wait_ns=".len();
        out.push_str(&rest[..j]);
        out.push('0');
        let tail = &rest[j..];
        let k = tail
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(tail.len());
        rest = &tail[k..];
    }
    out.push_str(rest);
    out
}

/// Restores the always-on defaults so later tests (and later test
/// binaries sharing this process) see the shipped configuration.
fn restore_defaults() {
    causal::set_tracing(true);
    causal::set_sample_rate(causal::DEFAULT_SAMPLE_RATE);
    causal::recorder().set_slow_threshold_ns(Some(causal::DEFAULT_SLOW_THRESHOLD_NS));
    causal::recorder().clear();
}

#[test]
fn trace_statements_round_trip() {
    let _guard = lock();
    obs::set_enabled(true);
    let mut e = university();

    assert_eq!(
        e.execute_line("TRACE ON").unwrap(),
        "tracing on (every statement)\n"
    );
    assert_eq!(
        e.execute_line("TRACE ON SAMPLE 16").unwrap(),
        "tracing on (sampling 1 in 16)\n"
    );
    assert!(e.execute_line("TRACE ON SAMPLE 0").is_err());
    assert_eq!(e.execute_line("TRACE OFF").unwrap(), "tracing off\n");
    assert_eq!(
        e.execute_line("TRACE SLOW 150").unwrap(),
        "slow-query threshold set to 150 ms\n"
    );
    assert_eq!(
        e.execute_line("TRACE SLOW OFF").unwrap(),
        "slow-query log disabled\n"
    );

    restore_defaults();
}

/// A traced statement leaves a causal tree behind: the statement span
/// plus executor plan/execute children and the cache probe, all on one
/// trace id.
#[test]
fn traced_statement_records_exec_attribution() {
    let _guard = lock();
    obs::set_enabled(true);
    let mut e = university();
    e.execute_line("TRACE ON").unwrap();
    causal::recorder().clear();

    e.execute_line("TRUTH pupil(euclid, john)").unwrap();

    // Every child shares the statement's trace id (captured before
    // SHOW TRACE adds its own statement span to the ring).
    let spans = causal::recorder().recent();
    let stmt = spans
        .iter()
        .find(|s| s.name == "fdb.lang.statement")
        .expect("statement span");
    for s in &spans {
        assert_eq!(s.trace_id, stmt.trace_id, "span {} off-trace", s.name);
    }

    let out = e.execute_line("SHOW TRACE").unwrap();
    for needle in [
        "fdb.lang.statement",
        "fdb.exec.plan",
        "fdb.exec.execute",
        "fdb.cache.miss",
        "dir=Forward",
        "actual_chains=1",
    ] {
        assert!(out.contains(needle), "missing {needle:?} in:\n{out}");
    }

    restore_defaults();
}

/// The convoy contract, deterministically: a leader fsync covering two
/// sequences is recorded with its span id published as the group
/// watermark, and a later writer whose record that fsync covered
/// returns as a follower *linked to that exact span*. The Chrome
/// export of the resulting trace set is byte-stable across runs even
/// though every raw id differs.
#[test]
fn convoy_follower_links_to_leader_fsync_span() {
    let _guard = lock();
    obs::set_enabled(true);

    let run = || {
        causal::set_tracing(true);
        causal::set_sample_rate(1);
        causal::recorder().clear();
        let gc = std::sync::Arc::new(GroupCommit::new());

        // Writer A leads an fsync that covers seq 1 and seq 2.
        let gc_a = std::sync::Arc::clone(&gc);
        std::thread::spawn(move || {
            let span = causal::statement_span("fdb.test.writer_a", String::new);
            let led = gc_a
                .sync_to(1, Duration::from_secs(5), || (2, Ok(())))
                .unwrap();
            assert!(led, "writer A must lead");
            drop(span);
        })
        .join()
        .unwrap();

        // Writer B's record (seq 2) was covered by A's fsync: it joins
        // the convoy as a follower without touching the disk.
        let gc_b = std::sync::Arc::clone(&gc);
        std::thread::spawn(move || {
            let span = causal::statement_span("fdb.test.writer_b", String::new);
            let led = gc_b
                .sync_to(2, Duration::from_secs(5), || {
                    unreachable!("covered writers never fsync")
                })
                .unwrap();
            assert!(!led, "writer B must follow");
            drop(span);
        })
        .join()
        .unwrap();

        causal::recorder().recent()
    };

    let spans = run();
    let lead = spans
        .iter()
        .find(|s| s.name == "fdb.commit.group_fsync_lead")
        .expect("leader fsync span");
    let follower = spans
        .iter()
        .find(|s| s.name == "fdb.commit.group_sync" && s.detail.contains("role=follower"))
        .expect("follower span");
    assert_eq!(
        follower.link_span, lead.span_id,
        "follower must link to the covering leader fsync"
    );
    assert!(follower.detail.contains("wait_ns="));
    assert_ne!(
        follower.trace_id, lead.trace_id,
        "cross-writer causality is a link, never cross-trace parenting"
    );

    // Byte-stable export: a second identical run mints entirely
    // different raw trace/span/lane ids, but the redacted-timestamp
    // Chrome export is identical byte for byte. The follower's measured
    // convoy wait is the one time-valued annotation; zero it textually
    // the same way `ts`/`dur` are isolated structurally.
    let first = redact_wait(&causal::chrome_trace(&spans, true));
    let second = redact_wait(&causal::chrome_trace(&run(), true));
    assert_eq!(first, second, "chrome export must be byte-stable");

    assert_eq!(
        first,
        concat!(
            "{\"traceEvents\":[\n",
            "{\"name\":\"fdb.test.writer_a\",\"cat\":\"fdb\",\"ph\":\"X\",\"pid\":1,\"tid\":1,",
            "\"args\":{\"span\":1,\"parent\":0,\"link\":0,\"status\":\"ok\",\"detail\":\"\"},",
            "\"ts\":0,\"dur\":0},\n",
            "{\"name\":\"fdb.commit.group_sync\",\"cat\":\"fdb\",\"ph\":\"X\",\"pid\":1,\"tid\":1,",
            "\"args\":{\"span\":2,\"parent\":1,\"link\":0,\"status\":\"ok\",\"detail\":\"seq=1 role=leader\"},",
            "\"ts\":0,\"dur\":0},\n",
            "{\"name\":\"fdb.commit.group_fsync_lead\",\"cat\":\"fdb\",\"ph\":\"X\",\"pid\":1,\"tid\":1,",
            "\"args\":{\"span\":3,\"parent\":2,\"link\":0,\"status\":\"ok\",\"detail\":\"seq=1 covered=2 group=2\"},",
            "\"ts\":0,\"dur\":0},\n",
            "{\"name\":\"link\",\"cat\":\"fdb\",\"ph\":\"s\",\"id\":3,\"pid\":1,\"tid\":1,\"ts\":0},\n",
            "{\"name\":\"fdb.test.writer_b\",\"cat\":\"fdb\",\"ph\":\"X\",\"pid\":2,\"tid\":2,",
            "\"args\":{\"span\":4,\"parent\":0,\"link\":0,\"status\":\"ok\",\"detail\":\"\"},",
            "\"ts\":0,\"dur\":0},\n",
            "{\"name\":\"fdb.commit.group_sync\",\"cat\":\"fdb\",\"ph\":\"X\",\"pid\":2,\"tid\":2,",
            "\"args\":{\"span\":5,\"parent\":4,\"link\":3,\"status\":\"ok\",\"detail\":\"seq=2 role=follower wait_ns=0\"},",
            "\"ts\":0,\"dur\":0},\n",
            "{\"name\":\"link\",\"cat\":\"fdb\",\"ph\":\"f\",\"bp\":\"e\",\"id\":3,\"pid\":2,\"tid\":2,\"ts\":0}\n",
            "]}\n",
        )
    );

    restore_defaults();
}

/// `TRACE SLOW 0` captures every statement in the slow log with child
/// span attribution when the statement was traced.
#[test]
fn slow_log_attributes_statements() {
    let _guard = lock();
    obs::set_enabled(true);
    let mut e = university();
    e.execute_line("TRACE ON").unwrap();
    e.execute_line("TRACE SLOW 0").unwrap();
    causal::recorder().clear();

    e.execute_line("TRUTH pupil(euclid, john)").unwrap();
    let out = e.execute_line("SHOW SLOW").unwrap();
    assert!(
        out.contains("TRUTH pupil(euclid, john)"),
        "slow log missing statement:\n{out}"
    );
    assert!(
        out.contains("fdb.exec.execute"),
        "slow log missing attribution:\n{out}"
    );

    restore_defaults();
}

/// `DUMP TRACE` writes a flight file into the armed dump directory; the
/// dump names its reason and carries the recorded spans.
#[test]
fn dump_trace_writes_flight_file() {
    let _guard = lock();
    obs::set_enabled(true);
    let dir = std::env::temp_dir().join(format!("fdb-flight-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    obs::flight::set_dump_dir(Some(dir.clone()));

    let mut e = university();
    e.execute_line("TRACE ON").unwrap();
    e.execute_line("TRUTH pupil(euclid, john)").unwrap();
    let out = e.execute_line("DUMP TRACE").unwrap();
    assert!(out.starts_with("flight dump written to "), "got: {out}");
    let path = out.trim_start_matches("flight dump written to ").trim();
    let body = std::fs::read_to_string(path).unwrap();
    assert!(body.contains("\"reason\":\"manual\""), "{body}");
    assert!(body.contains("fdb.lang.statement"), "{body}");

    obs::flight::set_dump_dir(None);
    std::fs::remove_dir_all(&dir).ok();
    restore_defaults();
}
