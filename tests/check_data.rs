//! End-to-end tests of the data-aware analysis surface: the `DISCOVER`
//! golden output, `CHECK DATA` rendering, and the plan/result-cache
//! invalidation protocol for non-genuine assumptions.

use fdb::lang::Engine;
use fdb::obs::registry;

fn run_script(path: &str) -> (Engine, String) {
    let text = std::fs::read_to_string(path).expect("script fixture exists");
    let mut engine = Engine::new();
    let mut last = String::new();
    for line in text.lines() {
        last = engine
            .execute_line(line)
            .unwrap_or_else(|e| panic!("`{line}` failed: {e}"));
    }
    (engine, last)
}

#[test]
fn discover_output_is_byte_stable() {
    let (_, discover) = run_script("tests/scripts/discover_store.fdb");
    let golden =
        std::fs::read_to_string("tests/scripts/discover_store.golden").expect("golden file exists");
    assert!(
        discover == golden,
        "DISCOVER output drifted from the golden file.\n--- expected ---\n{golden}\n--- actual ---\n{discover}"
    );
    // Byte-stability includes a second run over the same store.
    let (mut engine, _) = run_script("tests/scripts/discover_store.fdb");
    let again = engine.execute_line("DISCOVER").expect("DISCOVER reruns");
    assert_eq!(again, golden);
}

#[test]
fn check_data_renders_fdb05x_diagnostics() {
    let (mut engine, _) = run_script("tests/scripts/discover_store.fdb");
    let out = engine.execute_line("CHECK DATA").expect("CHECK DATA runs");
    assert!(out.contains("FDB050"), "{out}");
    assert!(out.contains("FDB051"), "{out}");
    assert!(out.contains("FDB052"), "{out}");
    assert!(
        out.contains("minimal repair: delete office(euclid, e202)"),
        "{out}"
    );

    // An empty engine is data-clean.
    let mut empty = Engine::new();
    assert_eq!(empty.execute_line("CHECK DATA").unwrap(), "data-clean\n");
}

#[test]
fn nongenuine_invalidation_clears_the_result_cache() {
    // pupil = teach o class_list; office is OUTSIDE pupil's support set.
    let mut e = Engine::new();
    for line in [
        "DECLARE teach: faculty -> course (many-many)",
        "DECLARE class_list: course -> student (many-many)",
        "DECLARE pupil: faculty -> student (many-many)",
        "DECLARE office: faculty -> room (many-many)",
        "DERIVE pupil = teach o class_list",
        "INSERT teach(euclid, math)",
        "INSERT class_list(math, john)",
        "INSERT office(euclid, e101)",
        "INSERT office(laplace, l7)",
    ] {
        e.execute_line(line).unwrap();
    }
    // Warm the cache and prove a hit.
    assert_eq!(e.execute_line("TRUTH pupil(euclid, john)").unwrap(), "T\n");
    assert_eq!(e.execute_line("TRUTH pupil(euclid, john)").unwrap(), "T\n");
    assert_eq!(e.cache_stats().local.hits, 1);

    // DISCOVER installs assumptions (office's 2 rows are one-one).
    e.execute_line("DISCOVER").unwrap();
    assert!(!e.nongenuine().is_empty());

    // A write outside pupil's support set normally keeps the cache warm…
    let before = registry().check_nongenuine_invalidations.get();
    e.execute_line("INSERT office(euclid, e202)").unwrap();
    // …but it violates `office is functional`: the assumption drops,
    // the invalidation is counted, and the cache is cleared wholesale
    // (plans compiled under the assumption are no longer trustworthy).
    let delta = registry().check_nongenuine_invalidations.get() - before;
    assert_eq!(delta, 1, "exactly the functional direction drops");
    assert!(!e
        .nongenuine()
        .active()
        .any(|a| a.kind == fdb::exec::FdKind::Functional
            && e.database().schema().function(a.function).name == "office"));

    // The cached pupil answer is gone: same query misses and recomputes.
    let misses = e.cache_stats().local.misses;
    assert_eq!(e.execute_line("TRUTH pupil(euclid, john)").unwrap(), "T\n");
    assert_eq!(e.cache_stats().local.misses, misses + 1);
    assert_eq!(e.cache_stats().local.hits, 1, "no new hits");

    // CHECK DATA reports the invalidation as FDB053.
    let out = e.execute_line("CHECK DATA").unwrap();
    assert!(out.contains("FDB053"), "{out}");
    assert!(out.contains("office is functional"), "{out}");
}

#[test]
fn non_violating_writes_keep_assumptions_and_cache_semantics() {
    let mut e = Engine::new();
    for line in [
        "DECLARE teach: faculty -> course (many-many)",
        "DECLARE pupilless: faculty -> room (many-many)",
        "INSERT teach(euclid, math)",
        "INSERT teach(laplace, stat)",
    ] {
        e.execute_line(line).unwrap();
    }
    e.execute_line("DISCOVER").unwrap();
    let n = e.nongenuine().len();
    assert!(n > 0);
    // A write that preserves both single-valuedness directions refreshes
    // the assumptions instead of dropping them.
    e.execute_line("INSERT teach(gauss, algebra)").unwrap();
    assert_eq!(e.nongenuine().len(), n);
    let out = e.execute_line("CHECK DATA").unwrap();
    assert!(!out.contains("FDB053"), "{out}");
}
