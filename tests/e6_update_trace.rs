//! Experiment E6: the §4.2 five-update trace, state-by-state.
//!
//! The paper executes u1…u5 against the university instance and prints
//! the three tables after each update. This test replays the trace and
//! asserts the *exact* contents — truth flags, NCL entries, null chains,
//! and the `*` ambiguity markers on the implied `pupil` facts.

use fdb_core::Database;
use fdb_lang::format::{render_base_table, render_derived_extension};
use fdb_types::{Derivation, Schema, Step, Value};

fn v(s: &str) -> Value {
    Value::atom(s)
}

/// The §4.2 instance: teach = {<euclid, math>, <laplace, math>},
/// class_list = {<math, john>, <math, bill>}, pupil derived.
fn section_42_database() -> Database {
    let schema = Schema::builder()
        .function("teach", "faculty", "course", "many-many")
        .function("class_list", "course", "student", "many-many")
        .function("pupil", "faculty", "student", "many-many")
        .build()
        .unwrap();
    let mut db = Database::new(schema);
    let (t, c, p) = (
        db.resolve("teach").unwrap(),
        db.resolve("class_list").unwrap(),
        db.resolve("pupil").unwrap(),
    );
    db.register_derived(
        p,
        vec![Derivation::new(vec![Step::identity(t), Step::identity(c)]).unwrap()],
    )
    .unwrap();
    db.insert(t, v("euclid"), v("math")).unwrap();
    db.insert(t, v("laplace"), v("math")).unwrap();
    db.insert(c, v("math"), v("john")).unwrap();
    db.insert(c, v("math"), v("bill")).unwrap();
    db
}

/// Sorted lines of a rendered table, for order-insensitive comparison.
fn lines(text: &str) -> Vec<&str> {
    let mut out: Vec<&str> = text.lines().collect();
    out.sort_unstable();
    out
}

#[test]
fn initial_instance() {
    let db = section_42_database();
    let (t, c, p) = (
        db.resolve("teach").unwrap(),
        db.resolve("class_list").unwrap(),
        db.resolve("pupil").unwrap(),
    );
    assert_eq!(
        lines(&render_base_table(&db, t)),
        vec!["euclid  math  T  {}", "laplace  math  T  {}"]
    );
    assert_eq!(
        lines(&render_base_table(&db, c)),
        vec!["math  bill  T  {}", "math  john  T  {}"]
    );
    assert_eq!(
        lines(&render_derived_extension(&db, p).unwrap()),
        vec![
            "euclid  bill",
            "euclid  john",
            "laplace  bill",
            "laplace  john"
        ]
    );
    assert!(db.is_consistent());
}

#[test]
fn full_trace_u1_to_u5() {
    let mut db = section_42_database();
    let (t, c, p) = (
        db.resolve("teach").unwrap(),
        db.resolve("class_list").unwrap(),
        db.resolve("pupil").unwrap(),
    );

    // ---- u1: DEL(pupil, <euclid, john>) ----
    db.delete(p, &v("euclid"), &v("john")).unwrap();
    // "At this juncture F contains a NC, indexed by g1, of the facts
    //  <teach, euclid, math> and <class_list, math, john>."
    assert_eq!(db.store().ncs().len(), 1);
    assert_eq!(
        lines(&render_base_table(&db, t)),
        vec!["euclid  math  A  {g1}", "laplace  math  T  {}"]
    );
    assert_eq!(
        lines(&render_base_table(&db, c)),
        vec!["math  bill  T  {}", "math  john  A  {g1}"]
    );
    // Pupil: euclid john gone; euclid bill and laplace john ambiguous (*).
    assert_eq!(
        lines(&render_derived_extension(&db, p).unwrap()),
        vec!["euclid  bill  *", "laplace  bill", "laplace  john  *"]
    );
    assert!(db.is_consistent());

    // ---- u2: INS(pupil, <gauss, bill>) ----
    db.insert(p, v("gauss"), v("bill")).unwrap();
    // NVC: <teach, gauss, n1>, <class_list, n1, bill>.
    assert_eq!(
        lines(&render_base_table(&db, t)),
        vec![
            "euclid  math  A  {g1}",
            "gauss  n1  T  {}",
            "laplace  math  T  {}"
        ]
    );
    assert_eq!(
        lines(&render_base_table(&db, c)),
        vec![
            "math  bill  T  {}",
            "math  john  A  {g1}",
            "n1  bill  T  {}"
        ]
    );
    assert_eq!(
        lines(&render_derived_extension(&db, p).unwrap()),
        vec![
            "euclid  bill  *",
            "gauss  bill",
            "gauss  john  *",
            "laplace  bill",
            "laplace  john  *"
        ]
    );
    assert!(db.is_consistent());

    // ---- u3: DEL(teach, <euclid, math>) ----
    db.delete(t, &v("euclid"), &v("math")).unwrap();
    // g1 dismantled; <class_list, math, john> remains AMBIGUOUS with an
    // empty NCL — the paper's table prints `math john A {}`.
    assert_eq!(db.store().ncs().len(), 0);
    assert_eq!(
        lines(&render_base_table(&db, t)),
        vec!["gauss  n1  T  {}", "laplace  math  T  {}"]
    );
    assert_eq!(
        lines(&render_base_table(&db, c)),
        vec!["math  bill  T  {}", "math  john  A  {}", "n1  bill  T  {}"]
    );
    assert_eq!(
        lines(&render_derived_extension(&db, p).unwrap()),
        vec![
            "gauss  bill",
            "gauss  john  *",
            "laplace  bill",
            "laplace  john  *"
        ]
    );
    assert!(db.is_consistent());

    // ---- u4: INS(class_list, <math, john>) ----
    db.insert(c, v("math"), v("john")).unwrap();
    // The existing ambiguous fact is re-asserted true.
    assert_eq!(
        lines(&render_base_table(&db, c)),
        vec!["math  bill  T  {}", "math  john  T  {}", "n1  bill  T  {}"]
    );
    // laplace john is true again; gauss john still ambiguous (through n1).
    assert_eq!(
        lines(&render_derived_extension(&db, p).unwrap()),
        vec![
            "gauss  bill",
            "gauss  john  *",
            "laplace  bill",
            "laplace  john"
        ]
    );
    assert!(db.is_consistent());

    // ---- u5: INS(teach, <gauss, math>) ----
    db.insert(t, v("gauss"), v("math")).unwrap();
    assert_eq!(
        lines(&render_base_table(&db, t)),
        vec![
            "gauss  math  T  {}",
            "gauss  n1  T  {}",
            "laplace  math  T  {}"
        ]
    );
    // Everything in pupil is now true — the paper's final table has no *.
    assert_eq!(
        lines(&render_derived_extension(&db, p).unwrap()),
        vec![
            "gauss  bill",
            "gauss  john",
            "laplace  bill",
            "laplace  john"
        ]
    );
    assert!(db.is_consistent());
}

/// The paper's narration: "partial information is created by derived
/// inserts (NVCs) and derived deletes (NCs) … ambiguous information is
/// resolved through deletes (falsifying ambiguous facts), and inserts
/// (making ambiguous facts true)."
#[test]
fn resolution_summary_statistics() {
    let mut db = section_42_database();
    let (t, c, p) = (
        db.resolve("teach").unwrap(),
        db.resolve("class_list").unwrap(),
        db.resolve("pupil").unwrap(),
    );
    db.delete(p, &v("euclid"), &v("john")).unwrap();
    assert_eq!(db.stats().ambiguous_facts, 2);
    db.insert(p, v("gauss"), v("bill")).unwrap();
    assert_eq!(db.stats().nulls_generated, 1);
    db.delete(t, &v("euclid"), &v("math")).unwrap(); // falsifies one conjunct
    db.insert(c, v("math"), v("john")).unwrap(); // re-asserts the other
    assert_eq!(db.stats().ambiguous_facts, 0);
    assert_eq!(db.stats().ncs, 0);
}
