//! The analyzer must be pure: analyzing a script touches no store, writes
//! no WAL, and executes nothing. The observability registry doubles as a
//! side-effect detector — after `analyze_script`, every mutation counter
//! must be exactly where it was, while the `fdb.check.*` counters account
//! for the run.
//!
//! This test runs in its own binary so no other test's engine traffic
//! races the process-wide registry.

use fdb::check::{analyze_script, CheckConfig};
use fdb::lang::lower_script;
use fdb::obs::registry;

/// Counters that move only when something actually mutates or executes.
fn mutation_counters() -> Vec<(&'static str, u64)> {
    let r = registry();
    vec![
        ("fdb.storage.base_inserts", r.storage_base_inserts.get()),
        ("fdb.storage.base_deletes", r.storage_base_deletes.get()),
        ("fdb.storage.ncs_created", r.storage_ncs_created.get()),
        ("fdb.storage.ncs_dismantled", r.storage_ncs_dismantled.get()),
        (
            "fdb.storage.null_substitutions",
            r.storage_null_substitutions.get(),
        ),
        ("fdb.storage.compactions", r.storage_compactions.get()),
        ("fdb.wal.appends", r.wal_appends.get()),
        ("fdb.wal.fsyncs", r.wal_fsyncs.get()),
        ("fdb.wal.checkpoints", r.wal_checkpoints.get()),
        ("fdb.lang.statements", r.lang_statements.get()),
        ("fdb.exec.rows_examined", r.exec_rows_examined.get()),
        ("fdb.exec.nc_demotions", r.exec_nc_demotions.get()),
    ]
}

#[test]
fn analysis_is_pure_and_accounted() {
    // A script exercising every pass: writes, derived writes, derived
    // deletes, reads, schema design findings and the cost pass.
    let script = "DECLARE teach: faculty -> course (many-many)\n\
                  DECLARE class_list: course -> student (many-many)\n\
                  DECLARE pupil: faculty -> student (many-many)\n\
                  DERIVE pupil = teach o class_list\n\
                  INSERT teach(euclid, math)\n\
                  INSERT class_list(math, john)\n\
                  INSERT class_list(math, bill)\n\
                  DELETE pupil(euclid, john)\n\
                  QUERY pupil(euclid)\n\
                  INSERT pupil(gauss, bill)\n\
                  TRUTH pupil(euclid, bill)\n";
    let (stmts, errors) = lower_script(script);
    assert!(errors.is_empty(), "{errors:?}");

    let before_mutations = mutation_counters();
    let r = registry();
    let runs0 = r.check_runs.get();
    let err0 = r.check_diags_error.get();
    let warn0 = r.check_diags_warn.get();
    let info0 = r.check_diags_info.get();

    let diags = analyze_script(&stmts, &CheckConfig::default());
    assert!(!diags.is_empty(), "the script has known findings");

    // Every mutation counter is untouched.
    for ((name, before), (_, after)) in before_mutations.iter().zip(mutation_counters().iter()) {
        assert_eq!(
            before, after,
            "analysis must not move {name} (before {before}, after {after})"
        );
    }

    // The run itself is accounted on the fdb.check.* counters.
    assert_eq!(r.check_runs.get(), runs0 + 1);
    let (e, w, i) = fdb::check::tally(&diags);
    assert_eq!(r.check_diags_error.get(), err0 + e as u64);
    assert_eq!(r.check_diags_warn.get(), warn0 + w as u64);
    assert_eq!(r.check_diags_info.get(), info0 + i as u64);

    // Analyzing twice yields identical diagnostics (deterministic, no
    // hidden state) and another accounted run.
    let again = analyze_script(&stmts, &CheckConfig::default());
    assert_eq!(diags, again);
    assert_eq!(r.check_runs.get(), runs0 + 2);
}
