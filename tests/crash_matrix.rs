//! Crash matrix: exhaustive torn-write recovery over a generated workload.
//!
//! A `fdb-workload` update stream (mixing base and derived INS/DEL, so the
//! state carries NCs, NVCs and a non-trivial null-generator watermark) is
//! driven through a [`LoggedDatabase`] on a [`SimDisk`]. The run is then
//! repeated with the disk's write budget cut
//!
//! * at **every record boundary** of the full run, and
//! * at **every byte offset** inside one sampled mid-stream record,
//!
//! and each truncated image is recovered. The recovered database must
//! always be exactly the state after some prefix of the applied updates
//! (the longest whose record survived the cut), `is_consistent()` must
//! hold, the recovery report must show at worst a torn tail — and nothing
//! may panic.

use std::path::PathBuf;
use std::sync::Arc;

use fdb_core::{
    Database, DurabilityConfig, LoggedDatabase, SimDisk, SyncPolicy, Update, WalStorage,
};
use fdb_types::{Derivation, Functionality, Schema, Step};
use fdb_workload::{update_stream, UpdateStreamConfig};

const DIR: &str = "/crash_db";

fn dir() -> PathBuf {
    PathBuf::from(DIR)
}

fn config() -> DurabilityConfig {
    DurabilityConfig {
        sync_policy: SyncPolicy::Always,
        // Small limits so the matrix crosses checkpoint installs and
        // segment rotations, not just plain appends.
        checkpoint_every: Some(64),
        segment_max_bytes: 4096,
    }
}

/// The pupil triangle, as a plain database for stream generation.
fn triangle() -> Database {
    let schema = Schema::builder()
        .function("teach", "faculty", "course", "many-many")
        .function("class_list", "course", "student", "many-many")
        .function("pupil", "faculty", "student", "many-many")
        .build()
        .unwrap();
    let mut db = Database::new(schema);
    let (t, c, p) = (
        db.resolve("teach").unwrap(),
        db.resolve("class_list").unwrap(),
        db.resolve("pupil").unwrap(),
    );
    db.register_derived(
        p,
        vec![Derivation::new(vec![Step::identity(t), Step::identity(c)]).unwrap()],
    )
    .unwrap();
    db
}

fn workload() -> Vec<Update> {
    update_stream(
        &triangle(),
        UpdateStreamConfig {
            length: 220,
            domain_size: 8,
            derived_pct: 35,
            delete_pct: 40,
            seed: 17,
        },
    )
}

/// Deterministically drives the schema setup plus `stream` through a fresh
/// `LoggedDatabase` on `disk`, invoking `after(seq, &ldb)` after each
/// successfully logged record. Returns early (without panicking) once the
/// disk's write budget is exhausted; semantic update failures are skipped,
/// exactly as they are unlogged.
fn drive(disk: &Arc<SimDisk>, stream: &[Update], mut after: impl FnMut(u64, &LoggedDatabase)) {
    let storage: Arc<dyn WalStorage> = disk.clone();
    let mut ldb = match LoggedDatabase::create_with(storage, dir(), config()) {
        Ok(ldb) => ldb,
        Err(_) => {
            assert!(disk.crashed(), "create failed without a crash");
            return;
        }
    };
    let mut seq = 0u64;
    for (name, dom, rng) in [
        ("teach", "faculty", "course"),
        ("class_list", "course", "student"),
        ("pupil", "faculty", "student"),
    ] {
        if ldb
            .declare(name, dom, rng, Functionality::ManyMany)
            .is_err()
        {
            assert!(disk.crashed(), "declare failed without a crash");
            return;
        }
        seq += 1;
        after(seq, &ldb);
    }
    if ldb
        .derive("pupil", &[("teach", false), ("class_list", false)])
        .is_err()
    {
        assert!(disk.crashed(), "derive failed without a crash");
        return;
    }
    seq += 1;
    after(seq, &ldb);
    for update in stream {
        match ldb.apply_update(update) {
            Ok(()) => {
                seq += 1;
                after(seq, &ldb);
            }
            Err(_) if disk.crashed() => return,
            Err(_) => {} // semantic failure: unlogged, state unchanged
        }
    }
}

/// Runs the workload against a budget-limited disk, recovers from the
/// truncated image, and returns `(recovered_seq, snapshot)`.
fn crash_and_recover(stream: &[Update], budget: u64) -> (u64, String) {
    let disk = Arc::new(SimDisk::new());
    disk.set_write_budget(Some(budget));
    drive(&disk, stream, |_, _| {});
    disk.revive();
    let (recovered, report) =
        LoggedDatabase::open_with(disk.clone() as Arc<dyn WalStorage>, dir(), config())
            .unwrap_or_else(|e| panic!("recovery failed at budget {budget}: {e}"));
    assert!(
        !report.damaged(),
        "clean torn write reported as interior damage at budget {budget}: {report:?}"
    );
    assert!(
        recovered.database().is_consistent(),
        "inconsistent recovered state at budget {budget}"
    );
    let seq = report.last_seq.or(report.checkpoint_seq).unwrap_or(0);
    (seq, recovered.database().to_snapshot().unwrap())
}

#[test]
fn crash_matrix_every_record_boundary_and_one_record_bytewise() {
    let stream = workload();
    assert!(stream.len() >= 200, "workload must cover >=200 updates");

    // Pass 1: uncut run. Record the disk high-water mark and the live
    // snapshot after every logged record.
    let disk = Arc::new(SimDisk::new());
    let mut bounds: Vec<u64> = Vec::new(); // bounds[k-1] = bytes after record k
    let mut snapshots: Vec<String> = vec![Database::new(Schema::new()).to_snapshot().unwrap()];
    drive(&disk, &stream, |seq, ldb| {
        assert_eq!(seq as usize, bounds.len() + 1);
        bounds.push(disk.total_written());
        snapshots.push(ldb.database().to_snapshot().unwrap());
    });
    let records = bounds.len() as u64;
    assert!(
        records >= 200,
        "expected >=200 logged records, got {records}"
    );

    // The stream must exercise the paper's partial-information machinery:
    // derived deletes leave NCs, derived inserts leave null-valued facts
    // under a moving null-generator watermark.
    let (final_stats, live) = {
        let (recovered, _) =
            LoggedDatabase::open_with(disk.clone() as Arc<dyn WalStorage>, dir(), config())
                .unwrap();
        (
            recovered.database().stats(),
            recovered.database().to_snapshot().unwrap(),
        )
    };
    assert!(final_stats.ncs > 0, "workload produced no NCs");
    assert!(final_stats.null_facts > 0, "workload produced no NVC nulls");
    assert!(
        final_stats.nulls_generated > 0,
        "null watermark never moved"
    );
    assert_eq!(live, snapshots[records as usize], "uncut recovery mismatch");

    // Pass 2: cut at every record boundary. A budget of exactly
    // bounds[k-1] persists record k and all its admin writes (rotation,
    // checkpoint) but nothing of record k+1, so recovery must land on
    // exactly state k.
    for k in 1..=records {
        let (seq, snapshot) = crash_and_recover(&stream, bounds[(k - 1) as usize]);
        assert_eq!(seq, k, "boundary cut after record {k} recovered seq {seq}");
        assert_eq!(
            snapshot, snapshots[k as usize],
            "boundary cut after record {k}: recovered state is not prefix state"
        );
    }

    // Pass 3: cut at every byte offset inside one sampled mid-stream
    // record's span. Inside the frame the cut tears record k (recover to
    // k-1); in the admin bytes after the frame the record survives
    // (recover to k).
    let k = records / 2;
    let (lo, hi) = (bounds[(k - 2) as usize], bounds[(k - 1) as usize]);
    assert!(hi > lo, "sampled record wrote no bytes");
    for budget in lo + 1..hi {
        let (seq, snapshot) = crash_and_recover(&stream, budget);
        assert!(
            seq == k - 1 || seq == k,
            "byte cut at {budget} (record {k} spans {lo}..{hi}) recovered seq {seq}"
        );
        assert_eq!(
            snapshot, snapshots[seq as usize],
            "byte cut at {budget}: recovered state is not prefix state"
        );
    }

    // Zero-budget degenerate case: nothing persisted, empty recovery.
    let (seq, snapshot) = crash_and_recover(&stream, 0);
    assert_eq!(seq, 0);
    assert_eq!(snapshot, snapshots[0]);
}
