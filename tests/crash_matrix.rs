//! Crash matrix: exhaustive torn-write recovery over a generated workload.
//!
//! A `fdb-workload` update stream (mixing base and derived INS/DEL, so the
//! state carries NCs, NVCs and a non-trivial null-generator watermark) is
//! driven through a [`LoggedDatabase`] on a [`SimDisk`]. The run is then
//! repeated with the disk's write budget cut
//!
//! * at **every record boundary** of the full run, and
//! * at **every byte offset** inside one sampled mid-stream record,
//!
//! and each truncated image is recovered. The recovered database must
//! always be exactly the state after some prefix of the applied updates
//! (the longest whose record survived the cut), `is_consistent()` must
//! hold, the recovery report must show at worst a torn tail — and nothing
//! may panic.

use std::path::PathBuf;
use std::sync::Arc;

use fdb_core::{
    Database, DurabilityConfig, LoggedDatabase, SimDisk, SyncPolicy, Update, WalStorage,
};
use fdb_types::{Derivation, Functionality, Schema, Step, Value};
use fdb_workload::{update_stream, UpdateStreamConfig};

const DIR: &str = "/crash_db";

fn dir() -> PathBuf {
    PathBuf::from(DIR)
}

fn config() -> DurabilityConfig {
    DurabilityConfig {
        sync_policy: SyncPolicy::Always,
        // Small limits so the matrix crosses checkpoint installs and
        // segment rotations, not just plain appends.
        checkpoint_every: Some(64),
        segment_max_bytes: 4096,
    }
}

/// The pupil triangle, as a plain database for stream generation.
fn triangle() -> Database {
    let schema = Schema::builder()
        .function("teach", "faculty", "course", "many-many")
        .function("class_list", "course", "student", "many-many")
        .function("pupil", "faculty", "student", "many-many")
        .build()
        .unwrap();
    let mut db = Database::new(schema);
    let (t, c, p) = (
        db.resolve("teach").unwrap(),
        db.resolve("class_list").unwrap(),
        db.resolve("pupil").unwrap(),
    );
    db.register_derived(
        p,
        vec![Derivation::new(vec![Step::identity(t), Step::identity(c)]).unwrap()],
    )
    .unwrap();
    db
}

fn workload() -> Vec<Update> {
    update_stream(
        &triangle(),
        UpdateStreamConfig {
            length: 220,
            domain_size: 8,
            derived_pct: 35,
            delete_pct: 40,
            seed: 17,
        },
    )
}

/// Deterministically drives the schema setup plus `stream` through a fresh
/// `LoggedDatabase` on `disk`, invoking `after(seq, &ldb)` after each
/// successfully logged record. Returns early (without panicking) once the
/// disk's write budget is exhausted; semantic update failures are skipped,
/// exactly as they are unlogged.
fn drive(disk: &Arc<SimDisk>, stream: &[Update], mut after: impl FnMut(u64, &LoggedDatabase)) {
    let storage: Arc<dyn WalStorage> = disk.clone();
    let mut ldb = match LoggedDatabase::create_with(storage, dir(), config()) {
        Ok(ldb) => ldb,
        Err(_) => {
            assert!(disk.crashed(), "create failed without a crash");
            return;
        }
    };
    let mut seq = 0u64;
    for (name, dom, rng) in [
        ("teach", "faculty", "course"),
        ("class_list", "course", "student"),
        ("pupil", "faculty", "student"),
    ] {
        if ldb
            .declare(name, dom, rng, Functionality::ManyMany)
            .is_err()
        {
            assert!(disk.crashed(), "declare failed without a crash");
            return;
        }
        seq += 1;
        after(seq, &ldb);
    }
    if ldb
        .derive("pupil", &[("teach", false), ("class_list", false)])
        .is_err()
    {
        assert!(disk.crashed(), "derive failed without a crash");
        return;
    }
    seq += 1;
    after(seq, &ldb);
    for update in stream {
        match ldb.apply_update(update) {
            Ok(()) => {
                seq += 1;
                after(seq, &ldb);
            }
            Err(_) if disk.crashed() => return,
            Err(_) => {} // semantic failure: unlogged, state unchanged
        }
    }
}

/// Runs the workload against a budget-limited disk, recovers from the
/// truncated image, and returns `(recovered_seq, snapshot)`.
fn crash_and_recover(stream: &[Update], budget: u64) -> (u64, String) {
    let disk = Arc::new(SimDisk::new());
    disk.set_write_budget(Some(budget));
    drive(&disk, stream, |_, _| {});
    disk.revive();
    let (recovered, report) =
        LoggedDatabase::open_with(disk.clone() as Arc<dyn WalStorage>, dir(), config())
            .unwrap_or_else(|e| panic!("recovery failed at budget {budget}: {e}"));
    assert!(
        !report.damaged(),
        "clean torn write reported as interior damage at budget {budget}: {report:?}"
    );
    assert!(
        recovered.database().is_consistent(),
        "inconsistent recovered state at budget {budget}"
    );
    let seq = report.last_seq.or(report.checkpoint_seq).unwrap_or(0);
    (seq, recovered.database().to_snapshot().unwrap())
}

#[test]
fn crash_matrix_every_record_boundary_and_one_record_bytewise() {
    let stream = workload();
    assert!(stream.len() >= 200, "workload must cover >=200 updates");

    // Pass 1: uncut run. Record the disk high-water mark and the live
    // snapshot after every logged record.
    let disk = Arc::new(SimDisk::new());
    let mut bounds: Vec<u64> = Vec::new(); // bounds[k-1] = bytes after record k
    let mut snapshots: Vec<String> = vec![Database::new(Schema::new()).to_snapshot().unwrap()];
    drive(&disk, &stream, |seq, ldb| {
        assert_eq!(seq as usize, bounds.len() + 1);
        bounds.push(disk.total_written());
        snapshots.push(ldb.database().to_snapshot().unwrap());
    });
    let records = bounds.len() as u64;
    assert!(
        records >= 200,
        "expected >=200 logged records, got {records}"
    );

    // The stream must exercise the paper's partial-information machinery:
    // derived deletes leave NCs, derived inserts leave null-valued facts
    // under a moving null-generator watermark.
    let (final_stats, live) = {
        let (recovered, _) =
            LoggedDatabase::open_with(disk.clone() as Arc<dyn WalStorage>, dir(), config())
                .unwrap();
        (
            recovered.database().stats(),
            recovered.database().to_snapshot().unwrap(),
        )
    };
    assert!(final_stats.ncs > 0, "workload produced no NCs");
    assert!(final_stats.null_facts > 0, "workload produced no NVC nulls");
    assert!(
        final_stats.nulls_generated > 0,
        "null watermark never moved"
    );
    assert_eq!(live, snapshots[records as usize], "uncut recovery mismatch");

    // Pass 2: cut at every record boundary. A budget of exactly
    // bounds[k-1] persists record k and all its admin writes (rotation,
    // checkpoint) but nothing of record k+1, so recovery must land on
    // exactly state k.
    for k in 1..=records {
        let (seq, snapshot) = crash_and_recover(&stream, bounds[(k - 1) as usize]);
        assert_eq!(seq, k, "boundary cut after record {k} recovered seq {seq}");
        assert_eq!(
            snapshot, snapshots[k as usize],
            "boundary cut after record {k}: recovered state is not prefix state"
        );
    }

    // Pass 3: cut at every byte offset inside one sampled mid-stream
    // record's span. Inside the frame the cut tears record k (recover to
    // k-1); in the admin bytes after the frame the record survives
    // (recover to k).
    let k = records / 2;
    let (lo, hi) = (bounds[(k - 2) as usize], bounds[(k - 1) as usize]);
    assert!(hi > lo, "sampled record wrote no bytes");
    for budget in lo + 1..hi {
        let (seq, snapshot) = crash_and_recover(&stream, budget);
        assert!(
            seq == k - 1 || seq == k,
            "byte cut at {budget} (record {k} spans {lo}..{hi}) recovered seq {seq}"
        );
        assert_eq!(
            snapshot, snapshots[seq as usize],
            "byte cut at {budget}: recovered state is not prefix state"
        );
    }

    // Zero-budget degenerate case: nothing persisted, empty recovery.
    let (seq, snapshot) = crash_and_recover(&stream, 0);
    assert_eq!(seq, 0);
    assert_eq!(snapshot, snapshots[0]);
}

// ---------------------------------------------------------------------
// Transactional crash matrix: the same torn-write exhaustion, but with
// the workload wrapped in BEGIN/SAVEPOINT/ROLLBACK/COMMIT frames. The
// invariant sharpens from "some prefix state" to *atomicity*: recovery
// must land on the pre-BEGIN or post-COMMIT state of some transaction,
// never between.

/// One step of the transactional workload script.
enum TxnStep<'a> {
    Begin,
    Commit,
    Rollback,
    Savepoint(&'a str),
    RollbackTo(&'a str),
    Update(&'a Update),
}

/// Wraps the update stream into transactions of six updates each. Every
/// fifth chunk sets a mid-chunk savepoint and partially rolls back before
/// committing (so recovery must replay a committed partial rollback), and
/// every fourth is rolled back wholesale (so its records must never
/// surface).
fn txn_script(stream: &[Update]) -> Vec<TxnStep<'_>> {
    let mut steps = Vec::new();
    for (i, chunk) in stream.chunks(6).enumerate() {
        steps.push(TxnStep::Begin);
        match i % 5 {
            3 => {
                let mid = chunk.len() / 2;
                for u in &chunk[..mid] {
                    steps.push(TxnStep::Update(u));
                }
                steps.push(TxnStep::Savepoint("s"));
                for u in &chunk[mid..] {
                    steps.push(TxnStep::Update(u));
                }
                steps.push(TxnStep::RollbackTo("s"));
                steps.push(TxnStep::Commit);
            }
            4 => {
                for u in chunk {
                    steps.push(TxnStep::Update(u));
                }
                steps.push(TxnStep::Rollback);
            }
            _ => {
                for u in chunk {
                    steps.push(TxnStep::Update(u));
                }
                steps.push(TxnStep::Commit);
            }
        }
    }
    steps
}

/// Drives the schema setup plus the transactional script, invoking
/// `after(seq, &ldb)` once per logged record (every step logs exactly
/// one). Returns once the disk crashes; skips semantic update failures.
fn drive_txn(
    disk: &Arc<SimDisk>,
    steps: &[TxnStep<'_>],
    mut after: impl FnMut(u64, &LoggedDatabase),
) {
    let storage: Arc<dyn WalStorage> = disk.clone();
    let mut ldb = match LoggedDatabase::create_with(storage, dir(), config()) {
        Ok(ldb) => ldb,
        Err(_) => {
            assert!(disk.crashed(), "create failed without a crash");
            return;
        }
    };
    let mut seq = 0u64;
    for (name, dom, rng) in [
        ("teach", "faculty", "course"),
        ("class_list", "course", "student"),
        ("pupil", "faculty", "student"),
    ] {
        if ldb
            .declare(name, dom, rng, Functionality::ManyMany)
            .is_err()
        {
            assert!(disk.crashed(), "declare failed without a crash");
            return;
        }
        seq += 1;
        after(seq, &ldb);
    }
    if ldb
        .derive("pupil", &[("teach", false), ("class_list", false)])
        .is_err()
    {
        assert!(disk.crashed(), "derive failed without a crash");
        return;
    }
    seq += 1;
    after(seq, &ldb);
    for step in steps {
        let result = match step {
            TxnStep::Begin => ldb.begin(),
            TxnStep::Commit => ldb.commit(),
            TxnStep::Rollback => ldb.rollback(),
            TxnStep::Savepoint(name) => ldb.savepoint(name),
            TxnStep::RollbackTo(name) => ldb.rollback_to(name),
            TxnStep::Update(update) => ldb.apply_update(update),
        };
        match result {
            Ok(()) => {
                seq += 1;
                after(seq, &ldb);
            }
            Err(_) if disk.crashed() => return,
            Err(_) => {
                // Semantic update failure: unlogged, state unchanged.
                assert!(
                    matches!(step, TxnStep::Update(_)),
                    "transaction control failed on a healthy disk"
                );
            }
        }
    }
}

/// Runs the transactional script against a budget-limited disk, recovers
/// from the truncated image, and returns the recovered snapshot.
fn txn_crash_and_recover(steps: &[TxnStep<'_>], budget: u64) -> String {
    let disk = Arc::new(SimDisk::new());
    disk.set_write_budget(Some(budget));
    drive_txn(&disk, steps, |_, _| {});
    disk.revive();
    let (recovered, report) =
        LoggedDatabase::open_with(disk.clone() as Arc<dyn WalStorage>, dir(), config())
            .unwrap_or_else(|e| panic!("txn recovery failed at budget {budget}: {e}"));
    assert!(
        !report.damaged(),
        "torn transactional write reported as interior damage at budget {budget}: {report:?}"
    );
    assert!(
        !recovered.txn_active(),
        "recovery left a transaction frame open at budget {budget}"
    );
    assert!(
        recovered.database().is_consistent(),
        "inconsistent recovered state at budget {budget}"
    );
    recovered.database().to_snapshot().unwrap()
}

#[test]
fn txn_crash_matrix_every_record_boundary() {
    let stream = workload();
    let steps = txn_script(&stream);
    let updates = steps
        .iter()
        .filter(|s| matches!(s, TxnStep::Update(_)))
        .count();
    assert!(
        updates >= 200,
        "transactional workload must cover >=200 updates"
    );

    // Pass 1: uncut run. After every logged record, note the disk
    // high-water mark and the state recovery *must* reproduce there: the
    // live state when no frame is open, else the pre-BEGIN state (an
    // uncommitted frame is discarded at recovery).
    let disk = Arc::new(SimDisk::new());
    let mut bounds: Vec<u64> = Vec::new(); // bounds[k-1] = bytes after record k
    let mut expected: Vec<String> = Vec::new(); // expected[k-1] = recovery target after record k
    let mut committed = Database::new(Schema::new()).to_snapshot().unwrap();
    drive_txn(&disk, &steps, |seq, ldb| {
        assert_eq!(seq as usize, bounds.len() + 1);
        bounds.push(disk.total_written());
        if !ldb.txn_active() {
            committed = ldb.database().to_snapshot().unwrap();
        }
        expected.push(committed.clone());
    });
    let records = bounds.len() as u64;
    assert!(records > updates as u64, "control records missing");

    // The workload must still exercise NCs and nulls after the rolled-back
    // chunks are discarded.
    let (recovered, _) =
        LoggedDatabase::open_with(disk.clone() as Arc<dyn WalStorage>, dir(), config()).unwrap();
    let final_stats = recovered.database().stats();
    assert!(
        final_stats.ncs > 0,
        "transactional workload produced no NCs"
    );
    assert!(
        final_stats.null_facts > 0,
        "transactional workload produced no nulls"
    );
    assert_eq!(
        recovered.database().to_snapshot().unwrap(),
        expected[(records - 1) as usize],
        "uncut transactional recovery mismatch"
    );
    drop(recovered);

    // Pass 2: cut at every record boundary. Atomicity: the recovered
    // state is exactly the last committed state at that boundary — the
    // pre-BEGIN state while a frame was open, the post-COMMIT state
    // otherwise — never anything in between.
    for k in 1..=records {
        let snapshot = txn_crash_and_recover(&steps, bounds[(k - 1) as usize]);
        assert_eq!(
            snapshot,
            expected[(k - 1) as usize],
            "boundary cut after record {k}: recovered state is neither pre-BEGIN nor post-COMMIT"
        );
    }

    // Pass 3: cut at every byte offset inside one sampled COMMIT record.
    // Tearing the commit marker discards the whole frame (pre-BEGIN);
    // surviving it (admin bytes after the frame) lands post-COMMIT.
    let k = {
        // Record index of a mid-stream COMMIT: setup contributes 4
        // records, then one per step.
        let mut commits: Vec<u64> = steps
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, TxnStep::Commit))
            .map(|(i, _)| 4 + i as u64 + 1)
            .collect();
        commits.truncate(commits.len() / 2);
        *commits.last().expect("script has commits")
    };
    let (lo, hi) = (bounds[(k - 2) as usize], bounds[(k - 1) as usize]);
    assert!(hi > lo, "sampled commit wrote no bytes");
    for budget in lo + 1..hi {
        let snapshot = txn_crash_and_recover(&steps, budget);
        assert!(
            snapshot == expected[(k - 2) as usize] || snapshot == expected[(k - 1) as usize],
            "byte cut at {budget} inside commit record {k}: \
             recovered state is neither pre-BEGIN nor post-COMMIT"
        );
    }
}

#[test]
fn txn_commit_fsync_fault_aborts_and_recovery_agrees() {
    let disk = Arc::new(SimDisk::new());
    let storage: Arc<dyn WalStorage> = disk.clone();
    let mut ldb = LoggedDatabase::create_with(storage, dir(), config()).unwrap();
    ldb.declare("teach", "faculty", "course", Functionality::ManyMany)
        .unwrap();
    ldb.insert("teach", Value::atom("euclid"), Value::atom("math"))
        .unwrap();
    let pre = ldb.database().to_snapshot().unwrap();

    // The commit's force-fsync fails: the all-or-nothing contract demands
    // the live state roll back too, with a typed error and no panic.
    ldb.begin().unwrap();
    ldb.insert("teach", Value::atom("turing"), Value::atom("cs"))
        .unwrap();
    disk.fail_sync(1);
    assert!(ldb.commit().is_err(), "commit must surface the sync fault");
    assert!(!ldb.txn_active(), "failed commit must close the frame");
    assert_eq!(ldb.database().to_snapshot().unwrap(), pre);

    // The database stays usable: a fresh transaction commits fine.
    ldb.begin().unwrap();
    ldb.insert("teach", Value::atom("noether"), Value::atom("algebra"))
        .unwrap();
    ldb.commit().unwrap();
    let live = ldb.database().to_snapshot().unwrap();
    drop(ldb);

    let (recovered, report) =
        LoggedDatabase::open_with(disk as Arc<dyn WalStorage>, dir(), config()).unwrap();
    assert!(!report.damaged(), "{report:?}");
    assert_eq!(recovered.database().to_snapshot().unwrap(), live);
}

#[test]
fn txn_soak_with_fsync_faults() {
    // The transactional script under sporadic injected fsync failures: a
    // fault inside a frame aborts that transaction (typed, no panic); the
    // driver keeps going; recovery of the intact image must agree with
    // the live survivor state exactly.
    let stream = workload();
    let steps = txn_script(&stream);
    for fault_round in 0u64..5 {
        let disk = Arc::new(SimDisk::new());
        for j in 0..8u64 {
            disk.fail_sync(11 + fault_round * 7 + j * 53);
        }
        let storage: Arc<dyn WalStorage> = disk.clone();
        let mut ldb = LoggedDatabase::create_with(storage, dir(), config()).unwrap();
        for (name, dom, rng) in [
            ("teach", "faculty", "course"),
            ("class_list", "course", "student"),
            ("pupil", "faculty", "student"),
        ] {
            let _ = ldb.declare(name, dom, rng, Functionality::ManyMany);
        }
        let _ = ldb.derive("pupil", &[("teach", false), ("class_list", false)]);
        for step in &steps {
            // Every failure must be typed; a fault mid-frame aborts the
            // transaction, so later steps of that chunk may legitimately
            // report "without an open transaction" — also typed.
            let _ = match step {
                TxnStep::Begin => ldb.begin(),
                TxnStep::Commit => ldb.commit(),
                TxnStep::Rollback => ldb.rollback(),
                TxnStep::Savepoint(name) => ldb.savepoint(name),
                TxnStep::RollbackTo(name) => ldb.rollback_to(name),
                TxnStep::Update(update) => ldb.apply_update(update),
            };
        }
        if ldb.txn_active() {
            let _ = ldb.rollback();
        }
        assert!(ldb.database().is_consistent());
        let live = ldb.database().to_snapshot().unwrap();
        drop(ldb);
        let (recovered, report) =
            LoggedDatabase::open_with(disk as Arc<dyn WalStorage>, dir(), config())
                .unwrap_or_else(|e| panic!("soak round {fault_round}: recovery failed: {e}"));
        assert!(!report.damaged(), "soak round {fault_round}: {report:?}");
        assert!(!recovered.txn_active());
        assert!(recovered.database().is_consistent());
        assert_eq!(
            recovered.database().to_snapshot().unwrap(),
            live,
            "soak round {fault_round}: recovery disagrees with survivor state"
        );
    }
}
