//! Experiment E1: Table 1 (conceptual schema S1) and its AMS analysis.

use fdb_graph::minimal_schema;
use fdb_types::schema_s1;

#[test]
fn table1_renders_as_in_the_paper() {
    let s1 = schema_s1();
    let expected = "\
1. grade: [student; course] -> letter_grade; (many - one)
2. score: [student; course] -> marks; (many - one)
3. cutoff: marks -> letter_grade; (many - one)
4. teach: faculty -> course; (many - many)
5. taught_by: course -> faculty; (many - many)
";
    assert_eq!(s1.to_string(), expected);
}

#[test]
fn s1_under_ufa_separates_base_and_derived() {
    // "under the assumed semantics, grade may be derived from the
    // composition of score and cutoff (grade = score o cutoff)".
    let s1 = schema_s1();
    let out = minimal_schema(&s1);
    let grade = s1.resolve("grade").unwrap();
    assert!(!out.is_base(grade));
    let ders = out.derivations_of(grade).unwrap();
    assert_eq!(ders.len(), 1);
    assert_eq!(ders[0].render(&s1), "score o cutoff");
    // teach/taught_by are mutually derivable; AMS removes exactly one.
    let teach = s1.resolve("teach").unwrap();
    let taught_by = s1.resolve("taught_by").unwrap();
    assert_ne!(out.is_base(teach), out.is_base(taught_by));
    // score and cutoff stay base.
    assert!(out.is_base(s1.resolve("score").unwrap()));
    assert!(out.is_base(s1.resolve("cutoff").unwrap()));
}

#[test]
fn s1_type_functionality_reasoning() {
    // The worked functionality algebra behind E1: score o cutoff is
    // many-one (matching grade); score o cutoff⁻¹-style paths are not.
    let s1 = schema_s1();
    let score = s1.function_by_name("score").unwrap();
    let cutoff = s1.function_by_name("cutoff").unwrap();
    let grade = s1.function_by_name("grade").unwrap();
    assert_eq!(
        score.functionality.compose(cutoff.functionality),
        grade.functionality
    );
    assert_ne!(
        score.functionality.compose(cutoff.functionality.inverse()),
        grade.functionality
    );
}
