//! Planner/executor equivalence properties: the plan/execute pipeline in
//! `fdb-exec` must be observationally identical to the recursive
//! interpreter in `fdb::storage::chain` on complete runs, whatever
//! direction the cost model picks.
//!
//! * Truth: `exec::derived_truth` equals `chain::derived_truth` on
//!   random chain databases with random inverse steps, for hits, misses
//!   and ambiguous facts alike.
//! * Extension: the full pair lists are equal (both are sorted and
//!   deduplicated).
//! * Delete: negating the same derived fact through either path creates
//!   NCs with the same ids and leaves byte-identical stores.
//! * Governed truth: a stopped planner run reports a sound *lower
//!   bound* in the `False < Ambiguous < True` order, and a `Complete`
//!   outcome equals the ungoverned answer.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fdb::core::Database;
use fdb::governor::Governor;
use fdb::storage::{chain, ChainLimits, Truth};
use fdb::types::{Derivation, Schema, Step, Value};
use fdb::workload::instance_gen::populate;

/// A random composition chain `top = s0 o … o s{k-1}` where each step is
/// independently an identity or an inverse (the function's declared
/// endpoints are flipped so the derivation still types out), populated
/// with random facts sharing per-type domains so joins actually meet.
fn random_chain_db(seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let k = rng.gen_range(1..=4usize);
    let inverted: Vec<bool> = (0..k).map(|_| rng.gen_bool(0.5)).collect();
    let mut builder = Schema::builder();
    for (i, inv) in inverted.iter().enumerate() {
        let (d, r) = if *inv { (i + 1, i) } else { (i, i + 1) };
        builder = builder.function(
            &format!("f{i}"),
            &format!("v{d}"),
            &format!("v{r}"),
            "many-many",
        );
    }
    builder = builder.function("top", "v0", &format!("v{k}"), "many-many");
    let schema = builder.build().expect("generated schema is valid");
    let mut db = Database::new(schema);
    let steps: Vec<Step> = inverted
        .iter()
        .enumerate()
        .map(|(i, inv)| {
            let f = db.resolve(&format!("f{i}")).expect("declared");
            if *inv {
                Step::inverse(f)
            } else {
                Step::identity(f)
            }
        })
        .collect();
    let top = db.resolve("top").expect("declared");
    db.register_derived(top, vec![Derivation::new(steps).expect("typed chain")])
        .expect("top derivable");
    let facts = rng.gen_range(10..80usize);
    let domain = rng.gen_range(3..12usize);
    populate(&mut db, seed ^ 0x9e37_79b9, facts, domain);
    // Sprinkle partial information: derived deletes create NCs, which
    // downgrade some chains to Ambiguous — the planner must agree on
    // those too, not just on all-True instances.
    for _ in 0..2 {
        let ext = db.extension(top).expect("extension computes");
        if let Some(p) = ext.iter().find(|p| p.truth == Truth::True) {
            let (x, y) = (p.x.clone(), p.y.clone());
            db.delete(top, &x, &y).expect("derived delete");
        }
    }
    db
}

fn rank(t: Truth) -> u8 {
    match t {
        Truth::False => 0,
        Truth::Ambiguous => 1,
        Truth::True => 2,
    }
}

/// Sample query endpoints: the shared-domain naming (`t#k`) means these
/// cover present, absent and cross-wired values.
fn probes(db: &Database, rng: &mut StdRng) -> Vec<(Value, Value)> {
    let top = db.resolve("top").expect("declared");
    let k = db
        .derivations(top)
        .first()
        .expect("registered")
        .steps()
        .len();
    let mut out = Vec::new();
    for _ in 0..8 {
        out.push((
            Value::atom(format!("v0#{}", rng.gen_range(0..14))),
            Value::atom(format!("v{k}#{}", rng.gen_range(0..14))),
        ));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Truth and extension through the planner equal the interpreter's.
    #[test]
    fn planner_matches_interpreter_on_truth_and_extension(seed in 0u64..10_000) {
        let db = random_chain_db(seed);
        let top = db.resolve("top").expect("declared");
        let derivations = db.derivations(top).to_vec();
        let limits = ChainLimits::default();

        let mut rng = StdRng::seed_from_u64(seed ^ 0x5bd1_e995);
        for (x, y) in probes(&db, &mut rng) {
            prop_assert_eq!(
                fdb::exec::derived_truth(db.store(), &derivations, &x, &y, limits),
                chain::derived_truth(db.store(), &derivations, &x, &y, limits),
                "truth({x}, {y}) diverged on seed {seed}",
            );
        }
        prop_assert_eq!(
            fdb::exec::derived_extension(db.store(), &derivations, limits),
            chain::derived_extension(db.store(), &derivations, limits),
        );
    }

    /// Deleting the same derived fact through either path produces the
    /// same NC ids and byte-identical stores.
    #[test]
    fn planner_delete_matches_interpreter(seed in 0u64..10_000) {
        let db = random_chain_db(seed);
        let top = db.resolve("top").expect("declared");
        let derivations = db.derivations(top).to_vec();
        let limits = ChainLimits::default();
        let Some(target) = chain::derived_extension(db.store(), &derivations, limits)
            .into_iter()
            .next()
        else {
            return Ok(()); // empty extension: nothing to delete
        };

        for policy in [chain::DeletePolicy::Faithful, chain::DeletePolicy::Strict] {
            let mut s1 = db.store().clone();
            let mut s2 = db.store().clone();
            let ncs_interp = chain::derived_delete_with_policy(
                &mut s1, &derivations, &target.x, &target.y, policy, limits,
            );
            let ncs_exec = fdb::exec::derived_delete_with_policy(
                &mut s2, &derivations, &target.x, &target.y, policy, limits,
            );
            prop_assert_eq!(&ncs_interp, &ncs_exec, "NC ids diverged on seed {}", seed);
            prop_assert_eq!(
                serde_json::to_string(&s1).expect("store serializes"),
                serde_json::to_string(&s2).expect("store serializes"),
                "stores diverged on seed {}", seed,
            );
        }
    }

    /// A governed planner run never overstates truth, and a `Complete`
    /// outcome equals the ungoverned answer.
    #[test]
    fn governed_truth_is_a_sound_lower_bound(
        seed in 0u64..10_000,
        steps in 0u64..200,
    ) {
        let db = random_chain_db(seed);
        let top = db.resolve("top").expect("declared");
        let derivations = db.derivations(top).to_vec();
        let limits = ChainLimits::default();

        let mut rng = StdRng::seed_from_u64(seed ^ 0xc2b2_ae35);
        for (x, y) in probes(&db, &mut rng) {
            let full = fdb::exec::derived_truth(db.store(), &derivations, &x, &y, limits);
            let governed = fdb::exec::derived_truth_governed(
                db.store(), &derivations, &x, &y, limits,
                &Governor::with_max_steps(steps),
            );
            let complete = governed.is_complete();
            let got = governed.value();
            prop_assert!(
                rank(got) <= rank(full),
                "governed {got:?} overstates {full:?} on seed {seed}",
            );
            if complete {
                prop_assert_eq!(got, full);
            }
        }
    }
}
