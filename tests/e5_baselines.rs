//! Experiment E5: the §3.1 relational example — the `[6]` and `[9]`
//! update semantics on `v₁(AD) = π_AD(r₁ ⋈ r₂ ⋈ r₃)`.

use fdb_relational::{
    dayal_bernstein_delete, delete_side_effects, fuv_delete, ChainDb, Translation,
};
use fdb_types::Value;

fn v(s: &str) -> Value {
    Value::atom(s)
}

/// r₁ = {<a1,b1>, <a1,b2>}, r₂ = {<b1,c1>, <b2,c1>}, r₃ = {<c1,d1>}.
fn paper_31() -> ChainDb {
    let mut db = ChainDb::new(3);
    db.insert(0, "a1", "b1");
    db.insert(0, "a1", "b2");
    db.insert(1, "b1", "c1");
    db.insert(1, "b2", "c1");
    db.insert(2, "c1", "d1");
    db
}

#[test]
fn view_instance_matches_paper() {
    let db = paper_31();
    let view = db.view();
    assert_eq!(view.len(), 1);
    assert!(view.contains(&(v("a1"), v("d1"))));
}

#[test]
fn u4_under_dayal_bernstein_semantics() {
    // Any correct [6] translation removes (a1, d1) with zero view side
    // effect. The paper's illustrative choice — DEL(r1,<a1,b1>) and
    // DEL(r1,<a1,b2>) — is correct; so is our minimal one.
    let db = paper_31();
    let ours = dayal_bernstein_delete(&db, &v("a1"), &v("d1")).unwrap();
    let s = delete_side_effects(&db, &ours, &v("a1"), &v("d1"));
    assert!(s.is_side_effect_free());

    let papers = Translation {
        deletions: vec![(0, (v("a1"), v("b1"))), (0, (v("a1"), v("b2")))],
        insertions: vec![],
    };
    let s = delete_side_effects(&db, &papers, &v("a1"), &v("d1"));
    assert!(s.is_side_effect_free());
}

#[test]
fn u4_under_fuv_semantics_deletes_r3_tuple() {
    // "According to the semantics of [9] u4 is performed by deleting
    //  DEL(r3, <c1, d1>), because this is the only way which results in a
    //  new database that differs by exactly one fact."
    let db = paper_31();
    let t = fuv_delete(&db, &v("a1"), &v("d1")).unwrap();
    assert_eq!(t.deletions, vec![(2, (v("c1"), v("d1")))]);
    assert_eq!(t.cost(), 1);
    // Verify the minimality claim: every single other base tuple fails to
    // remove the view tuple on its own.
    for i in 0..3 {
        for pair in db.relation(i).iter() {
            if (i, pair.clone()) == (2, (v("c1"), v("d1"))) {
                continue;
            }
            let mut trial = db.clone();
            trial.remove(&(i, pair.clone()));
            assert!(
                trial.view().contains(&(v("a1"), v("d1"))),
                "removing r{}{:?} alone should not delete the view tuple",
                i + 1,
                pair
            );
        }
    }
}

#[test]
fn papers_information_theoretic_objection() {
    // "Note that the only information specified by the update is that
    //  <a1, d1> does not belong to v1. This does not imply the falsity of
    //  any base fact." — After either baseline translation, a base fact
    //  the update said nothing about is gone:
    let db = paper_31();
    let t = fuv_delete(&db, &v("a1"), &v("d1")).unwrap();
    let mut after = db.clone();
    t.apply(&mut after);
    assert!(after.fact_count() < db.fact_count());
    // In the functional database, the same delete removes NO base fact;
    // it creates the two NCs corresponding to the two footnoted
    // implications ¬(a1b1 ∧ b1c1 ∧ c1d1) and ¬(a1b2 ∧ b2c1 ∧ c1d1).
    use fdb_core::Database;
    use fdb_types::{Derivation, Schema, Step};
    let schema = Schema::builder()
        .function("r1", "A", "B", "many-many")
        .function("r2", "B", "C", "many-many")
        .function("r3", "C", "D", "many-many")
        .function("v1", "A", "D", "many-many")
        .build()
        .unwrap();
    let mut fdb = Database::new(schema);
    let (r1, r2, r3, v1) = (
        fdb.resolve("r1").unwrap(),
        fdb.resolve("r2").unwrap(),
        fdb.resolve("r3").unwrap(),
        fdb.resolve("v1").unwrap(),
    );
    fdb.register_derived(
        v1,
        vec![Derivation::new(vec![
            Step::identity(r1),
            Step::identity(r2),
            Step::identity(r3),
        ])
        .unwrap()],
    )
    .unwrap();
    fdb.insert(r1, v("a1"), v("b1")).unwrap();
    fdb.insert(r1, v("a1"), v("b2")).unwrap();
    fdb.insert(r2, v("b1"), v("c1")).unwrap();
    fdb.insert(r2, v("b2"), v("c1")).unwrap();
    fdb.insert(r3, v("c1"), v("d1")).unwrap();
    let before = fdb.stats().base_facts;
    fdb.delete(v1, &v("a1"), &v("d1")).unwrap();
    assert_eq!(fdb.stats().base_facts, before, "no base fact deleted");
    assert_eq!(fdb.store().ncs().len(), 2, "one NC per derivation chain");
    assert_eq!(
        fdb.truth(v1, &v("a1"), &v("d1")).unwrap(),
        fdb_storage::Truth::False
    );
    // All five base facts are now merely ambiguous, which is exactly the
    // information content of the update — no more, no less.
    assert_eq!(fdb.stats().ambiguous_facts, 5);
}
