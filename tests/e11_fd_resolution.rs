//! Experiment E11: the §5 "future work" extension — functional
//! dependencies (implied by type functionality) resolving partial
//! information, end to end through the engine.

use fdb_core::{resolve_ambiguities, Database};
use fdb_storage::Truth;
use fdb_types::{Derivation, Schema, Step, Value};

fn v(s: &str) -> Value {
    Value::atom(s)
}

/// The S1 grading pipeline: grade = score o cutoff, all many-one.
fn grading_db() -> Database {
    let schema = Schema::builder()
        .function("score", "[student; course]", "marks", "many-one")
        .function("cutoff", "marks", "letter_grade", "many-one")
        .function("grade", "[student; course]", "letter_grade", "many-one")
        .build()
        .unwrap();
    let mut db = Database::new(schema);
    let (s, c, g) = (
        db.resolve("score").unwrap(),
        db.resolve("cutoff").unwrap(),
        db.resolve("grade").unwrap(),
    );
    db.register_derived(
        g,
        vec![Derivation::new(vec![Step::identity(s), Step::identity(c)]).unwrap()],
    )
    .unwrap();
    db
}

#[test]
fn derived_insert_then_concrete_facts_collapse_the_nvc() {
    let mut db = grading_db();
    let (score, cutoff, grade) = (
        db.resolve("score").unwrap(),
        db.resolve("cutoff").unwrap(),
        db.resolve("grade").unwrap(),
    );
    // The registrar records the grade before the marks arrive.
    db.insert(grade, v("[ann; db_course]"), v("A")).unwrap();
    assert_eq!(db.stats().nulls_generated, 1);
    assert_eq!(db.stats().null_facts, 2);

    // The marks arrive later.
    db.insert(score, v("[ann; db_course]"), v("91")).unwrap();
    let out = resolve_ambiguities(&mut db);
    assert_eq!(out.nulls_unified, 1);
    assert!(out.conflicts.is_empty());

    // The NVC collapsed: cutoff(91) = A is now a concrete stored fact.
    assert!(db.store().table(cutoff).contains(&v("91"), &v("A")));
    assert_eq!(db.stats().null_facts, 0);
    assert_eq!(
        db.truth(grade, &v("[ann; db_course]"), &v("A")).unwrap(),
        Truth::True
    );
    assert!(db.is_consistent());
}

#[test]
fn resolution_cascades_across_multiple_nvcs() {
    let mut db = grading_db();
    let (score, grade) = (db.resolve("score").unwrap(), db.resolve("grade").unwrap());
    // Three grades recorded ahead of their marks.
    for (student, letter) in [("s1", "A"), ("s2", "B"), ("s3", "A")] {
        db.insert(grade, v(student), v(letter)).unwrap();
    }
    assert_eq!(db.stats().nulls_generated, 3);
    // Marks arrive for two of them.
    db.insert(score, v("s1"), v("91")).unwrap();
    db.insert(score, v("s3"), v("87")).unwrap();
    let out = resolve_ambiguities(&mut db);
    assert_eq!(out.nulls_unified, 2);
    // s2's chain still pends on its null.
    assert_eq!(db.stats().null_facts, 2);
    assert_eq!(db.truth(grade, &v("s2"), &v("B")).unwrap(), Truth::True);
    assert!(db.is_consistent());
}

#[test]
fn quantifying_ambiguity_before_and_after() {
    // §5: "In the presence of excessive ambiguous information it is
    // desirable to quantify the degree of ambiguity." The stats API plus
    // resolution give the ablation the resolution bench measures.
    let mut db = grading_db();
    let (score, grade) = (db.resolve("score").unwrap(), db.resolve("grade").unwrap());
    for i in 0..10 {
        db.insert(grade, v(&format!("s{i}")), v("A")).unwrap();
    }
    let before = db.stats();
    assert_eq!(before.null_facts, 20);
    for i in 0..10 {
        db.insert(score, v(&format!("s{i}")), v(&format!("{}", 80 + i)))
            .unwrap();
    }
    let out = resolve_ambiguities(&mut db);
    assert_eq!(out.nulls_unified, 10);
    let after = db.stats();
    assert_eq!(after.null_facts, 0);
    assert!(db.is_consistent());
}
