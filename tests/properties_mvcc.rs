//! MVCC property tests: snapshot reads must be indistinguishable from
//! the exclusive-lock reads they replaced, and the group-commit path
//! must append exactly the WAL bytes the sequential path would — it
//! batches *when* fsync runs, never what is written.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fdb::core::{
    Database, DurabilityConfig, LoggedDatabase, SharedDatabase, SharedLoggedDatabase, SimDisk,
    SyncPolicy, WalStorage,
};
use fdb::types::{Functionality, Schema, Value};

fn v(s: &str) -> Value {
    Value::atom(s)
}

fn university() -> Database {
    let schema = Schema::builder()
        .function("teach", "faculty", "course", "many-many")
        .function("class_list", "course", "student", "many-many")
        .build()
        .unwrap();
    Database::new(schema)
}

/// One random base update against the shared handle.
fn random_op(shared: &SharedDatabase, rng: &mut StdRng) {
    let f = if rng.gen_range(0..2u32) == 0 {
        "teach"
    } else {
        "class_list"
    };
    let f = shared.resolve(f).unwrap();
    let x = v(&format!("x{}", rng.gen_range(0..12u32)));
    let y = v(&format!("y{}", rng.gen_range(0..12u32)));
    if rng.gen_range(0..4u32) == 0 {
        let _ = shared.delete(f, &x, &y);
    } else {
        let _ = shared.insert(f, x, y);
    }
}

/// Every file on the simulated disk, keyed by path — the whole durable
/// footprint (WAL segments, checkpoints), for byte-for-byte comparison.
fn disk_image(disk: &SimDisk) -> BTreeMap<PathBuf, Vec<u8>> {
    disk.paths()
        .into_iter()
        .map(|p| {
            let bytes = disk.read(&p).unwrap();
            (p, bytes)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A pinned snapshot answers every query exactly as an
    /// exclusive-lock read of the same state would: after any op
    /// sequence, the snapshot serializes identically to the database
    /// observed under the write lock, and spot-checked truth queries
    /// agree.
    #[test]
    fn snapshot_read_equals_exclusive_lock_read(seed in 0u64..10_000, len in 0usize..60) {
        let shared = SharedDatabase::new(university());
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..len {
            random_op(&shared, &mut rng);
        }
        let pin = shared.pin();
        // The old read path: full exclusion, observing the live database.
        let exclusive = shared.write(|db| db.clone()).unwrap();
        prop_assert_eq!(
            serde_json::to_string(pin.store()).unwrap(),
            serde_json::to_string(exclusive.store()).unwrap()
        );
        prop_assert_eq!(pin.version(), exclusive.store().version());
        for _ in 0..20 {
            let f = if rng.gen_range(0..2u32) == 0 { "teach" } else { "class_list" };
            let f = pin.resolve(f).unwrap();
            let x = v(&format!("x{}", rng.gen_range(0..12u32)));
            let y = v(&format!("y{}", rng.gen_range(0..12u32)));
            prop_assert_eq!(
                pin.truth(f, &x, &y).unwrap(),
                exclusive.truth(f, &x, &y).unwrap()
            );
        }
    }

    /// A snapshot pinned mid-stream is frozen: replaying the same op
    /// prefix on a private database reproduces it exactly, no matter
    /// how many ops ran after the pin.
    #[test]
    fn pinned_state_is_exactly_the_prefix_state(
        seed in 0u64..10_000,
        prefix in 0usize..40,
        suffix in 1usize..40,
    ) {
        let shared = SharedDatabase::new(university());
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..prefix {
            random_op(&shared, &mut rng);
        }
        let pin = shared.pin();
        for _ in 0..suffix {
            random_op(&shared, &mut rng);
        }
        // Replay the identical prefix on a lone database.
        let replay = SharedDatabase::new(university());
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..prefix {
            random_op(&replay, &mut rng);
        }
        let replayed = replay.pin();
        prop_assert_eq!(
            serde_json::to_string(pin.store()).unwrap(),
            serde_json::to_string(replayed.store()).unwrap()
        );
    }

    /// The grouped write path appends byte-identical WAL frames (and
    /// durable files generally) to the sequential inline-fsync path:
    /// one writer issuing the same ops through a `SharedLoggedDatabase`
    /// under `Always` (group commit) and through a bare
    /// `LoggedDatabase` (inline fsync per record) leaves two disks with
    /// exactly the same bytes.
    #[test]
    fn grouped_wal_bytes_equal_sequential_wal_bytes(seed in 0u64..10_000, len in 1usize..50) {
        let config = DurabilityConfig {
            sync_policy: SyncPolicy::Always,
            checkpoint_every: Some(32),
            segment_max_bytes: 1024,
        };
        let grouped_disk = Arc::new(SimDisk::new());
        let sequential_disk = Arc::new(SimDisk::new());

        let mut ops: Vec<(bool, String, Value, Value)> = Vec::new();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..len {
            let f = if rng.gen_range(0..2u32) == 0 { "teach" } else { "class_list" };
            ops.push((
                rng.gen_range(0..4u32) == 0,
                f.to_owned(),
                v(&format!("x{}", rng.gen_range(0..10u32))),
                v(&format!("y{}", rng.gen_range(0..10u32))),
            ));
        }

        let mut ldb = LoggedDatabase::create_with(
            grouped_disk.clone() as Arc<dyn WalStorage>,
            "/db",
            config,
        )
        .unwrap();
        ldb.declare("teach", "faculty", "course", Functionality::ManyMany).unwrap();
        ldb.declare("class_list", "course", "student", Functionality::ManyMany).unwrap();
        let shared = SharedLoggedDatabase::new(ldb);
        for (del, f, x, y) in &ops {
            if *del {
                let _ = shared.delete(f, x.clone(), y.clone());
            } else {
                let _ = shared.insert(f, x.clone(), y.clone());
            }
        }
        drop(shared.try_unwrap().expect("last handle"));

        let mut ldb = LoggedDatabase::create_with(
            sequential_disk.clone() as Arc<dyn WalStorage>,
            "/db",
            config,
        )
        .unwrap();
        ldb.declare("teach", "faculty", "course", Functionality::ManyMany).unwrap();
        ldb.declare("class_list", "course", "student", Functionality::ManyMany).unwrap();
        for (del, f, x, y) in &ops {
            if *del {
                let _ = ldb.delete(f, x.clone(), y.clone());
            } else {
                let _ = ldb.insert(f, x.clone(), y.clone());
            }
        }
        drop(ldb);

        prop_assert_eq!(disk_image(&grouped_disk), disk_image(&sequential_disk));
    }

    /// Concurrent writers under `Always` (the group-commit fast path):
    /// whatever grouping the scheduler produces, recovery replays the
    /// WAL to exactly the live state, and every acknowledged write is
    /// present after an abrupt stop.
    #[test]
    fn group_committed_writers_replay_to_live_state(seed in 0u64..1_000) {
        let disk = Arc::new(SimDisk::new());
        let mut ldb = LoggedDatabase::create_with(
            disk.clone() as Arc<dyn WalStorage>,
            "/group_prop",
            DurabilityConfig {
                sync_policy: SyncPolicy::Always,
                checkpoint_every: Some(48),
                segment_max_bytes: 2048,
            },
        )
        .unwrap();
        ldb.declare("teach", "faculty", "course", Functionality::ManyMany).unwrap();
        let shared = SharedLoggedDatabase::new(ldb);

        let mut handles = Vec::new();
        for w in 0..4u64 {
            let h = shared.clone();
            handles.push(std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ (w + 1));
                for i in 0..15 {
                    let x = v(&format!("p{}_{}", w, rng.gen_range(0..6u32)));
                    let y = v(&format!("c{i}"));
                    if rng.gen_range(0..4u32) == 0 {
                        h.delete("teach", x, y).unwrap();
                    } else {
                        h.insert("teach", x, y).unwrap();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        prop_assert!(shared.is_consistent().unwrap());
        let live = shared.read(|db| db.to_snapshot().unwrap()).unwrap();
        // Abrupt stop: no graceful close, no final sync.
        drop(shared.try_unwrap().expect("last handle"));

        let (recovered, report) = LoggedDatabase::open_with(
            disk as Arc<dyn WalStorage>,
            "/group_prop",
            DurabilityConfig::default(),
        )
        .unwrap();
        prop_assert!(!report.damaged());
        prop_assert_eq!(recovered.database().to_snapshot().unwrap(), live);
    }
}
