//! Experiment E2: the §2.1 counter-example schema S2.
//!
//! "Under the UFA any of the three functions should be construed as
//! derived because each of them are syntactically and type functionally
//! equivalent to the composition of the other two. Hence such a
//! conceptual schema under the assumed semantics is not allowed." The
//! designer-driven Method 2.1 resolves what pure syntax cannot: only
//! `lecturer_of` is semantically derived.

use std::collections::HashSet;

use fdb_graph::{
    cycles_through_edge, exists_equivalent_walk, minimal_schema, DesignSession, FunctionGraph,
    PathLimits, ScriptedDesigner,
};
use fdb_types::schema_s2;

#[test]
fn every_s2_function_is_syntactically_derivable_from_the_other_two() {
    let s2 = schema_s2();
    let graph = FunctionGraph::from_schema(&s2);
    for def in s2.functions() {
        let own = graph.edge_of(def.id).unwrap().id;
        let excl: HashSet<_> = [own].into();
        assert!(
            exists_equivalent_walk(&graph, def.domain, def.range, def.functionality, &excl),
            "{} should look derivable under pure syntax",
            def.name
        );
    }
}

#[test]
fn ufa_misclassifies_s2() {
    // AMS must classify *some* function derived — but semantically only
    // lecturer_of is, and AMS (edge order) picks teach. This is the
    // paper's argument for the interactive methodology.
    let s2 = schema_s2();
    let out = minimal_schema(&s2);
    assert_eq!(out.derived.len(), 1);
    let wrongly_derived = s2.function(out.derived[0].function).name.clone();
    assert_eq!(
        wrongly_derived, "teach",
        "AMS removes the first derivable edge"
    );
}

#[test]
fn design_aid_with_designer_gets_s2_right() {
    let s2 = schema_s2();
    let mut session = DesignSession::new();
    let mut designer = ScriptedDesigner::new();
    // teach, class_list create no cycle; lecturer_of closes the triangle.
    designer.push_decision_by_name("lecturer_of");
    designer.default_confirm(true);
    for def in s2.functions() {
        session
            .add_function(
                &def.name,
                s2.type_name(def.domain),
                s2.type_name(def.range),
                def.functionality,
                &mut designer,
            )
            .unwrap();
    }
    // The cycle reported all three as candidates…
    let graph = FunctionGraph::from_schema(&s2);
    let lect_edge = graph
        .edge_of(s2.resolve("lecturer_of").unwrap())
        .unwrap()
        .id;
    let cycles = cycles_through_edge(&graph, lect_edge, PathLimits::default());
    assert_eq!(cycles[0].candidates(&graph).len(), 3);
    // …and the designer picked the only semantically correct one.
    let (outcome, schema) = session.finish(&mut designer);
    let derived_names: Vec<String> = outcome
        .derived
        .iter()
        .map(|(f, _)| schema.function(*f).name.clone())
        .collect();
    assert_eq!(derived_names, vec!["lecturer_of"]);
    assert_eq!(
        outcome.derived[0].1[0].render(&schema),
        "class_list^-1 o teach^-1"
    );
}
