//! Golden-output test: the `CHECK` statement's rendering for the paper's
//! Example 1 session must stay byte-stable (`tests/scripts/*.golden`).
//! Editors, baselines and CI gates all match on this text — treat a diff
//! here as a breaking change to the diagnostic format.

use fdb::lang::Engine;

fn run_script(path: &str) -> (Engine, String) {
    let text = std::fs::read_to_string(path).expect("script fixture exists");
    let mut engine = Engine::new();
    let mut last = String::new();
    for line in text.lines() {
        last = engine
            .execute_line(line)
            .unwrap_or_else(|e| panic!("`{line}` failed: {e}"));
    }
    (engine, last)
}

#[test]
fn example1_check_output_is_byte_stable() {
    let (_, check) = run_script("tests/scripts/example1_check.fdb");
    let golden =
        std::fs::read_to_string("tests/scripts/example1_check.golden").expect("golden file exists");
    assert!(
        check == golden,
        "CHECK output drifted from the golden file.\n--- expected ---\n{golden}\n--- actual ---\n{check}"
    );
}

#[test]
fn example1_check_json_carries_the_same_findings() {
    let (mut engine, _) = run_script("tests/scripts/example1_check.fdb");
    let json = engine.execute_line("CHECK JSON").expect("CHECK JSON runs");
    let tree = serde_json::parse(&json).expect("valid JSON");
    let seq = tree.as_seq().expect("array of findings");
    let codes: Vec<&str> = seq
        .iter()
        .filter_map(|d| {
            d.as_map()
                .and_then(|m| serde::map_get(m, "code"))
                .and_then(|c| c.as_str())
        })
        .collect();
    assert!(codes.contains(&"FDB020"), "{codes:?}");
    assert!(codes.contains(&"FDB031"), "{codes:?}");
}
