//! Replication-layer property tests: for ANY workload (transactions,
//! aborts, hostile interleavings) and ANY shipping schedule (arbitrary
//! prefix length, arbitrary batch sizes, arbitrary re-shipped overlap),
//! a replica fed the first `k` frames must hold exactly the state a
//! fresh transaction-aware replay of those `k` records produces — and
//! its local WAL must be byte-identical to the shipped frame stream.

use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fdb::core::wal::{TxnReplayer, WAL_MAGIC};
use fdb::core::{Database, DurabilityConfig, LoggedDatabase, SimDisk, SyncPolicy, WalStorage};
use fdb::repl::{ApplyOutcome, Replica, ReplicationSource, ShippedFrame};
use fdb::types::{Functionality, Schema, Value};

fn v(s: &str) -> Value {
    Value::atom(s)
}

/// Builds a primary with a seeded workload: plain writes, committed
/// transactions, aborted transactions, savepoint rollbacks. Checkpoints
/// are disabled so every frame since seq 1 stays shippable, and small
/// segments force multi-segment shipping.
fn build_primary(disk: Arc<SimDisk>, seed: u64, ops: usize) -> LoggedDatabase {
    let mut p = LoggedDatabase::create_with(
        disk as Arc<dyn WalStorage>,
        "/primary",
        DurabilityConfig {
            sync_policy: SyncPolicy::Always,
            checkpoint_every: None,
            segment_max_bytes: 512,
        },
    )
    .expect("create primary");
    p.declare("teach", "faculty", "course", Functionality::ManyMany)
        .expect("declare");
    p.declare("class_list", "course", "student", Functionality::ManyMany)
        .expect("declare");

    let mut rng = StdRng::seed_from_u64(seed);
    let one_op = |p: &mut LoggedDatabase, rng: &mut StdRng, i: usize| {
        let f = if rng.gen_range(0..2u32) == 0 {
            "teach"
        } else {
            "class_list"
        };
        let x = v(&format!("x{}", rng.gen_range(0..6u32)));
        let y = v(&format!("y{}_{i}", rng.gen_range(0..4u32)));
        if rng.gen_range(0..4u32) == 0 {
            p.delete(f, x, y).expect("delete");
        } else {
            p.insert(f, x, y).expect("insert");
        }
    };
    for i in 0..ops {
        if rng.gen_range(0..5u32) == 0 {
            // A transaction: a few ops, then commit, abort, or a partial
            // rollback followed by a commit.
            p.begin().expect("begin");
            let body = rng.gen_range(1..4usize);
            for j in 0..body {
                one_op(&mut p, &mut rng, i * 100 + j);
            }
            match rng.gen_range(0..4u32) {
                0 => p.rollback().expect("rollback"),
                1 => {
                    p.savepoint("sp").expect("savepoint");
                    one_op(&mut p, &mut rng, i * 100 + 50);
                    p.rollback_to("sp").expect("rollback to");
                    p.commit().expect("commit");
                }
                _ => p.commit().expect("commit"),
            }
        } else {
            one_op(&mut p, &mut rng, i);
        }
    }
    p
}

/// Replays shipped frames through a fresh transaction-aware replayer:
/// the oracle a replica must agree with.
fn fresh_replay(frames: &[ShippedFrame]) -> Database {
    let mut db = Database::new(Schema::new());
    let mut replayer = TxnReplayer::new();
    for f in frames {
        if let Some(record) = f.record().expect("shipped frames decode") {
            replayer.feed(&mut db, &record).expect("replay feeds");
        }
    }
    replayer.finish(&mut db).expect("replay finishes");
    db
}

/// The replica's whole local WAL as one frame stream (per-segment magic
/// stripped), for byte-identity comparison against the shipped frames.
fn replica_wal_bytes(disk: &SimDisk, dir: &str) -> Vec<u8> {
    let mut paths = disk
        .list(std::path::Path::new(dir))
        .expect("list replica dir");
    paths.sort();
    let mut out = Vec::new();
    for p in paths {
        if p.extension() != Some(std::ffi::OsStr::new("seg")) {
            continue;
        }
        let bytes = disk.read(&p).expect("read replica segment");
        assert!(bytes.starts_with(WAL_MAGIC), "segment without magic: {p:?}");
        out.extend_from_slice(&bytes[WAL_MAGIC.len()..]);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Feed an arbitrary prefix of the primary's frame stream to a
    /// replica in arbitrarily-sized batches: the replica's consistent
    /// view equals a fresh replay of that prefix, its stored WAL is
    /// byte-identical to the shipped frames, and re-shipping an
    /// arbitrary overlap changes nothing.
    #[test]
    fn arbitrary_prefix_matches_fresh_replay(seed in 0u64..10_000, ops in 1usize..40) {
        let disk = Arc::new(SimDisk::new());
        let primary = build_primary(disk.clone(), seed, ops);
        let total = primary.last_seq();
        prop_assert!(total > 0);

        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let k = rng.gen_range(1..=total as usize);

        let mut source = ReplicationSource::for_primary(&primary);
        let batch = source.poll(1, k).expect("poll prefix");
        prop_assert_eq!(batch.frames.len(), k);

        // Oracle: a fresh transaction-aware replay of the same frames.
        let want = fresh_replay(&batch.frames).to_snapshot().expect("oracle snapshot");

        // Replica: the same frames, split into random batch sizes.
        let mut replica = Replica::open(disk.clone() as Arc<dyn WalStorage>, "/replica")
            .expect("open replica");
        let mut sent = 0usize;
        while sent < k {
            let take = rng.gen_range(1..=(k - sent).min(7));
            let sub = source
                .poll(replica.next_seq(), take)
                .expect("poll sub-batch");
            prop_assert_eq!(sub.frames.len(), take);
            match replica.apply_batch(&sub).expect("apply") {
                ApplyOutcome::Applied { frames, .. } => prop_assert_eq!(frames, take),
                other => prop_assert!(false, "unexpected outcome {other:?}"),
            }
            sent += take;
        }
        let got = replica
            .consistent_view()
            .expect("consistent view")
            .to_snapshot()
            .expect("replica snapshot");
        prop_assert_eq!(&got, &want);

        // Byte identity: the replica's local WAL is exactly the shipped
        // frame stream, no re-encoding drift.
        let mut shipped = Vec::new();
        for f in &batch.frames {
            shipped.extend_from_slice(&f.encoded());
        }
        prop_assert_eq!(replica_wal_bytes(&disk, "/replica"), shipped);

        // Idempotency: re-ship an arbitrary overlapping window; every
        // frame is recognized by CRC and skipped, state unchanged.
        let from = rng.gen_range(1..=k as u64);
        let again = source.poll(from, k - from as usize + 1).expect("re-poll");
        match replica.apply_batch(&again).expect("re-apply") {
            ApplyOutcome::Applied { frames, .. } => prop_assert_eq!(frames, 0),
            other => prop_assert!(false, "unexpected outcome {other:?}"),
        }
        let after = replica
            .consistent_view()
            .expect("view after re-ship")
            .to_snapshot()
            .expect("snapshot after re-ship");
        prop_assert_eq!(&after, &want);
    }

    /// Restarting the replica at an arbitrary point (drop + reopen over
    /// the same directory) is invisible: catch-up rebuilds exactly the
    /// state the uninterrupted replica held, and shipping resumes where
    /// it left off.
    #[test]
    fn restart_at_any_point_is_invisible(seed in 0u64..10_000, ops in 1usize..30) {
        let disk = Arc::new(SimDisk::new());
        let primary = build_primary(disk.clone(), seed, ops);
        let total = primary.last_seq();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xca7c);
        let cut = rng.gen_range(1..=total as usize);

        let mut source = ReplicationSource::for_primary(&primary);
        let mut replica = Replica::open(disk.clone() as Arc<dyn WalStorage>, "/r")
            .expect("open replica");
        let first = source.poll(1, cut).expect("poll first");
        replica.apply_batch(&first).expect("apply first");
        let before = replica
            .consistent_view()
            .expect("view before restart")
            .to_snapshot()
            .expect("snapshot before restart");
        drop(replica);

        let mut replica = Replica::open(disk.clone() as Arc<dyn WalStorage>, "/r")
            .expect("reopen replica");
        prop_assert_eq!(replica.next_seq(), cut as u64 + 1);
        let after = replica
            .consistent_view()
            .expect("view after restart")
            .to_snapshot()
            .expect("snapshot after restart");
        prop_assert_eq!(&after, &before);

        // Finish the stream: the replica ends exactly at the primary.
        let rest = source
            .poll(replica.next_seq(), total as usize)
            .expect("poll rest");
        replica.apply_batch(&rest).expect("apply rest");
        let got = replica
            .consistent_view()
            .expect("final view")
            .to_snapshot()
            .expect("final snapshot");
        let want = primary.database().to_snapshot().expect("primary snapshot");
        prop_assert_eq!(got, want);
    }
}

/// `fdb.repl.fenced_rejects` and `fdb.repl.divergences` follow a
/// publish-once-per-report discipline: a fenced primary retrying the
/// same stale batch in a loop, or polls against an already-frozen
/// replica, are ONE incident each — dashboards alert on new incidents,
/// not on retry frequency. A genuinely new fencing episode (different
/// term pair, or after an accepted batch) counts again.
#[test]
fn fence_and_divergence_counters_publish_once_per_report() {
    use fdb::core::LogRecord;
    use fdb::repl::Batch;

    let counter = |key: &str| {
        fdb::obs::registry()
            .snapshot()
            .counters
            .iter()
            .find(|c| c.key == key)
            .map(|c| c.value)
            .unwrap_or_else(|| panic!("registry has no counter {key}"))
    };
    let empty_batch = |term: u64| Batch {
        term,
        seed: None,
        frames: vec![],
        source_last_seq: 0,
        remaining_records: 0,
        remaining_bytes: 0,
        trace_id: 0,
    };

    let disk = Arc::new(SimDisk::new());
    let primary = build_primary(disk.clone(), 7, 10);
    let mut source = ReplicationSource::for_primary(&primary);
    let replica_disk = Arc::new(SimDisk::new());
    let mut replica =
        Replica::open(replica_disk.clone() as Arc<dyn WalStorage>, "/r").expect("open replica");
    let batch = source.poll(1, 10_000).expect("poll");
    replica.apply_batch(&batch).expect("apply");

    // Raise the replica's term so older batches are fenced.
    replica.apply_batch(&empty_batch(5)).expect("term bump");

    let f0 = counter("fdb.repl.fenced_rejects");
    for _ in 0..3 {
        assert!(matches!(
            replica.apply_batch(&empty_batch(1)).expect("fenced"),
            ApplyOutcome::Fenced { .. }
        ));
    }
    assert_eq!(
        counter("fdb.repl.fenced_rejects"),
        f0 + 1,
        "retries of one fencing episode must count once"
    );

    // A different stale term is a new episode.
    replica.apply_batch(&empty_batch(2)).expect("fenced");
    assert_eq!(counter("fdb.repl.fenced_rejects"), f0 + 2);

    // An accepted batch closes the episode; the next fence counts anew.
    replica.apply_batch(&empty_batch(5)).expect("accepted");
    replica.apply_batch(&empty_batch(1)).expect("fenced");
    assert_eq!(counter("fdb.repl.fenced_rejects"), f0 + 3);

    // Divergence: the freeze publishes once; every later poll against
    // the frozen replica reports the same incident without counting.
    let evil_seq = replica.next_seq() - 1;
    let evil = ShippedFrame::for_record(
        evil_seq,
        &LogRecord::Insert {
            function: "teach".to_owned(),
            x: v("evil"),
            y: v("rewrite"),
        },
    )
    .expect("forge frame");
    let forged = Batch {
        term: replica.term(),
        seed: None,
        frames: vec![evil],
        source_last_seq: evil_seq,
        remaining_records: 0,
        remaining_bytes: 0,
        trace_id: 0,
    };
    let d0 = counter("fdb.repl.divergences");
    assert!(matches!(
        replica.apply_batch(&forged).expect("diverge"),
        ApplyOutcome::Diverged(_)
    ));
    for _ in 0..3 {
        assert!(matches!(
            replica.apply_batch(&forged).expect("still frozen"),
            ApplyOutcome::Diverged(_)
        ));
    }
    assert_eq!(
        counter("fdb.repl.divergences"),
        d0 + 1,
        "a frozen replica reports one divergence incident"
    );
}
