//! Cross-crate, engine-level property tests: random update streams driven
//! through the full stack must preserve consistency, snapshot round-trip
//! fidelity, WAL-replay equivalence and transaction atomicity.

use std::time::Duration;

use proptest::prelude::*;

use fdb::core::{replay, Budget, Database, Governor, LogRecord, Update, Wal};
use fdb::storage::Truth;
use fdb::types::{Derivation, Schema, Step, Value};
use fdb::workload::{update_stream, UpdateStreamConfig};

fn university() -> Database {
    let schema = Schema::builder()
        .function("teach", "faculty", "course", "many-many")
        .function("class_list", "course", "student", "many-many")
        .function("pupil", "faculty", "student", "many-many")
        .build()
        .unwrap();
    let mut db = Database::new(schema);
    let (t, c, p) = (
        db.resolve("teach").unwrap(),
        db.resolve("class_list").unwrap(),
        db.resolve("pupil").unwrap(),
    );
    db.register_derived(
        p,
        vec![Derivation::new(vec![Step::identity(t), Step::identity(c)]).unwrap()],
    )
    .unwrap();
    db
}

fn stream_for(db: &Database, seed: u64, length: usize) -> Vec<Update> {
    update_stream(
        db,
        UpdateStreamConfig {
            length,
            domain_size: 5,
            derived_pct: 40,
            delete_pct: 45,
            seed,
        },
    )
}

/// Every (x, y) pair of the small value domain, for truth-table probing.
fn probe_pairs(db: &Database) -> Vec<(Value, Value)> {
    let _ = db;
    let mut out = Vec::new();
    for i in 0..5 {
        for j in 0..5 {
            out.push((
                Value::atom(format!("faculty#{i}")),
                Value::atom(format!("student#{j}")),
            ));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The engine stays consistent under arbitrary update streams.
    #[test]
    fn streams_preserve_consistency(seed in 0u64..10_000, len in 0usize..60) {
        let mut db = university();
        for u in stream_for(&db, seed, len) {
            db.apply(u).unwrap();
            prop_assert!(db.is_consistent());
        }
    }

    /// A snapshot round trip preserves the truth value of every fact.
    #[test]
    fn snapshot_round_trip_preserves_all_truth(seed in 0u64..10_000, len in 0usize..60) {
        let mut db = university();
        for u in stream_for(&db, seed, len) {
            db.apply(u).unwrap();
        }
        let restored = Database::from_snapshot(&db.to_snapshot().unwrap()).unwrap();
        let pupil = db.resolve("pupil").unwrap();
        for (x, y) in probe_pairs(&db) {
            prop_assert_eq!(
                db.truth(pupil, &x, &y).unwrap(),
                restored.truth(pupil, &x, &y).unwrap()
            );
        }
        prop_assert_eq!(db.stats(), restored.stats());
    }

    /// Replaying a WAL of the same stream reproduces the same state.
    #[test]
    fn wal_replay_is_equivalent(seed in 0u64..10_000, len in 0usize..50) {
        let mut db = university();
        let path = std::env::temp_dir().join(format!(
            "fdb_prop_wal_{}_{seed}_{len}.log",
            std::process::id()
        ));
        let mut wal = Wal::create(&path).unwrap();
        for (name, dom, rng, f) in [
            ("teach", "faculty", "course", "many-many"),
            ("class_list", "course", "student", "many-many"),
            ("pupil", "faculty", "student", "many-many"),
        ] {
            wal.append(&LogRecord::Declare {
                name: name.into(),
                domain: dom.into(),
                range: rng.into(),
                functionality: f.parse().unwrap(),
            })
            .unwrap();
        }
        wal.append(&LogRecord::Derive {
            name: "pupil".into(),
            steps: vec![("teach".into(), false), ("class_list".into(), false)],
        })
        .unwrap();
        for u in stream_for(&db, seed, len) {
            let record = match &u {
                Update::Insert { function, x, y } => LogRecord::Insert {
                    function: db.schema().function(*function).name.clone(),
                    x: x.clone(),
                    y: y.clone(),
                },
                Update::Delete { function, x, y } => LogRecord::Delete {
                    function: db.schema().function(*function).name.clone(),
                    x: x.clone(),
                    y: y.clone(),
                },
                Update::Replace { function, old, new } => LogRecord::Replace {
                    function: db.schema().function(*function).name.clone(),
                    old: old.clone(),
                    new: new.clone(),
                },
            };
            db.apply(u).unwrap();
            wal.append(&record).unwrap();
        }
        drop(wal);
        let (replayed, report) = replay(&path).unwrap();
        prop_assert!(!report.torn_tail);
        prop_assert_eq!(replayed.to_snapshot().unwrap(), db.to_snapshot().unwrap());
        std::fs::remove_file(&path).ok();
    }

    /// `apply_all` is atomic: appending one failing update to any prefix
    /// leaves the database exactly as before the batch.
    #[test]
    fn batches_are_atomic(seed in 0u64..10_000, len in 1usize..30) {
        let mut db = university();
        // Pre-populate with a deterministic prefix.
        for u in stream_for(&db, seed ^ 0xABCD, 10) {
            db.apply(u).unwrap();
        }
        let before = db.to_snapshot().unwrap();
        let teach = db.resolve("teach").unwrap();
        let mut batch = stream_for(&db, seed, len);
        batch.push(Update::Insert {
            function: teach,
            x: Value::Null(fdb::types::NullId(77)),
            y: Value::atom("boom"),
        });
        prop_assert!(db.apply_all(batch).is_err());
        prop_assert_eq!(db.to_snapshot().unwrap(), before);
    }

    /// A rolled-back transaction is a transaction that never happened:
    /// after `BEGIN; ops; ROLLBACK` the store serializes byte-identically
    /// to the control that never ran the ops — same truth tables, same NC
    /// ids, same null-generator watermark — with a mid-flight savepoint
    /// round trip and governed derived reads under a random (possibly
    /// already-expired) deadline thrown in for interference.
    #[test]
    fn rollback_is_byte_identical_to_never_running(
        seed in 0u64..10_000,
        prefix in 0usize..25,
        len in 2usize..40,
        budget_ms in 0u64..3,
    ) {
        let mut db = university();
        // A committed prefix first, so the rollback has to preserve a
        // non-trivial baseline (existing NCs, nulls, tombstones).
        for u in stream_for(&db, seed ^ 0x5EED, prefix) {
            db.apply(u).unwrap();
        }
        let control = db.to_snapshot().unwrap();
        let pupil = db.resolve("pupil").unwrap();

        db.txn_begin().unwrap();
        for (i, u) in stream_for(&db, seed, len).into_iter().enumerate() {
            if i == len / 2 {
                db.txn_savepoint("s").unwrap();
            }
            if i == len / 2 + len / 4 && i > len / 2 {
                db.txn_rollback_to("s").unwrap();
            }
            // Governed reads inside the transaction: whether they finish
            // or stop exhausted, they must not perturb the store.
            if i % 5 == 0 {
                let gov = Governor::new(
                    Budget::unbounded().with_deadline(Duration::from_millis(budget_ms)),
                );
                let _ = db.truth_governed(
                    pupil,
                    &Value::atom("faculty#0"),
                    &Value::atom("student#0"),
                    &gov,
                );
                let _ = db.extension_governed(pupil, &gov);
            }
            // Semantic failures are fine — they leave no trace either.
            let _ = db.apply(u);
            prop_assert!(db.is_consistent());
        }
        prop_assert!(db.txn_active());
        db.txn_rollback().unwrap();
        prop_assert!(!db.txn_active());
        prop_assert_eq!(db.to_snapshot().unwrap(), control);
        prop_assert!(db.is_consistent());
    }

    /// Derived truth is monotone under base inserts of chain links: adding
    /// a base fact never flips another derived fact from true to false.
    #[test]
    fn base_inserts_never_falsify_derived_facts(seed in 0u64..10_000, len in 0usize..40) {
        let mut db = university();
        for u in stream_for(&db, seed, len) {
            db.apply(u).unwrap();
        }
        let pupil = db.resolve("pupil").unwrap();
        let teach = db.resolve("teach").unwrap();
        let before: Vec<(Value, Value, Truth)> = probe_pairs(&db)
            .into_iter()
            .map(|(x, y)| {
                let t = db.truth(pupil, &x, &y).unwrap();
                (x, y, t)
            })
            .collect();
        db.insert(teach, Value::atom("faculty#0"), Value::atom("course#0"))
            .unwrap();
        for (x, y, old) in before {
            let new = db.truth(pupil, &x, &y).unwrap();
            if old == Truth::True {
                prop_assert_ne!(new, Truth::False, "pupil({}, {}) was falsified", x, y);
            }
        }
    }
}
