//! Failover chaos soak: a primary on a fault-injected `SimDisk` drives a
//! generated workload while two replicas (on their own disks) tail it
//! over the shipping protocol. Each round the primary crashes — either a
//! torn tail from an exhausted write budget or a clean stop at an
//! arbitrary operation — one replica catches up from the surviving image
//! and is promoted, and the promoted state must equal what an
//! independent recovery of a pristine copy of the crashed image yields.
//! The resurrected old primary is then fenced by term, and an injected
//! conflicting frame must surface as a divergence report, never a silent
//! overwrite. `FDB_REPL_ROUNDS` scales the soak (default 10).

use std::path::{Path, PathBuf};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fdb::core::wal::LogRecord;
use fdb::core::{
    Database, DurabilityConfig, LoggedDatabase, SimDisk, SyncPolicy, Update, WalStorage,
};
use fdb::repl::{ApplyOutcome, Batch, DivergenceKind, Replica, ReplicationSource, ShippedFrame};
use fdb::types::{Derivation, Functionality, Schema, Step, Value};
use fdb::workload::{update_stream, UpdateStreamConfig};

const PRIMARY: &str = "/primary";

fn v(s: &str) -> Value {
    Value::atom(s)
}

fn rounds() -> u64 {
    std::env::var("FDB_REPL_ROUNDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10)
}

/// The pupil triangle, as a plain database for stream generation.
fn triangle() -> Database {
    let schema = Schema::builder()
        .function("teach", "faculty", "course", "many-many")
        .function("class_list", "course", "student", "many-many")
        .function("pupil", "faculty", "student", "many-many")
        .build()
        .expect("schema");
    let mut db = Database::new(schema);
    let (t, c, p) = (
        db.resolve("teach").expect("teach"),
        db.resolve("class_list").expect("class_list"),
        db.resolve("pupil").expect("pupil"),
    );
    db.register_derived(
        p,
        vec![Derivation::new(vec![Step::identity(t), Step::identity(c)]).expect("derivation")],
    )
    .expect("register");
    db
}

/// Drives schema setup plus `stream` (up to `stop_at` updates) through a
/// fresh primary on `disk`, calling `tick` after each durable write.
/// Returns early once the disk's write budget trips; semantic update
/// failures are skipped, exactly as they are unlogged.
fn drive(
    disk: &Arc<SimDisk>,
    config: DurabilityConfig,
    stream: &[Update],
    stop_at: usize,
    mut tick: impl FnMut(&LoggedDatabase),
) {
    let storage: Arc<dyn WalStorage> = disk.clone();
    let mut p = match LoggedDatabase::create_with(storage, PRIMARY, config) {
        Ok(p) => p,
        Err(_) => {
            assert!(disk.crashed(), "create failed without a crash");
            return;
        }
    };
    for (name, dom, rng) in [
        ("teach", "faculty", "course"),
        ("class_list", "course", "student"),
        ("pupil", "faculty", "student"),
    ] {
        if p.declare(name, dom, rng, Functionality::ManyMany).is_err() {
            assert!(disk.crashed(), "declare failed without a crash");
            return;
        }
        tick(&p);
    }
    if p.derive("pupil", &[("teach", false), ("class_list", false)])
        .is_err()
    {
        assert!(disk.crashed(), "derive failed without a crash");
        return;
    }
    tick(&p);
    for update in stream.iter().take(stop_at) {
        match p.apply_update(update) {
            Ok(()) => tick(&p),
            Err(_) if disk.crashed() => return,
            Err(_) => {} // semantic failure: unlogged, state unchanged
        }
    }
}

/// Ships up to `max` records from a WAL directory to `replica`; panics on
/// any outcome other than clean application.
fn ship(storage: Arc<dyn WalStorage>, dir: &str, replica: &mut Replica, max: usize) {
    let mut source = ReplicationSource::new(storage, dir).expect("source");
    let batch = source.poll(replica.next_seq(), max).expect("poll");
    if batch.is_empty() {
        return;
    }
    match replica.apply_batch(&batch).expect("apply") {
        ApplyOutcome::Applied { .. } => {}
        other => panic!("healthy ship hit {other:?}"),
    }
}

/// Ships everything the directory has, in bounded batches, until dry.
fn ship_all(storage: &Arc<dyn WalStorage>, dir: &str, replica: &mut Replica) {
    loop {
        let mut source = ReplicationSource::new(storage.clone(), dir).expect("source");
        let batch = source.poll(replica.next_seq(), 64).expect("poll");
        if batch.is_empty() {
            break;
        }
        match replica.apply_batch(&batch).expect("apply") {
            ApplyOutcome::Applied { .. } => {}
            other => panic!("catch-up hit {other:?}"),
        }
    }
}

/// Copies every file under `dir` to a fresh disk, byte for byte — the
/// pristine crashed image an independent recovery (the oracle) runs on.
fn clone_image(disk: &SimDisk, dir: &str) -> Arc<SimDisk> {
    let copy = Arc::new(SimDisk::new());
    copy.create_dir_all(Path::new(dir)).expect("mkdir");
    let mut paths: Vec<PathBuf> = disk
        .paths()
        .into_iter()
        .filter(|p| p.starts_with(dir))
        .collect();
    paths.sort();
    for p in paths {
        let bytes = disk.read(&p).expect("read image file");
        let mut f = copy.create(&p).expect("create copy");
        f.append(&bytes).expect("copy bytes");
    }
    copy
}

fn run_round(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let stream = update_stream(
        &triangle(),
        UpdateStreamConfig {
            length: 120,
            domain_size: 6,
            derived_pct: 30,
            delete_pct: 40,
            seed,
        },
    );
    let config = DurabilityConfig {
        sync_policy: SyncPolicy::Always,
        // Half the rounds checkpoint aggressively, so catch-up crosses
        // pruned segments and the seed-install path; small segments force
        // rotation under shipping.
        checkpoint_every: if rng.gen_bool(0.5) { Some(24) } else { None },
        segment_max_bytes: 1024,
    };

    // Dry run to learn the full image size, so a torn crash can land at
    // an arbitrary byte inside the run.
    let probe = Arc::new(SimDisk::new());
    drive(&probe, config, &stream, usize::MAX, |_| {});
    let full = probe.total_written();
    assert!(full > 0, "dry run wrote nothing");

    let disk_p = Arc::new(SimDisk::new());
    let torn = rng.gen_bool(0.5);
    let stop_at = if torn {
        disk_p.set_write_budget(Some(rng.gen_range(full / 4..full)));
        usize::MAX
    } else {
        rng.gen_range(stream.len() / 4..stream.len())
    };

    // Replicas live on their own disks: shipping reads the primary's
    // storage, the local copy lands on the replica's own device.
    let disk_r1 = Arc::new(SimDisk::new());
    let disk_r2 = Arc::new(SimDisk::new());
    let mut r1 = Replica::open(disk_r1.clone() as Arc<dyn WalStorage>, "/r1").expect("open r1");
    let mut r2 = Replica::open(disk_r2.clone() as Arc<dyn WalStorage>, "/r2").expect("open r2");

    let mut tick_rng = StdRng::seed_from_u64(seed ^ 0x7157);
    drive(&disk_p, config, &stream, stop_at, |_| {
        // r1 tails closely, r2 lags (and so exercises bigger catch-ups
        // and, under checkpointing, the seed path).
        if tick_rng.gen_bool(0.4) {
            let max = tick_rng.gen_range(1..8);
            ship(disk_p.clone(), PRIMARY, &mut r1, max);
        }
        if tick_rng.gen_bool(0.1) {
            ship(disk_p.clone(), PRIMARY, &mut r2, 4);
        }
        if tick_rng.gen_bool(0.05) {
            // Replica crash: drop the handle mid-stream and recover from
            // its own local WAL. Catch-up must be invisible.
            let before = r1.next_seq();
            drop(std::mem::replace(
                &mut r1,
                Replica::open(disk_r1.clone() as Arc<dyn WalStorage>, "/r1")
                    .expect("reopen r1 after crash"),
            ));
            assert_eq!(r1.next_seq(), before, "replica restart lost frames");
        }
    });
    disk_p.revive();

    // Oracle: recover a pristine copy of the crashed image. (Recovery
    // mutates the log — closes dangling frames, truncates torn tails —
    // so the original stays untouched for shipping and resurrection.)
    let storage_p: Arc<dyn WalStorage> = disk_p.clone();
    let oracle_disk = clone_image(&disk_p, PRIMARY);
    let (oracle, oracle_report) =
        LoggedDatabase::open_with(oracle_disk as Arc<dyn WalStorage>, PRIMARY, config)
            .expect("oracle recovery");
    assert!(
        oracle.database().is_consistent(),
        "oracle inconsistent (seed {seed})"
    );
    let want = oracle.database().to_snapshot().expect("oracle snapshot");

    // Failover: r1 catches up from the surviving image, then promotes.
    ship_all(&storage_p, PRIMARY, &mut r1);
    let promo = r1.promote().expect("promotion");
    assert_eq!(promo.logged.term(), 2, "promotion must open term 2");
    assert_eq!(
        promo.report.uncommitted_discarded, oracle_report.uncommitted_discarded,
        "promotion and oracle disagree on the dangling frame (seed {seed})"
    );
    let got = promo
        .logged
        .database()
        .to_snapshot()
        .expect("promoted snapshot");
    assert_eq!(
        got, want,
        "promoted replica diverged from the oracle (seed {seed}, torn {torn})"
    );

    // Split brain: the old primary comes back on term 1 and takes a
    // write. A replica following the promoted primary (term 2) must
    // fence its batches — by term, before any frame is even looked at.
    let (mut old, _) = LoggedDatabase::open_with(storage_p.clone(), PRIMARY, config)
        .expect("resurrect old primary");
    assert_eq!(old.term(), 1);
    old.insert("teach", v("zombie"), v("split_brain"))
        .expect("old primary still accepts writes");

    let storage_r1: Arc<dyn WalStorage> = disk_r1.clone();
    ship_all(&storage_r1, "/r1", &mut r2);
    assert_eq!(r2.term(), 2, "r2 must adopt the promoted term");
    let mut old_source = ReplicationSource::for_primary(&old);
    let stale = old_source.poll(1, 16).expect("poll old primary");
    match r2.apply_batch(&stale).expect("fence check") {
        ApplyOutcome::Fenced {
            batch_term,
            replica_term,
        } => {
            assert_eq!((batch_term, replica_term), (1, 2), "seed {seed}");
        }
        other => panic!("resurrected primary was not fenced: {other:?} (seed {seed})"),
    }

    // Divergence: a CRC-valid frame that disagrees with the local copy at
    // an already-stored position must quarantine and freeze — never
    // silently overwrite.
    let evil_seq = r2.next_seq() - 1;
    let evil = ShippedFrame::for_record(
        evil_seq,
        &LogRecord::Insert {
            function: "teach".to_owned(),
            x: v("evil"),
            y: v("rewrite"),
        },
    )
    .expect("forge frame");
    let forged = Batch {
        term: r2.term(),
        seed: None,
        frames: vec![evil],
        source_last_seq: evil_seq,
        remaining_records: 0,
        remaining_bytes: 0,
        trace_id: 0,
    };
    match r2.apply_batch(&forged).expect("divergence check") {
        ApplyOutcome::Diverged(report) => {
            assert_eq!(report.seq, evil_seq);
            assert_eq!(report.kind, DivergenceKind::PayloadMismatch);
            assert!(
                disk_r2.is_file(&report.quarantine),
                "quarantine file missing: {report:?}"
            );
        }
        other => panic!("conflicting frame not detected: {other:?} (seed {seed})"),
    }
    assert!(r2.status().diverged);
    assert!(
        r2.promote().is_err(),
        "a diverged replica must refuse promotion (seed {seed})"
    );
}

#[test]
fn failover_soak() {
    fdb::obs::set_enabled(true);
    for round in 0..rounds() {
        run_round(0xF417_0000 + round);
    }
}

/// A primary that crashes inside a transaction: the promoted survivor
/// discards the dangling frame, the discard is visible in the recovery
/// report, in the metrics registry, and in the operator-facing
/// `STATS JSON` output.
#[test]
fn promotion_discards_dangling_txn_and_reports_it() {
    fdb::obs::set_enabled(true);
    let disk = Arc::new(SimDisk::new());
    let mut p = LoggedDatabase::create_with(
        disk.clone() as Arc<dyn WalStorage>,
        "/p",
        DurabilityConfig::default(),
    )
    .expect("create primary");
    p.declare("teach", "faculty", "course", Functionality::ManyMany)
        .expect("declare");
    p.insert("teach", v("euclid"), v("math")).expect("insert");
    p.begin().expect("begin");
    p.insert("teach", v("doomed"), v("uncommitted"))
        .expect("insert in txn");
    // The primary "crashes" here: both frames are durable, the commit
    // marker never arrives.

    let rdisk = Arc::new(SimDisk::new());
    let mut r = Replica::open(rdisk as Arc<dyn WalStorage>, "/r").expect("open replica");
    ship_all(&(disk as Arc<dyn WalStorage>), "/p", &mut r);

    let reg = fdb::obs::registry();
    let before = reg.recovery_uncommitted_discarded.get();
    let promo = r.promote().expect("promotion");
    assert!(
        promo.report.uncommitted_discarded > 0,
        "dangling frame not counted: {:?}",
        promo.report
    );
    assert!(
        reg.recovery_uncommitted_discarded.get() - before
            >= promo.report.uncommitted_discarded as u64,
        "metrics registry missed the discard"
    );
    let snapshot = promo.logged.database().to_snapshot().expect("snapshot");
    assert!(snapshot.contains("euclid"), "committed fact lost");
    assert!(!snapshot.contains("doomed"), "uncommitted fact survived");

    // The counter is part of the STATS JSON surface.
    let mut engine = fdb::lang::Engine::new();
    let out = engine.execute_line("STATS JSON").expect("stats json");
    assert!(
        out.contains("fdb.recovery.uncommitted_discarded"),
        "STATS JSON lacks the discard counter: {out}"
    );
}

/// A replica that freezes on a forged frame must leave a flight dump
/// behind — written by the quarantine path itself — naming the
/// divergence and carrying the causal `fdb.repl.apply` span that was
/// mid-flight when the histories disagreed.
#[test]
fn divergence_writes_flight_dump_with_causal_spans() {
    fdb::obs::set_enabled(true);
    fdb::obs::causal::set_tracing(true);
    fdb::obs::causal::set_sample_rate(1);

    let dump_dir = std::env::temp_dir().join(format!("fdb-flight-repl-{}", std::process::id()));
    std::fs::create_dir_all(&dump_dir).unwrap();
    fdb::obs::flight::set_dump_dir(Some(dump_dir.clone()));

    let disk = Arc::new(SimDisk::new());
    let mut p = LoggedDatabase::create_with(
        disk.clone() as Arc<dyn WalStorage>,
        "/p_flight",
        DurabilityConfig::default(),
    )
    .expect("create primary");
    p.declare("teach", "faculty", "course", Functionality::ManyMany)
        .expect("declare");
    p.insert("teach", v("euclid"), v("math")).expect("insert");

    let rdisk = Arc::new(SimDisk::new());
    let mut r =
        Replica::open(rdisk.clone() as Arc<dyn WalStorage>, "/r_flight").expect("open replica");
    let mut src = ReplicationSource::for_primary(&p);
    let batch = src.poll(1, 100).expect("poll");
    r.apply_batch(&batch).expect("apply");

    let evil_seq = r.next_seq() - 1;
    let evil = ShippedFrame::for_record(
        evil_seq,
        &LogRecord::Insert {
            function: "teach".to_owned(),
            x: v("evil"),
            y: v("rewrite"),
        },
    )
    .expect("forge frame");
    let forged = Batch {
        term: r.term(),
        seed: None,
        frames: vec![evil],
        source_last_seq: evil_seq,
        remaining_records: 0,
        remaining_bytes: 0,
        trace_id: 0,
    };
    assert!(matches!(
        r.apply_batch(&forged).expect("divergence check"),
        ApplyOutcome::Diverged(_)
    ));

    let mut found = false;
    for entry in std::fs::read_dir(&dump_dir).expect("read dump dir") {
        let body = std::fs::read_to_string(entry.expect("entry").path()).unwrap_or_default();
        if body.contains("replica_divergence") && body.contains("fdb.repl.apply") {
            found = true;
        }
    }
    assert!(
        found,
        "no flight dump captured the divergence with its apply span"
    );

    fdb::obs::flight::set_dump_dir(None);
    fdb::obs::causal::set_sample_rate(fdb::obs::causal::DEFAULT_SAMPLE_RATE);
    std::fs::remove_dir_all(&dump_dir).ok();
}
