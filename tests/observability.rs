//! Observability surface: golden `EXPLAIN ANALYZE` output on the paper's
//! Example 1 derivation, and registry invariants (monotone counters,
//! `STATS RESET` zeroing) under random statement sequences.
//!
//! The metrics registry is process-global, so the tests in this file
//! serialize on a lock: monotonicity would survive interleaving (other
//! threads only increment), but the reset-zeroes assertion would not.

use std::sync::Mutex;

use proptest::prelude::*;

use fdb::lang::Engine;
use fdb::obs;

/// Serializes the tests in this binary around the global registry.
static REGISTRY_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    REGISTRY_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The paper's Example 1: `pupil = teach o class_list` with euclid and
/// laplace both teaching math to john and bill.
fn university() -> Engine {
    let mut e = Engine::new();
    for line in [
        "DECLARE teach: faculty -> course (many-many)",
        "DECLARE class_list: course -> student (many-many)",
        "DECLARE pupil: faculty -> student (many-many)",
        "DERIVE pupil = teach o class_list",
        "INSERT teach(euclid, math)",
        "INSERT teach(laplace, math)",
        "INSERT class_list(math, john)",
        "INSERT class_list(math, bill)",
    ] {
        e.execute_line(line).unwrap();
    }
    e
}

/// Drops every line containing the word "time" — the renderer isolates
/// all timing on such lines precisely so this filter leaves a stable,
/// byte-comparable report.
fn stable_lines(report: &str) -> String {
    report
        .lines()
        .filter(|l| !l.contains("time"))
        .map(|l| format!("{l}\n"))
        .collect()
}

#[test]
fn explain_analyze_golden_output_on_example_1() {
    let _guard = lock();
    obs::set_enabled(true);
    let mut e = university();

    let out = e
        .execute_line("EXPLAIN ANALYZE pupil(euclid, john)")
        .unwrap();
    assert_eq!(
        stable_lines(&out),
        "analyze pupil(euclid, john): verdict T, cache miss\n\
         \x20 derivation 1: teach o class_list — direction: forward, \
         est cost: 3.0, est chains: 1.0, actual chains: 1, exact true: 1, \
         nc-demoted: 0, governor steps: 3\n"
    );

    // Deleting the derived fact leaves partial information behind: the
    // chain still matches but is demoted by the recorded NC, and the
    // verdict flips to F. The report shows exactly that.
    e.execute_line("DELETE pupil(euclid, john)").unwrap();
    let out = e
        .execute_line("EXPLAIN ANALYZE pupil(euclid, john)")
        .unwrap();
    assert_eq!(
        stable_lines(&out),
        "analyze pupil(euclid, john): verdict F, cache miss\n\
         \x20 derivation 1: teach o class_list — direction: forward, \
         est cost: 3.0, est chains: 1.0, actual chains: 1, exact true: 0, \
         nc-demoted: 1, governor steps: 3\n"
    );

    // Base functions report the probe shape instead of a plan.
    let out = e
        .execute_line("EXPLAIN ANALYZE teach(euclid, math)")
        .unwrap();
    assert_eq!(
        stable_lines(&out),
        "analyze teach(euclid, math): verdict A, cache miss\n\
         \x20 teach is a base function: single index probe, no plan\n"
    );
}

#[test]
fn txn_counters_track_transaction_lifecycle() {
    let _guard = lock();
    obs::set_enabled(true);
    let mut e = university();
    let get = |key: &str| {
        obs::registry()
            .snapshot()
            .counters
            .iter()
            .find(|c| c.key == key)
            .map(|c| c.value)
            .unwrap_or_else(|| panic!("registry has no counter {key}"))
    };
    let (b0, c0, r0, s0) = (
        get("fdb.txn.begins"),
        get("fdb.txn.commits"),
        get("fdb.txn.rollbacks"),
        get("fdb.txn.savepoint_rollbacks"),
    );
    e.execute_line("BEGIN").unwrap();
    e.execute_line("INSERT teach(noether, algebra)").unwrap();
    e.execute_line("SAVEPOINT s").unwrap();
    e.execute_line("INSERT teach(noether, logic)").unwrap();
    e.execute_line("ROLLBACK TO s").unwrap();
    e.execute_line("COMMIT").unwrap();
    e.execute_line("BEGIN").unwrap();
    e.execute_line("INSERT teach(galois, groups)").unwrap();
    e.execute_line("ROLLBACK").unwrap();
    assert_eq!(get("fdb.txn.begins"), b0 + 2);
    assert_eq!(get("fdb.txn.commits"), c0 + 1);
    assert_eq!(get("fdb.txn.rollbacks"), r0 + 1);
    assert_eq!(get("fdb.txn.savepoint_rollbacks"), s0 + 1);
}

/// `STATS RESET` starts a fresh observability epoch for spans too: the
/// trace ring, the open-span table and the slow-query log all clear, so
/// `SHOW TRACE` right after a reset reports nothing — including the
/// reset statement's own span, which was mid-flight when the ring
/// cleared and must not resurface when it closes.
#[test]
fn stats_reset_clears_trace_and_slow_log() {
    let _guard = lock();
    obs::set_enabled(true);
    let mut e = university();
    e.execute_line("TRACE ON").unwrap();
    e.execute_line("TRUTH pupil(euclid, john)").unwrap();
    let out = e.execute_line("SHOW TRACE").unwrap();
    assert!(
        out.contains("fdb.lang.statement"),
        "expected spans before reset, got: {out}"
    );

    e.execute_line("STATS RESET").unwrap();
    let out = e.execute_line("SHOW TRACE").unwrap();
    assert_eq!(out, "no spans recorded\n");
    let out = e.execute_line("SHOW SLOW").unwrap();
    assert_eq!(out, "no slow statements recorded\n");

    // Restore the always-on default sampling for the rest of the binary.
    e.execute_line(&format!(
        "TRACE ON SAMPLE {}",
        obs::causal::DEFAULT_SAMPLE_RATE
    ))
    .unwrap();
}

/// Statement vocabulary for the random sequences: a mix of reads, writes,
/// introspection and one guaranteed parse error.
const VOCAB: &[&str] = &[
    "INSERT teach(euclid, math)",
    "INSERT class_list(math, john)",
    "INSERT class_list(physics, ada)",
    "DELETE pupil(euclid, john)",
    "DELETE class_list(math, john)",
    "TRUTH pupil(euclid, john)",
    "TRUTH pupil(laplace, bill)",
    "QUERY pupil(euclid)",
    "INVERSE pupil(john)",
    "SHOW teach",
    "EXPLAIN pupil(euclid, john)",
    "EXPLAIN PLAN pupil(euclid, john)",
    "EXPLAIN ANALYZE pupil(laplace, john)",
    "CHECK",
    "STATS",
    "THIS IS NOT A STATEMENT (",
    // Transaction control — sequences are rarely balanced, so these also
    // exercise the typed unbalanced-transaction errors (counted, like any
    // other semantic failure).
    "BEGIN",
    "SAVEPOINT s",
    "ROLLBACK TO s",
    "ROLLBACK",
    "COMMIT",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Counters are monotonically non-decreasing across any statement
    /// sequence, and `STATS RESET` zeroes every one of them.
    #[test]
    fn counters_are_monotone_and_reset_zeroes(
        picks in prop::collection::vec(0usize..VOCAB.len(), 1..40),
    ) {
        let _guard = lock();
        obs::set_enabled(true);
        let mut e = university();
        let mut prev = obs::registry().snapshot();
        for &i in &picks {
            // Semantic and parse errors are fine — they are themselves
            // counted statements.
            let _ = e.execute_line(VOCAB[i]);
            let next = obs::registry().snapshot();
            for (p, n) in prev.counters.iter().zip(next.counters.iter()) {
                prop_assert_eq!(p.key, n.key);
                prop_assert!(
                    n.value >= p.value,
                    "counter {} went backwards: {} -> {}", n.key, p.value, n.value
                );
            }
            for (p, n) in prev.histograms.iter().zip(next.histograms.iter()) {
                prop_assert_eq!(p.key, n.key);
                prop_assert!(
                    n.state.count >= p.state.count,
                    "histogram {} count went backwards", n.key
                );
            }
            prev = next;
        }

        // `STATS RESET` zeroes the registry; the reset statement itself is
        // then the first statement of the fresh epoch, so the language
        // front end's own accounting may show exactly that one statement.
        e.execute_line("STATS RESET").unwrap();
        let zeroed = obs::registry().snapshot();
        for c in &zeroed.counters {
            let allowed = match c.key {
                "fdb.lang.statements" | "fdb.lang.rows_produced" => 1,
                _ => 0,
            };
            prop_assert!(
                c.value <= allowed,
                "counter {} survived STATS RESET at {}", c.key, c.value
            );
        }
        for h in &zeroed.histograms {
            let allowed = if h.key == "fdb.lang.statement_latency_ns" { 1 } else { 0 };
            prop_assert!(
                h.state.count <= allowed,
                "histogram {} survived STATS RESET", h.key
            );
        }
    }
}
