//! MVCC + group-commit chaos: snapshot readers racing group-committing
//! writers under injected fsync faults and governor deadlines, plus a
//! deterministic crash matrix that cuts the disk *inside* a commit
//! group's appended-but-unsynced record batch.
//!
//! Invariants:
//!
//! * **No torn reads** — every pinned snapshot is internally consistent,
//!   and a transaction's paired facts appear both-or-neither.
//! * **No uncommitted transaction is ever visible** — readers can never
//!   observe a frame that later rolled back, nor a half-applied one.
//! * **Reader progress** — pins are never blocked by writers; versions
//!   observed by one reader never decrease.
//! * **Crash-recovery parity** — after the soak, recovery reproduces the
//!   live state; a cut inside a commit group recovers to a prefix of
//!   whole transactions.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fdb::core::{
    Database, DurabilityConfig, LoggedDatabase, OverloadPolicy, SharedLoggedDatabase, SimDisk,
    SyncPolicy, WalStorage,
};
use fdb::governor::Governor;
use fdb::types::{FdbError, Schema, Value};

const SEED: u64 = 0x3137_C0DE;
const WRITERS: usize = 4;
const READERS: usize = 4;
const DEFAULT_ROUNDS: usize = 60;

/// Per-thread round count; `FDB_CHAOS_ROUNDS` scales it up for CI soak
/// runs (the workload stays seeded and bounded, just longer).
fn rounds() -> usize {
    std::env::var("FDB_CHAOS_ROUNDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_ROUNDS)
}

fn v(s: impl std::fmt::Display) -> Value {
    Value::atom(s.to_string())
}

fn teach_only() -> Database {
    let schema = Schema::builder()
        .function("teach", "faculty", "course", "many-many")
        .build()
        .unwrap();
    Database::new(schema)
}

/// N snapshot readers against M group-committing writers, with fsync
/// faults and tight deadlines in the mix. Writers interleave grouped
/// autocommit inserts with whole BEGIN..COMMIT/ROLLBACK frames that
/// write *paired* marker facts; readers continuously pin snapshots and
/// check pair atomicity, version monotonicity, and consistency.
#[test]
fn chaos_mvcc_readers_vs_group_committers() {
    let disk = Arc::new(SimDisk::new());
    let mut ldb = LoggedDatabase::create_with(
        disk.clone(),
        "/chaos_mvcc_db",
        DurabilityConfig {
            sync_policy: SyncPolicy::Always, // the group-commit fast path
            checkpoint_every: Some(64),
            segment_max_bytes: 4096,
        },
    )
    .unwrap();
    ldb.import_schema(&teach_only()).unwrap();
    let shared = SharedLoggedDatabase::with_policy(
        ldb,
        OverloadPolicy {
            lock_timeout: Duration::from_millis(40),
            max_inflight_writers: 8,
        },
    );
    let teach = shared.read(|db| db.resolve("teach")).unwrap().unwrap();

    // Sporadic fsync faults: group leaders will fail and report to every
    // covered follower; the engine must stay typed and consistent.
    for k in 1..6u64 {
        disk.fail_sync(k * 13);
    }

    let committed_frames = Arc::new(AtomicU64::new(0));
    let acked_inserts = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();
    for t in 0..WRITERS {
        let h = shared.clone();
        let committed_frames = Arc::clone(&committed_frames);
        let acked_inserts = Arc::clone(&acked_inserts);
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(SEED ^ (t as u64 + 1));
            for i in 0..rounds() {
                match rng.gen_range(0..3u32) {
                    // Grouped autocommit insert.
                    0 => match h.insert("teach", v(format!("solo{t}_{i}")), v("m")) {
                        Ok(()) => {
                            acked_inserts.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(FdbError::Overloaded { .. } | FdbError::Internal(_)) => {}
                        Err(other) => panic!("untyped failure: {other:?}"),
                    },
                    // A whole transaction writing PAIRED facts: readers
                    // must see both or neither, never one.
                    1 => {
                        let commit = rng.gen_range(0..4u32) != 0;
                        let gov =
                            Governor::with_deadline(Duration::from_millis(rng.gen_range(20..120)));
                        let r = h.retry_on_overload(&gov, 4, |ldb| {
                            ldb.begin()?;
                            let frame = (|| {
                                ldb.insert("teach", v(format!("open{t}_{i}")), v("m"))?;
                                ldb.insert("teach", v(format!("close{t}_{i}")), v("m"))?;
                                if commit {
                                    ldb.commit()
                                } else {
                                    ldb.rollback()
                                }
                            })();
                            if frame.is_err() && ldb.txn_active() {
                                let _ = ldb.rollback();
                            }
                            frame
                        });
                        match r {
                            Ok(()) => {
                                if commit {
                                    committed_frames.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            Err(
                                FdbError::Overloaded { .. }
                                | FdbError::DeadlineExceeded(_)
                                | FdbError::TxnAborted { .. }
                                | FdbError::Internal(_),
                            ) => {}
                            Err(other) => panic!("untyped failure: {other:?}"),
                        }
                    }
                    // Governed sync under a possibly-dead deadline.
                    _ => {
                        let gov =
                            Governor::with_deadline(Duration::from_millis(rng.gen_range(0..20)));
                        match h.sync_governed(&gov) {
                            Ok(())
                            | Err(FdbError::Overloaded { .. })
                            | Err(FdbError::DeadlineExceeded(_))
                            | Err(FdbError::Cancelled)
                            | Err(FdbError::Internal(_)) => {}
                            Err(other) => panic!("untyped failure: {other:?}"),
                        }
                    }
                }
            }
        }));
    }
    for r in 0..READERS {
        let h = shared.clone();
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(SEED ^ (0x40 + r as u64));
            let mut last_version = 0u64;
            let mut round = 0usize;
            while stop.load(Ordering::Acquire) == 0 {
                round += 1;
                let pin = h.pin();
                // Versions observed by one reader never go backwards.
                assert!(
                    pin.version() >= last_version,
                    "snapshot version regressed: {} < {last_version}",
                    pin.version()
                );
                last_version = pin.version();
                // Paired frame facts: both or neither, on the same pin.
                let (wt, wi) = (rng.gen_range(0..WRITERS), rng.gen_range(0..rounds()));
                let open = pin
                    .truth(teach, &v(format!("open{wt}_{wi}")), &v("m"))
                    .unwrap();
                let close = pin
                    .truth(teach, &v(format!("close{wt}_{wi}")), &v("m"))
                    .unwrap();
                assert_eq!(
                    open, close,
                    "torn transaction visible: open{wt}_{wi}={open:?} close{wt}_{wi}={close:?}"
                );
                // Occasional full-state checks on the frozen pin.
                if round.is_multiple_of(32) {
                    assert!(pin.is_consistent());
                }
                std::thread::yield_now();
            }
        }));
    }
    // Writers were spawned first: join them, then release the readers.
    for (i, h) in handles.into_iter().enumerate() {
        h.join().expect("worker panicked");
        if i + 1 == WRITERS {
            stop.store(1, Ordering::Release);
        }
    }

    assert!(shared.is_consistent().unwrap());
    assert!(
        acked_inserts.load(Ordering::Relaxed) > 0,
        "every grouped insert failed"
    );
    assert!(
        committed_frames.load(Ordering::Relaxed) > 0,
        "every transaction frame was shed"
    );

    // Crash-recovery parity: the final snapshot equals recovery.
    let live = shared.read(|db| db.to_snapshot().unwrap()).unwrap();
    drop(shared.try_unwrap().expect("last handle"));
    let (recovered, _report) =
        LoggedDatabase::open_with(disk, "/chaos_mvcc_db", DurabilityConfig::default()).unwrap();
    assert!(!recovered.txn_active(), "recovery left a frame open");
    assert_eq!(recovered.database().to_snapshot().unwrap(), live);
}

/// Crash matrix for commit groups: a batch of autocommit records is
/// appended with the inline fsync deferred (exactly what the group
/// leader sees just before its batched fsync), and the disk is cut at
/// every byte offset inside the batch. Every truncated image must
/// recover to a prefix of whole records — each autocommit record is a
/// whole transaction, so recovery may never surface half an update, an
/// open frame, or an inconsistent store.
#[test]
fn crash_inside_a_commit_group_recovers_to_whole_record_prefix() {
    const GROUP: usize = 6;

    // Reference run: unbounded disk, recording the expected state after
    // each record and the bytes consumed, so cuts can be mapped back to
    // record boundaries.
    let full_disk = Arc::new(SimDisk::new());
    let mut expected = Vec::new(); // state snapshots: after 0..=N records
    {
        let mut ldb = LoggedDatabase::create_with(
            full_disk.clone() as Arc<dyn WalStorage>,
            "/group_crash",
            DurabilityConfig {
                sync_policy: SyncPolicy::Always,
                checkpoint_every: None,
                segment_max_bytes: 1 << 20,
            },
        )
        .unwrap();
        // Cuts during setup recover to the pre-schema or post-schema
        // state; both belong to the legal-prefix set.
        expected.push(ldb.database().to_snapshot().unwrap());
        ldb.import_schema(&teach_only()).unwrap();
        ldb.sync().unwrap();
        expected.push(ldb.database().to_snapshot().unwrap());
        ldb.set_defer_sync(true); // the group is forming: no per-record fsync
        for i in 0..GROUP {
            ldb.insert("teach", v(format!("g{i}")), v(format!("c{i}")))
                .unwrap();
            expected.push(ldb.database().to_snapshot().unwrap());
        }
        ldb.set_defer_sync(false);
        ldb.sync().unwrap(); // the leader's batched fsync
    }
    let total_bytes: u64 = full_disk
        .paths()
        .iter()
        .map(|p| full_disk.size_of(p).unwrap())
        .sum();

    // Matrix: cut the write budget at every byte of the run.
    for budget in 0..=total_bytes {
        let disk = Arc::new(SimDisk::new());
        disk.set_write_budget(Some(budget));
        {
            let r = LoggedDatabase::create_with(
                disk.clone() as Arc<dyn WalStorage>,
                "/group_crash",
                DurabilityConfig {
                    sync_policy: SyncPolicy::Always,
                    checkpoint_every: None,
                    segment_max_bytes: 1 << 20,
                },
            );
            if let Ok(mut ldb) = r {
                let setup = ldb.import_schema(&teach_only()).and_then(|_| ldb.sync());
                if setup.is_ok() {
                    ldb.set_defer_sync(true);
                    for i in 0..GROUP {
                        if ldb
                            .insert("teach", v(format!("g{i}")), v(format!("c{i}")))
                            .is_err()
                        {
                            assert!(disk.crashed(), "insert failed without a crash");
                            break;
                        }
                    }
                    if !disk.crashed() {
                        ldb.set_defer_sync(false);
                        let _ = ldb.sync();
                    }
                } else {
                    assert!(disk.crashed(), "setup failed without a crash");
                }
            } else {
                assert!(disk.crashed(), "create failed without a crash");
            }
        }
        disk.revive();

        let (recovered, report) =
            LoggedDatabase::open_with(disk, "/group_crash", DurabilityConfig::default())
                .unwrap_or_else(|e| panic!("recovery at budget {budget} failed: {e}"));
        assert!(
            !recovered.txn_active(),
            "budget {budget}: recovery left a frame open"
        );
        assert!(
            recovered.database().is_consistent(),
            "budget {budget}: inconsistent recovery"
        );
        let got = recovered.database().to_snapshot().unwrap();
        assert!(
            expected.contains(&got),
            "budget {budget}: recovered state is not a whole-record prefix ({report:?})"
        );
    }
}
