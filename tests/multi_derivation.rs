//! Derived functions with *multiple* derivations (cyclic function
//! graphs, §2.2: "In the case of cyclic function graphs there can be
//! multiple derivations for a derived function").
//!
//! Semantics under test: truth is the three-valued OR over all
//! derivations; a derived delete negates the chains of *every*
//! derivation (otherwise the fact would remain derivable — a missed
//! effect); a derived insert needs only one witness chain, chosen by the
//! insert policy.

use fdb::core::database::InsertPolicy;
use fdb::core::Database;
use fdb::storage::Truth;
use fdb::types::{Derivation, Schema, Step, Value};

fn v(s: &str) -> Value {
    Value::atom(s)
}

/// reaches: a → c, derivable both via hop1 o hop2 and via direct.
fn diamond() -> Database {
    let schema = Schema::builder()
        .function("hop1", "a", "b", "many-many")
        .function("hop2", "b", "c", "many-many")
        .function("direct", "a", "c", "many-many")
        .function("reaches", "a", "c", "many-many")
        .build()
        .unwrap();
    let mut db = Database::new(schema);
    let (h1, h2, d, r) = (
        db.resolve("hop1").unwrap(),
        db.resolve("hop2").unwrap(),
        db.resolve("direct").unwrap(),
        db.resolve("reaches").unwrap(),
    );
    db.register_derived(
        r,
        vec![
            Derivation::new(vec![Step::identity(h1), Step::identity(h2)]).unwrap(),
            Derivation::single(Step::identity(d)),
        ],
    )
    .unwrap();
    db
}

#[test]
fn truth_is_or_over_derivations() {
    let mut db = diamond();
    let (h1, h2, d, r) = (
        db.resolve("hop1").unwrap(),
        db.resolve("hop2").unwrap(),
        db.resolve("direct").unwrap(),
        db.resolve("reaches").unwrap(),
    );
    // Witness only via the two-hop derivation.
    db.insert(h1, v("x"), v("m")).unwrap();
    db.insert(h2, v("m"), v("z")).unwrap();
    assert_eq!(db.truth(r, &v("x"), &v("z")).unwrap(), Truth::True);
    // Witness only via the direct derivation.
    db.insert(d, v("x2"), v("z2")).unwrap();
    assert_eq!(db.truth(r, &v("x2"), &v("z2")).unwrap(), Truth::True);
    // Extension unions both.
    let ext = db.extension(r).unwrap();
    assert_eq!(ext.len(), 2);
}

#[test]
fn derived_delete_negates_all_derivations() {
    let mut db = diamond();
    let (h1, h2, d, r) = (
        db.resolve("hop1").unwrap(),
        db.resolve("hop2").unwrap(),
        db.resolve("direct").unwrap(),
        db.resolve("reaches").unwrap(),
    );
    // Both derivations witness (x, z).
    db.insert(h1, v("x"), v("m")).unwrap();
    db.insert(h2, v("m"), v("z")).unwrap();
    db.insert(d, v("x"), v("z")).unwrap();
    assert_eq!(db.truth(r, &v("x"), &v("z")).unwrap(), Truth::True);

    db.delete(r, &v("x"), &v("z")).unwrap();
    // One NC per chain: the 2-hop chain and the direct fact.
    assert_eq!(db.store().ncs().len(), 2);
    assert_eq!(db.truth(r, &v("x"), &v("z")).unwrap(), Truth::False);
    // All three base facts are ambiguous, none deleted.
    assert_eq!(db.stats().base_facts, 3);
    assert_eq!(db.stats().ambiguous_facts, 3);
    assert!(db.is_consistent());
}

#[test]
fn reasserting_one_chain_reopens_the_question() {
    let mut db = diamond();
    let (h1, h2, d, r) = (
        db.resolve("hop1").unwrap(),
        db.resolve("hop2").unwrap(),
        db.resolve("direct").unwrap(),
        db.resolve("reaches").unwrap(),
    );
    db.insert(h1, v("x"), v("m")).unwrap();
    db.insert(h2, v("m"), v("z")).unwrap();
    db.insert(d, v("x"), v("z")).unwrap();
    db.delete(r, &v("x"), &v("z")).unwrap();

    // Re-asserting the direct base fact dismantles its NC and makes the
    // derived fact true again through that derivation — the two-hop NC
    // still stands, its members still ambiguous.
    db.insert(d, v("x"), v("z")).unwrap();
    assert_eq!(db.truth(r, &v("x"), &v("z")).unwrap(), Truth::True);
    assert_eq!(db.store().ncs().len(), 1);
    assert_eq!(db.stats().ambiguous_facts, 2);
    assert!(db.is_consistent());
}

#[test]
fn insert_policy_controls_witness_shape() {
    // FirstDerivation: 2-hop NVC with one null. ShortestDerivation: the
    // direct fact, no null.
    let mut db = diamond();
    let r = db.resolve("reaches").unwrap();
    db.insert(r, v("p"), v("q")).unwrap();
    assert_eq!(db.store().nulls().generated(), 1);

    let mut db = diamond();
    db.set_insert_policy(InsertPolicy::ShortestDerivation);
    let (d, r) = (
        db.resolve("direct").unwrap(),
        db.resolve("reaches").unwrap(),
    );
    db.insert(r, v("p"), v("q")).unwrap();
    assert_eq!(db.store().nulls().generated(), 0);
    assert!(db.store().table(d).contains(&v("p"), &v("q")));
    assert_eq!(db.truth(r, &v("p"), &v("q")).unwrap(), Truth::True);
}

#[test]
fn delete_then_insert_round_trip_with_multiple_derivations() {
    let mut db = diamond();
    let (h1, h2, r) = (
        db.resolve("hop1").unwrap(),
        db.resolve("hop2").unwrap(),
        db.resolve("reaches").unwrap(),
    );
    db.insert(h1, v("x"), v("m")).unwrap();
    db.insert(h2, v("m"), v("z")).unwrap();
    db.delete(r, &v("x"), &v("z")).unwrap();
    assert_eq!(db.truth(r, &v("x"), &v("z")).unwrap(), Truth::False);
    // Derived insert: no NVC exists (the concrete chain is not an NVC),
    // so a fresh NVC is created through the first derivation; the fact is
    // true again while the old chain's NC still stands.
    db.insert(r, v("x"), v("z")).unwrap();
    assert_eq!(db.truth(r, &v("x"), &v("z")).unwrap(), Truth::True);
    assert_eq!(db.store().ncs().len(), 1);
    assert!(db.is_consistent());
}
