//! Experiment E3: the §2.3 design trace and Figure 1.
//!
//! Replays the ten-function design session with a designer scripted to
//! give exactly the paper's answers, and checks every intermediate
//! nontrivial action plus the final state (Figure 1).

use fdb_graph::report::{render_graph, render_outcome};
use fdb_graph::{CycleDecision, DesignEvent, DesignSession};
use fdb_workload::university::{design_university, trace_designer, UNIVERSITY_TRACE};

#[test]
fn trace_produces_figure_1_state() {
    let db = design_university().unwrap();
    let schema = db.schema();
    let base: Vec<&str> = db
        .base_functions()
        .into_iter()
        .map(|f| schema.function(f).name.as_str())
        .collect();
    let derived: Vec<&str> = db
        .derived_functions()
        .into_iter()
        .map(|f| schema.function(f).name.as_str())
        .collect();
    // "The base functions are teach, class_list, score, cutoff,
    //  attendance, and attendance_eval; the derived functions are
    //  taught_by, lecturer_of, grade."
    let mut base_sorted = base.clone();
    base_sorted.sort_unstable();
    assert_eq!(
        base_sorted,
        vec![
            "attendance",
            "attendance_eval",
            "class_list",
            "cutoff",
            "score",
            "teach"
        ]
    );
    let mut derived_sorted = derived.clone();
    derived_sorted.sort_unstable();
    assert_eq!(derived_sorted, vec!["grade", "lecturer_of", "taught_by"]);
}

#[test]
fn trace_reports_exactly_the_papers_nontrivial_actions() {
    let mut session = DesignSession::new();
    let mut designer = trace_designer();
    for (name, dom, rng, f) in UNIVERSITY_TRACE {
        session
            .add_function(name, dom, rng, f.parse().unwrap(), &mut designer)
            .unwrap();
    }
    let schema = session.schema();
    let resolved: Vec<(String, Vec<String>, Option<String>)> = session
        .log()
        .iter()
        .filter_map(|e| match e {
            DesignEvent::CycleResolved { report, decision } => Some((
                report.rendered.clone(),
                report
                    .candidates
                    .iter()
                    .map(|&f| schema.function(f).name.clone())
                    .collect(),
                match decision {
                    CycleDecision::Remove(f) => Some(schema.function(*f).name.clone()),
                    CycleDecision::KeepAll => None,
                },
            )),
            _ => None,
        })
        .collect();

    assert_eq!(resolved.len(), 5, "five nontrivial actions in the trace");

    // 1. teach/taught_by cycle: both candidates, taught_by removed.
    assert_eq!(resolved[0].0, "taught_by - teach");
    assert_eq!(resolved[0].1.len(), 2);
    assert_eq!(resolved[0].2.as_deref(), Some("taught_by"));

    // 2. teach - class_list - lecturer_of: all three candidates,
    //    lecturer_of removed.
    assert!(resolved[1].0.contains("lecturer_of"));
    assert_eq!(resolved[1].1.len(), 3);
    assert_eq!(resolved[1].2.as_deref(), Some("lecturer_of"));

    // 3. grade - attendance - attendance_eval: grade is the only
    //    candidate, designer disagrees, nothing removed.
    assert!(resolved[2].0.contains("attendance"));
    assert_eq!(resolved[2].1, vec!["grade"]);
    assert_eq!(resolved[2].2, None);

    // 4. grade - score - cutoff: grade candidate, removed.
    assert!(resolved[3].0.contains("score"));
    assert_eq!(resolved[3].1, vec!["grade"]);
    assert_eq!(resolved[3].2.as_deref(), Some("grade"));

    // 5. score - cutoff - attendance_eval - attendance: no candidate.
    assert_eq!(resolved[4].1, Vec::<String>::new());
    assert_eq!(resolved[4].2, None);
}

#[test]
fn trace_derivation_reporting_matches_paper() {
    let mut session = DesignSession::new();
    let mut designer = trace_designer();
    for (name, dom, rng, f) in UNIVERSITY_TRACE {
        session
            .add_function(name, dom, rng, f.parse().unwrap(), &mut designer)
            .unwrap();
    }
    // Potential derivations before designer filtering: grade has TWO
    // (score o cutoff, attendance o attendance_eval).
    let grade = session.schema().resolve("grade").unwrap();
    let potentials = session.potential_derivations(grade);
    assert_eq!(potentials.len(), 2);
    // The designer invalidates the attendance one; Figure 1's summary:
    let (outcome, schema) = session.finish(&mut designer);
    let text = render_outcome(&outcome, &schema);
    assert!(text.contains("taught_by = teach^-1"));
    assert!(text.contains("lecturer_of = class_list^-1 o teach^-1"));
    assert!(text.contains("grade = score o cutoff"));
    assert!(!text.contains("grade = attendance o attendance_eval"));
}

#[test]
fn figure_1_graph_rendering() {
    let mut session = DesignSession::new();
    let mut designer = trace_designer();
    for (name, dom, rng, f) in UNIVERSITY_TRACE {
        session
            .add_function(name, dom, rng, f.parse().unwrap(), &mut designer)
            .unwrap();
    }
    let text = render_graph(session.graph(), session.schema());
    // Live edges are exactly the six base functions (Figure 1).
    assert_eq!(text.lines().count(), 6);
    assert!(text.contains("faculty --teach--> course"));
    assert!(text.contains("course --class_list--> student"));
    assert!(text.contains("[student; course] --score--> marks"));
    assert!(text.contains("marks --cutoff--> letter_grade"));
    assert!(text.contains("[student; course] --attendance--> attn_percentage"));
    assert!(text.contains("attn_percentage --attendance_eval--> letter_grade"));
    assert!(!text.contains("taught_by"));
    assert!(!text.contains("lecturer_of"));
    assert!(!text.contains("--grade-->"));
}
