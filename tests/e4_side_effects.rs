//! Experiment E4: the §3 motivating example — naive translations of a
//! derived delete cause the exact side effects the paper lists, while the
//! NC semantics avoids both.

use fdb_relational::{delete_side_effects, naive_delete, ChainDb, Translation};
use fdb_storage::Truth;
use fdb_types::Value;
use fdb_workload::university_database;

fn v(s: &str) -> Value {
    Value::atom(s)
}

/// The §3 instance as a relational chain (teach ⋈ class_list).
fn pupil_chain() -> ChainDb {
    let mut db = ChainDb::new(2);
    db.insert(0, "euclid", "math");
    db.insert(0, "laplace", "math");
    db.insert(0, "laplace", "physics");
    db.insert(1, "math", "john");
    db.insert(1, "math", "bill");
    db
}

#[test]
fn papers_two_naive_translations_and_their_side_effects() {
    // "One may attempt to achieve the desired effect by performing either
    //  DEL(teach, <euclid, math>) or DEL(class_list, <math, john>).
    //  However … both of these have the undesirable side effect of
    //  deleting, from pupil, <euclid, bill> and <laplace, john>,
    //  respectively."
    let db = pupil_chain();

    let t1 = Translation {
        deletions: vec![(0, (v("euclid"), v("math")))],
        insertions: vec![],
    };
    let s1 = delete_side_effects(&db, &t1, &v("euclid"), &v("john"));
    assert!(!s1.effect_missed);
    assert_eq!(
        s1.lost.iter().cloned().collect::<Vec<_>>(),
        vec![(v("euclid"), v("bill"))]
    );

    let t2 = Translation {
        deletions: vec![(1, (v("math"), v("john")))],
        insertions: vec![],
    };
    let s2 = delete_side_effects(&db, &t2, &v("euclid"), &v("john"));
    assert!(!s2.effect_missed);
    assert_eq!(
        s2.lost.iter().cloned().collect::<Vec<_>>(),
        vec![(v("laplace"), v("john"))]
    );

    // The generic naive translator picks one of the two.
    let tn = naive_delete(&db, &v("euclid"), &v("john")).unwrap();
    let sn = delete_side_effects(&db, &tn, &v("euclid"), &v("john"));
    assert_eq!(sn.count(), 1);
}

#[test]
fn nc_semantics_preserves_both_sibling_facts() {
    // Same update against the functional database: u3 = DEL(pupil,
    // <euclid, john>). Neither <euclid, bill> nor <laplace, john> is
    // deleted — they become ambiguous, which is recorded, not guessed.
    let mut db = university_database().unwrap();
    let pupil = db.resolve("pupil").unwrap();
    db.delete(pupil, &v("euclid"), &v("john")).unwrap();

    assert_eq!(
        db.truth(pupil, &v("euclid"), &v("john")).unwrap(),
        Truth::False
    );
    assert_eq!(
        db.truth(pupil, &v("euclid"), &v("bill")).unwrap(),
        Truth::Ambiguous
    );
    assert_eq!(
        db.truth(pupil, &v("laplace"), &v("john")).unwrap(),
        Truth::Ambiguous
    );
    // And the pair supported by an untouched chain stays true.
    assert_eq!(
        db.truth(pupil, &v("laplace"), &v("bill")).unwrap(),
        Truth::True
    );
    // No base fact was removed.
    let teach = db.resolve("teach").unwrap();
    let class_list = db.resolve("class_list").unwrap();
    assert_eq!(db.store().table(teach).len(), 3);
    assert_eq!(db.store().table(class_list).len(), 2);
}

#[test]
fn base_updates_u1_u2_behave_conventionally() {
    // "The following base updates, u1: INS(class_list, <physics, bill>),
    //  and u2: DEL(teach, <laplace, physics>) are handled by adding …
    //  and deleting … from the stored table."
    let mut db = university_database().unwrap();
    let teach = db.resolve("teach").unwrap();
    let class_list = db.resolve("class_list").unwrap();
    db.insert(class_list, v("physics"), v("bill")).unwrap();
    assert!(db
        .store()
        .table(class_list)
        .contains(&v("physics"), &v("bill")));
    db.delete(teach, &v("laplace"), &v("physics")).unwrap();
    assert!(!db
        .store()
        .table(teach)
        .contains(&v("laplace"), &v("physics")));
    assert!(db.is_consistent());
}
