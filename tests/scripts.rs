//! The shipped `.fdb` script fixtures must execute cleanly through the
//! language engine (they double as end-to-end smoke tests of SOURCE).

use fdb::lang::Engine;
use fdb::storage::Truth;
use fdb::types::Value;

fn v(s: &str) -> Value {
    Value::atom(s)
}

#[test]
fn university_script_runs() {
    let mut engine = Engine::new();
    let out = engine
        .execute_line("SOURCE \"examples/scripts/university.fdb\"")
        .expect("script executes cleanly");
    assert!(out.contains("declared teach"));
    assert!(out.contains("euclid  math  A  {g1}"));
    assert!(out.contains("consistent"));
    let db = engine.database();
    let pupil = db.resolve("pupil").unwrap();
    assert_eq!(
        db.truth(pupil, &v("euclid"), &v("john")).unwrap(),
        Truth::False
    );
    assert_eq!(
        db.truth(pupil, &v("gauss"), &v("bill")).unwrap(),
        Truth::True
    );
}

#[test]
fn grading_script_runs_and_resolves() {
    let mut engine = Engine::new();
    let out = engine
        .execute_line("SOURCE \"examples/scripts/grading.fdb\"")
        .expect("script executes cleanly");
    assert!(out.contains("resolved: 2 nulls unified"));
    assert!(out.contains("consistent"));
    let db = engine.database();
    let cutoff = db.resolve("cutoff").unwrap();
    assert!(db.store().table(cutoff).contains(&v("91"), &v("A")));
    assert!(db.store().table(cutoff).contains(&v("74"), &v("B")));
    assert_eq!(db.stats().null_facts, 0);
}
