//! Per-code firing and non-firing tests for the `fdb-check` analyzer.
//!
//! Every diagnostic code gets (at least) one script that must produce it
//! and one near-identical script that must not — the non-firing twin is
//! what keeps the analyzer honest about false positives.

use fdb::check::{analyze_script, CheckConfig, Code, Diagnostic};
use fdb::lang::lower_script;

fn diags_with(script: &str, config: &CheckConfig) -> Vec<Diagnostic> {
    let (stmts, errors) = lower_script(script);
    assert!(errors.is_empty(), "unexpected parse errors: {errors:?}");
    analyze_script(&stmts, config)
}

fn diags(script: &str) -> Vec<Diagnostic> {
    diags_with(script, &CheckConfig::default())
}

fn codes(script: &str) -> Vec<Code> {
    diags(script).iter().map(|d| d.code).collect()
}

const UNI: &str = "DECLARE teach: faculty -> course (many-many)\n\
                   DECLARE class_list: course -> student (many-many)\n\
                   DECLARE pupil: faculty -> student (many-many)\n";

#[test]
fn fdb001_undefined_function() {
    let cs = codes("INSERT ghost(a, b)");
    assert_eq!(cs, vec![Code::UndefinedFunction]);
    // Declared: silent.
    let cs = codes("DECLARE ghost: a -> b (many-many)\nINSERT ghost(a, b)");
    assert!(!cs.contains(&Code::UndefinedFunction), "{cs:?}");
}

#[test]
fn fdb002_duplicate_declare() {
    let script = "DECLARE teach: faculty -> course (many-many)\n\
                  DECLARE teach: faculty -> course (many-many)";
    let ds = diags(script);
    let d = ds
        .iter()
        .find(|d| d.code == Code::DuplicateDeclare)
        .expect("FDB002 fires");
    assert_eq!(d.span.line, 2);
    assert!(d.hint.as_deref().unwrap_or("").contains("line 1"));
    // Distinct names: silent.
    assert!(!codes(UNI).contains(&Code::DuplicateDeclare));
}

#[test]
fn fdb003_broken_chain() {
    let script = format!("{UNI}DERIVE pupil = teach o teach");
    let ds = diags(&script);
    let d = ds
        .iter()
        .find(|d| d.code == Code::BrokenChain)
        .expect("FDB003 fires");
    // Anchored at the second (breaking) step.
    assert_eq!(d.span.line, 4);
    assert!(
        d.message.contains("expects domain faculty"),
        "{}",
        d.message
    );
    // A chaining derivation: silent.
    let cs = codes(&format!("{UNI}DERIVE pupil = teach o class_list"));
    assert!(!cs.contains(&Code::BrokenChain), "{cs:?}");
}

#[test]
fn fdb004_endpoint_mismatch() {
    let cs = codes(&format!("{UNI}DERIVE pupil = teach"));
    assert!(cs.contains(&Code::EndpointMismatch), "{cs:?}");
    let cs = codes(&format!("{UNI}DERIVE pupil = teach o class_list"));
    assert!(!cs.contains(&Code::EndpointMismatch), "{cs:?}");
}

#[test]
fn fdb005_functionality_mismatch() {
    let script = "DECLARE teach: faculty -> course (many-many)\n\
                  DECLARE class_list: course -> student (many-many)\n\
                  DECLARE pupil: faculty -> student (one-one)\n\
                  DERIVE pupil = teach o class_list";
    let ds = diags(script);
    let d = ds
        .iter()
        .find(|d| d.code == Code::FunctionalityMismatch)
        .expect("FDB005 fires");
    assert!(d.message.contains("many-many"), "{}", d.message);
    let cs = codes(&format!("{UNI}DERIVE pupil = teach o class_list"));
    assert!(!cs.contains(&Code::FunctionalityMismatch), "{cs:?}");
}

#[test]
fn fdb006_self_referential() {
    let cs = codes(&format!("{UNI}DERIVE pupil = pupil"));
    assert!(cs.contains(&Code::SelfReferential), "{cs:?}");
    let cs = codes(&format!("{UNI}DERIVE pupil = teach o class_list"));
    assert!(!cs.contains(&Code::SelfReferential), "{cs:?}");
}

#[test]
fn fdb007_step_through_derived() {
    let script = format!(
        "{UNI}DECLARE taught_by: course -> faculty (many-many)\n\
         DERIVE taught_by = teach^-1\n\
         DERIVE pupil = taught_by^-1 o class_list"
    );
    let ds = diags(&script);
    let d = ds
        .iter()
        .find(|d| d.code == Code::StepThroughDerived)
        .expect("FDB007 fires");
    assert_eq!(d.span.line, 6);
    // Stepping through base functions only: silent.
    let cs = codes(&format!("{UNI}DERIVE pupil = teach o class_list"));
    assert!(!cs.contains(&Code::StepThroughDerived), "{cs:?}");
}

#[test]
fn fdb008_shadows_facts() {
    let script = format!("{UNI}INSERT pupil(a, b)\nDERIVE pupil = teach o class_list");
    let ds = diags(&script);
    let d = ds
        .iter()
        .find(|d| d.code == Code::ShadowsFacts)
        .expect("FDB008 fires");
    assert_eq!(d.span.line, 5);
    // DERIVE before the INSERT: silent (the insert becomes a derived
    // insert instead).
    let cs = codes(&format!(
        "{UNI}DERIVE pupil = teach o class_list\nINSERT teach(a, c)"
    ));
    assert!(!cs.contains(&Code::ShadowsFacts), "{cs:?}");
}

#[test]
fn fdb009_alias_pair() {
    let script = "DECLARE teach: faculty -> course (many-many)\n\
                  DECLARE taught_by: course -> faculty (many-many)";
    let ds = diags(script);
    let d = ds
        .iter()
        .find(|d| d.code == Code::AliasPair)
        .expect("FDB009 fires");
    // Anchored at the later declaration of the pair.
    assert_eq!(d.span.line, 2);
    // When one of the pair is derived in-script, the alias is the point:
    // silent.
    let script = "DECLARE teach: faculty -> course (many-many)\n\
                  DECLARE taught_by: course -> faculty (many-many)\n\
                  DERIVE taught_by = teach^-1";
    assert!(!codes(script).contains(&Code::AliasPair));
}

#[test]
fn fdb010_derivable() {
    // The university triangle with no DERIVE: every edge is derivable
    // from the other two.
    let ds = diags(UNI);
    assert!(ds.iter().any(|d| d.code == Code::Derivable), "{ds:?}");
    // Deriving pupil in-script silences its own finding.
    let ds = diags(&format!("{UNI}DERIVE pupil = teach o class_list"));
    assert!(
        !ds.iter()
            .any(|d| d.code == Code::Derivable && d.message.contains("`pupil`")),
        "{ds:?}"
    );
    // Two unrelated functions: nothing derivable.
    let script = "DECLARE teach: faculty -> course (many-many)\n\
                  DECLARE office: faculty -> room (many-one)";
    assert!(!codes(script).contains(&Code::Derivable));
}

#[test]
fn fdb018_unbalanced_txn() {
    // COMMIT, ROLLBACK, SAVEPOINT and ROLLBACK TO all need an open BEGIN.
    for stray in [
        "COMMIT",
        "ROLLBACK",
        "ABORT",
        "SAVEPOINT s",
        "ROLLBACK TO s",
    ] {
        let ds = diags(&format!("{UNI}{stray}"));
        let d = ds
            .iter()
            .find(|d| d.code == Code::UnbalancedTxn)
            .unwrap_or_else(|| panic!("FDB018 fires for `{stray}`: {ds:?}"));
        assert_eq!(d.span.line, 4, "{stray}");
    }
    // BEGIN does not nest.
    let ds = diags(&format!("{UNI}BEGIN\nBEGIN\nCOMMIT"));
    let d = ds
        .iter()
        .find(|d| d.code == Code::UnbalancedTxn)
        .expect("FDB018 fires for nested BEGIN");
    assert_eq!(d.span.line, 5);
    // ROLLBACK TO a savepoint that was never set (or was discarded by an
    // earlier rollback past it).
    let script =
        format!("{UNI}BEGIN\nSAVEPOINT a\nSAVEPOINT b\nROLLBACK TO a\nROLLBACK TO b\nCOMMIT");
    let ds = diags(&script);
    let d = ds
        .iter()
        .find(|d| d.code == Code::UnbalancedTxn)
        .expect("FDB018 fires for discarded savepoint");
    assert_eq!(d.span.line, 8);
    assert!(d.message.contains('b'), "{}", d.message);
    // A balanced transaction with savepoints: silent.
    let script = format!(
        "{UNI}BEGIN\nINSERT teach(a, b)\nSAVEPOINT s\nINSERT teach(c, d)\n\
         ROLLBACK TO s\nROLLBACK TO s\nCOMMIT"
    );
    assert!(!codes(&script).contains(&Code::UnbalancedTxn));
}

#[test]
fn fdb019_unclosed_txn() {
    let ds = diags(&format!("{UNI}BEGIN\nINSERT teach(a, b)"));
    let d = ds
        .iter()
        .find(|d| d.code == Code::UnclosedTxn)
        .expect("FDB019 fires");
    // Anchored at the BEGIN that never closes.
    assert_eq!(d.span.line, 4);
    // Committed and rolled-back transactions: silent.
    for closer in ["COMMIT", "ROLLBACK"] {
        let script = format!("{UNI}BEGIN\nINSERT teach(a, b)\n{closer}");
        assert!(!codes(&script).contains(&Code::UnclosedTxn), "{closer}");
    }
}

#[test]
fn rollback_restores_abstract_state() {
    // The insert inside the rolled-back transaction is gone, so the
    // later TRUTH is known-false — but over a *sharp* table the analyzer
    // stays silent (False is not Ambiguous), while the committed twin
    // keeps the fact.
    let rolled = format!(
        "{UNI}DERIVE pupil = teach o class_list\n\
         INSERT teach(euclid, math)\n\
         INSERT class_list(math, john)\n\
         INSERT class_list(math, bill)\n\
         BEGIN\n\
         DELETE pupil(euclid, john)\n\
         ROLLBACK\n\
         QUERY pupil(euclid)"
    );
    // The derived delete demoted chains *inside* the transaction only;
    // after ROLLBACK the query is exact again — no FDB020.
    assert!(
        !codes(&rolled).contains(&Code::GuaranteedAmbiguous),
        "rollback must restore the abstract tables"
    );
    // Without the rollback the same query is guaranteed ambiguous.
    let committed = format!(
        "{UNI}DERIVE pupil = teach o class_list\n\
         INSERT teach(euclid, math)\n\
         INSERT class_list(math, john)\n\
         INSERT class_list(math, bill)\n\
         BEGIN\n\
         DELETE pupil(euclid, john)\n\
         COMMIT\n\
         QUERY pupil(euclid)"
    );
    assert!(codes(&committed).contains(&Code::GuaranteedAmbiguous));
}

#[test]
fn fdb020_guaranteed_ambiguous() {
    let base = format!(
        "{UNI}DERIVE pupil = teach o class_list\n\
         INSERT teach(euclid, math)\n\
         INSERT class_list(math, john)\n\
         INSERT class_list(math, bill)\n\
         DELETE pupil(euclid, john)\n"
    );
    // After the derived delete, every remaining candidate sits inside a
    // negated conjunction.
    let ds = diags(&format!("{base}QUERY pupil(euclid)"));
    let d = ds
        .iter()
        .find(|d| d.code == Code::GuaranteedAmbiguous)
        .expect("FDB020 fires on QUERY");
    assert_eq!(d.span.line, 9);
    // TRUTH of the demoted sibling is guaranteed ambiguous too.
    let ds = diags(&format!("{base}TRUTH pupil(euclid, bill)"));
    assert!(
        ds.iter().any(|d| d.code == Code::GuaranteedAmbiguous),
        "{ds:?}"
    );
    // INVERSE through the demoted chain as well.
    let ds = diags(&format!("{base}INVERSE pupil(bill)"));
    assert!(
        ds.iter().any(|d| d.code == Code::GuaranteedAmbiguous),
        "{ds:?}"
    );
    // Before any derived delete the same reads are exact: silent.
    let clean = format!(
        "{UNI}DERIVE pupil = teach o class_list\n\
         INSERT teach(euclid, math)\n\
         INSERT class_list(math, bill)\n\
         QUERY pupil(euclid)\nTRUTH pupil(euclid, bill)"
    );
    assert!(!codes(&clean).contains(&Code::GuaranteedAmbiguous));
}

#[test]
fn fdb021_guaranteed_conflict() {
    let base = "DECLARE score: [student; course] -> marks (many-one)\n\
                DECLARE cutoff: marks -> letter_grade (many-one)\n\
                DECLARE grade: [student; course] -> letter_grade (many-one)\n\
                DERIVE grade = score o cutoff\n\
                INSERT score(s1, 85)\n\
                INSERT cutoff(85, B)\n";
    // grade(s1) = B already holds exactly; inserting grade(s1, A) must
    // raise a generalized-dependency conflict.
    let ds = diags(&format!("{base}INSERT grade(s1, A)"));
    let d = ds
        .iter()
        .find(|d| d.code == Code::GuaranteedConflict)
        .expect("FDB021 fires");
    assert_eq!(d.span.line, 7);
    assert!(d.message.contains("grade(s1) = B"), "{}", d.message);
    // Inserting the value that already holds: silent.
    let ds = diags(&format!("{base}INSERT grade(s1, B)"));
    assert!(
        !ds.iter().any(|d| d.code == Code::GuaranteedConflict),
        "{ds:?}"
    );
}

#[test]
fn fdb022_undischargeable_delete() {
    let script = format!(
        "{UNI}DERIVE pupil = teach o class_list\n\
         DELETE pupil(euclid, john)"
    );
    let ds = diags(&script);
    let d = ds
        .iter()
        .find(|d| d.code == Code::UndischargeableDelete)
        .expect("FDB022 fires");
    assert_eq!(d.span.line, 5);
    // With a supporting chain the delete discharges it: silent.
    let script = format!(
        "{UNI}DERIVE pupil = teach o class_list\n\
         INSERT teach(euclid, math)\n\
         INSERT class_list(math, john)\n\
         DELETE pupil(euclid, john)"
    );
    assert!(!codes(&script).contains(&Code::UndischargeableDelete));
}

#[test]
fn fdb023_dead_write() {
    let script = "DECLARE teach: faculty -> course (many-many)\n\
                  INSERT teach(euclid, math)\n\
                  DELETE teach(euclid, math)";
    let ds = diags(script);
    let d = ds
        .iter()
        .find(|d| d.code == Code::DeadWrite)
        .expect("FDB023 fires");
    assert_eq!(d.span.line, 3);
    assert!(d.message.contains("line 2"), "{}", d.message);
    // A read in between: silent.
    let script = "DECLARE teach: faculty -> course (many-many)\n\
                  INSERT teach(euclid, math)\n\
                  QUERY teach(euclid)\n\
                  DELETE teach(euclid, math)";
    assert!(!codes(script).contains(&Code::DeadWrite));
    // A read through a derivation over the function also counts.
    let script = format!(
        "{UNI}DERIVE pupil = teach o class_list\n\
         INSERT teach(euclid, math)\n\
         QUERY pupil(euclid)\n\
         DELETE teach(euclid, math)"
    );
    assert!(!codes(&script).contains(&Code::DeadWrite));
}

#[test]
fn fdb030_chain_budget() {
    let mut script = format!("{UNI}DERIVE pupil = teach o class_list\n");
    for i in 0..4 {
        script.push_str(&format!("INSERT teach(f, c{i})\n"));
        script.push_str(&format!("INSERT class_list(c{i}, s{i})\n"));
    }
    // 4 chains estimated; a budget of 3 is exceeded …
    let tight = CheckConfig {
        chain_budget: 3.0,
        ..CheckConfig::default()
    };
    let ds = diags_with(&script, &tight);
    let d = ds
        .iter()
        .find(|d| d.code == Code::ChainBudget)
        .expect("FDB030 fires");
    assert_eq!(d.span.line, 4, "anchored at the DERIVE");
    // … while the default budget is not.
    assert!(!codes(&script).contains(&Code::ChainBudget));
}

#[test]
fn fdb031_cycle_without_ufa() {
    let ds = diags(UNI);
    let d = ds
        .iter()
        .find(|d| d.code == Code::CycleWithoutUfa)
        .expect("FDB031 fires");
    // The third edge closes the faculty/course/student triangle.
    assert_eq!(d.span.line, 3);
    // An acyclic schema: silent.
    let script = "DECLARE teach: faculty -> course (many-many)\n\
                  DECLARE class_list: course -> student (many-many)";
    assert!(!codes(script).contains(&Code::CycleWithoutUfa));
}

#[test]
fn fdb040_replica_write() {
    let replica = CheckConfig {
        replica_mode: true,
        ..CheckConfig::default()
    };
    // Reads are fine on a replica …
    let reads = "QUERY teach(euclid)\n\
                 TRUTH teach(euclid, math)\n\
                 SHOW teach\n\
                 SCHEMA";
    let ds = diags_with(reads, &replica);
    assert!(
        !ds.iter().any(|d| d.code == Code::ReplicaWrite),
        "reads must not fire FDB040: {ds:?}"
    );
    // … while every statement the replica engine refuses fires, one
    // diagnostic each, anchored at its own line.
    let writes = "DECLARE teach: faculty -> course (many-many)\n\
                  INSERT teach(euclid, math)\n\
                  BEGIN\n\
                  DELETE teach(euclid, math)\n\
                  COMMIT";
    let ds = diags_with(writes, &replica);
    let lines: Vec<u32> = ds
        .iter()
        .filter(|d| d.code == Code::ReplicaWrite)
        .map(|d| d.span.line)
        .collect();
    assert_eq!(lines, vec![1, 2, 3, 4, 5], "{ds:?}");
    assert!(ds
        .iter()
        .find(|d| d.code == Code::ReplicaWrite)
        .and_then(|d| d.hint.as_deref())
        .is_some_and(|h| h.contains("PROMOTE")));
    // The default config never fires it, even for writes.
    assert!(!codes(writes).contains(&Code::ReplicaWrite));
    // An open world does not mute it: the runtime refusal is
    // unconditional.
    let after_load = "LOAD \"db.json\"\nINSERT teach(euclid, math)";
    let ds = diags_with(after_load, &replica);
    assert!(
        ds.iter()
            .any(|d| d.code == Code::ReplicaWrite && d.span.line == 2),
        "{ds:?}"
    );
}

#[test]
fn replica_mode_marker_detection() {
    use fdb::check::detect_replica_mode;
    assert!(detect_replica_mode("-- mode: replica\nQUERY teach(euclid)"));
    assert!(detect_replica_mode("\n--  MODE:  Replica\nSCHEMA"));
    assert!(detect_replica_mode(
        "-- report script\n-- mode:replica\nSCHEMA"
    ));
    // Not in the leading comment block: ignored.
    assert!(!detect_replica_mode("SCHEMA\n-- mode: replica"));
    assert!(!detect_replica_mode("-- mode: primary\nSCHEMA"));
    assert!(!detect_replica_mode(""));
}

#[test]
fn open_world_statements_mute_guarantees() {
    // The same dead-write pattern, but a SOURCE in between could have
    // read (or rewritten) anything: all guarantees are off.
    let script = "DECLARE teach: faculty -> course (many-many)\n\
                  INSERT teach(euclid, math)\n\
                  SOURCE \"other.fdb\"\n\
                  DELETE teach(euclid, math)\n\
                  DELETE ghost(a, b)";
    let ds = diags(script);
    assert!(ds.is_empty(), "open world mutes everything: {ds:?}");
}

#[test]
fn resolve_mutes_ambiguity_guarantees() {
    let script = format!(
        "{UNI}DERIVE pupil = teach o class_list\n\
         INSERT teach(euclid, math)\n\
         INSERT class_list(math, john)\n\
         INSERT class_list(math, bill)\n\
         DELETE pupil(euclid, john)\n\
         RESOLVE\n\
         QUERY pupil(euclid)"
    );
    let ds = diags(&script);
    assert!(
        !ds.iter().any(|d| d.code == Code::GuaranteedAmbiguous),
        "RESOLVE may have disambiguated: {ds:?}"
    );
}

#[test]
fn error_recovery_keeps_analyzing() {
    // A bad DERIVE is reported but not registered, so later statements
    // resolve against the declared (base) function.
    let script = format!(
        "{UNI}DERIVE pupil = teach\n\
         INSERT pupil(a, b)\n\
         INSERT ghost(a, b)"
    );
    let cs = codes(&script);
    assert!(cs.contains(&Code::EndpointMismatch), "{cs:?}");
    assert!(cs.contains(&Code::UndefinedFunction), "{cs:?}");
}

// --- FDB05x: data-aware discovery (store-backed, via `discover`) -------

mod data_aware {
    use std::collections::BTreeMap;

    use fdb::check::{
        discover, discovery_diagnostics, invalidation_diagnostic, Code, DiscoverConfig,
    };
    use fdb::storage::Store;
    use fdb::types::{Schema, Value};

    fn v(s: &str) -> Value {
        Value::atom(s)
    }

    fn schema() -> Schema {
        Schema::builder()
            .function("teach", "faculty", "course", "many-many")
            .function("taught_by", "course", "faculty", "many-many")
            .function("office", "faculty", "room", "many-one")
            .build()
            .expect("schema builds")
    }

    fn codes(store: &Store, schema: &Schema) -> Vec<Code> {
        let report = discover(store, schema, &BTreeMap::new(), &DiscoverConfig::default());
        discovery_diagnostics(&report, schema)
            .iter()
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn fdb050_incidental_functionality() {
        let schema = schema();
        let teach = schema.resolve("teach").unwrap();
        let mut store = Store::new(schema.len());
        // Two single-valued rows on a many-many declaration: fires.
        store.base_insert(teach, v("euclid"), v("math"));
        store.base_insert(teach, v("laplace"), v("stat"));
        assert!(codes(&store, &schema).contains(&Code::IncidentalFunctionality));
        // A genuinely many-many extension: silent.
        let mut store = Store::new(schema.len());
        store.base_insert(teach, v("euclid"), v("math"));
        store.base_insert(teach, v("euclid"), v("geom"));
        store.base_insert(teach, v("laplace"), v("math"));
        assert!(!codes(&store, &schema).contains(&Code::IncidentalFunctionality));
    }

    #[test]
    fn fdb051_functionality_violated() {
        let schema = schema();
        let office = schema.resolve("office").unwrap();
        let mut store = Store::new(schema.len());
        // Two rooms for one faculty under many-one: fires, with a repair.
        store.base_insert(office, v("euclid"), v("e101"));
        store.base_insert(office, v("euclid"), v("e202"));
        let report = discover(
            &store,
            &schema,
            &BTreeMap::new(),
            &DiscoverConfig::default(),
        );
        let ds = discovery_diagnostics(&report, &schema);
        let d = ds
            .iter()
            .find(|d| d.code == Code::FunctionalityViolated)
            .expect("FDB051 fires");
        assert!(
            d.hint.as_deref().unwrap_or("").contains("delete office("),
            "{d:?}"
        );
        // A violated table reports no incidental FD alongside.
        assert!(!ds.iter().any(|d| d.code == Code::IncidentalFunctionality));
        // One room per faculty: silent.
        let mut store = Store::new(schema.len());
        store.base_insert(office, v("euclid"), v("e101"));
        store.base_insert(office, v("laplace"), v("l7"));
        assert!(!codes(&store, &schema).contains(&Code::FunctionalityViolated));
    }

    #[test]
    fn fdb052_candidate_derivation() {
        let schema = schema();
        let teach = schema.resolve("teach").unwrap();
        let taught_by = schema.resolve("taught_by").unwrap();
        // taught_by mirrors teach^-1 exactly: fires.
        let mut store = Store::new(schema.len());
        for (f, c) in [("euclid", "math"), ("laplace", "stat")] {
            store.base_insert(teach, v(f), v(c));
            store.base_insert(taught_by, v(c), v(f));
        }
        assert!(codes(&store, &schema).contains(&Code::CandidateDerivation));
        // One unmirrored pair breaks the match: silent.
        store.base_insert(teach, v("gauss"), v("algebra"));
        store.base_insert(taught_by, v("algebra"), v("riemann"));
        assert!(!codes(&store, &schema).contains(&Code::CandidateDerivation));
    }

    #[test]
    fn fdb053_nongenuine_invalidated() {
        let schema = schema();
        let teach = schema.resolve("teach").unwrap();
        // FDB053 is minted per invalidated assumption, not by discovery
        // itself: a clean store produces none.
        let mut store = Store::new(schema.len());
        store.base_insert(teach, v("euclid"), v("math"));
        store.base_insert(teach, v("laplace"), v("stat"));
        assert!(!codes(&store, &schema).contains(&Code::NonGenuineInvalidated));
        // The diagnostic constructor carries the function, direction and
        // observation version.
        let d = invalidation_diagnostic(&schema, teach, "functional", 7);
        assert_eq!(d.code, Code::NonGenuineInvalidated);
        assert!(d.message.contains("`teach is functional`"), "{}", d.message);
        assert!(d.message.contains("v7"), "{}", d.message);
    }
}
