//! Property tests for the minimal cardinality repair: on instances small
//! enough to brute-force (≤ 8 facts), the exact solver must return a
//! repair of provably minimum size, and every repair — exact or greedy —
//! must actually restore the declared single-valuedness directions.

use proptest::prelude::*;

use fdb::check::minimal_repair;
use fdb::types::Value;

/// Whether `pairs` (minus the indices in `deleted`) satisfy the declared
/// directions.
fn consistent(
    pairs: &[(Value, Value)],
    deleted: &[bool],
    functional: bool,
    injective: bool,
) -> bool {
    for i in 0..pairs.len() {
        if deleted[i] {
            continue;
        }
        for j in (i + 1)..pairs.len() {
            if deleted[j] {
                continue;
            }
            let (xi, yi) = &pairs[i];
            let (xj, yj) = &pairs[j];
            if (functional && xi == xj && yi != yj) || (injective && yi == yj && xi != xj) {
                return false;
            }
        }
    }
    true
}

/// The smallest number of deletions that restores consistency, by
/// exhaustive subset enumeration (2^n, n ≤ 8).
fn brute_force_minimum(pairs: &[(Value, Value)], functional: bool, injective: bool) -> usize {
    let n = pairs.len();
    (0u32..(1 << n))
        .filter(|mask| {
            let deleted: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
            consistent(pairs, &deleted, functional, injective)
        })
        .map(|mask| mask.count_ones() as usize)
        .min()
        .expect("deleting everything is always consistent")
}

/// Marks the repaired pairs as deleted (by multiset membership — repairs
/// return values, not indices, and duplicates delete one row each).
fn apply_repair(pairs: &[(Value, Value)], repair: &[(Value, Value)]) -> Vec<bool> {
    let mut remaining = repair.to_vec();
    pairs
        .iter()
        .map(|p| {
            if let Some(pos) = remaining.iter().position(|r| r == p) {
                remaining.remove(pos);
                true
            } else {
                false
            }
        })
        .collect()
}

fn small_pairs() -> impl Strategy<Value = Vec<(Value, Value)>> {
    // Tiny alphabets force collisions, so conflicts are common.
    prop::collection::vec((0u8..4, 0u8..4), 0..=8).prop_map(|raw| {
        raw.into_iter()
            .map(|(x, y)| (Value::atom(format!("x{x}")), Value::atom(format!("y{y}"))))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn exact_repair_matches_brute_force(
        pairs in small_pairs(),
        functional in any::<bool>(),
        injective in any::<bool>(),
    ) {
        let (repair, exact, _groups) = minimal_repair(&pairs, functional, injective, 16);
        // ≤ 8 facts with exact_limit 16: every component is solved exactly.
        prop_assert!(exact, "components of ≤ 8 facts must be exact");
        // The repair restores consistency…
        let deleted = apply_repair(&pairs, &repair);
        prop_assert_eq!(
            deleted.iter().filter(|&&d| d).count(),
            repair.len(),
            "every repaired fact is present in the table"
        );
        prop_assert!(consistent(&pairs, &deleted, functional, injective));
        // …and is no larger than the brute-force minimum.
        let minimum = brute_force_minimum(&pairs, functional, injective);
        prop_assert_eq!(repair.len(), minimum);
    }

    #[test]
    fn greedy_repair_is_sound_even_when_not_minimal(
        pairs in small_pairs(),
        functional in any::<bool>(),
        injective in any::<bool>(),
    ) {
        // exact_limit 0 clamps every component to the greedy path.
        let (repair, _exact, _groups) = minimal_repair(&pairs, functional, injective, 0);
        let deleted = apply_repair(&pairs, &repair);
        prop_assert_eq!(
            deleted.iter().filter(|&&d| d).count(),
            repair.len(),
            "every repaired fact is present in the table"
        );
        prop_assert!(consistent(&pairs, &deleted, functional, injective));
    }
}
