//! Governor property tests: budgets must degrade results *monotonically*
//! and *honestly*.
//!
//! * Prefix/monotonicity: enumeration is deterministic, so the paths
//!   returned under a step budget `B` are a prefix of those returned
//!   under any `B' ≥ B`, and every partial is a prefix of the full
//!   (ungoverned) answer — a stopped search never invents results.
//! * Honesty: with only a result cap in play, the outcome is `Exhausted`
//!   *iff* results were actually truncated (`full > cap`), never as a
//!   false alarm on instances that fit.

use std::collections::HashSet;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fdb::governor::{Governor, Outcome, StopReason};
use fdb::graph::{all_simple_paths, all_simple_paths_governed, FunctionGraph, Path, PathLimits};
use fdb::workload::topology::Topology;

/// Ladder topologies give a tunable number of end-to-end paths
/// (`width^rungs`) with deterministic enumeration order.
fn ladder(width: usize, functions: usize) -> (fdb::types::Schema, FunctionGraph) {
    let schema = Topology::Ladder { width }.build(functions);
    let graph = FunctionGraph::from_schema(&schema);
    (schema, graph)
}

fn end_to_end(
    schema: &fdb::types::Schema,
    graph: &FunctionGraph,
    limits: PathLimits,
    governor: &Governor,
) -> Outcome<Vec<Path>> {
    let t0 = schema.types().lookup("t0").unwrap();
    let last = (0..)
        .take_while(|i| schema.types().lookup(&format!("t{i}")).is_some())
        .last()
        .unwrap();
    let goal = schema.types().lookup(&format!("t{last}")).unwrap();
    all_simple_paths_governed(graph, t0, goal, &HashSet::new(), limits, governor)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Results under step budget B are a prefix of results under any
    /// B' >= B, and of the full ungoverned answer.
    #[test]
    fn step_budgets_degrade_monotonically(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let width = rng.gen_range(1..4usize);
        let functions = rng.gen_range(2..10usize);
        let (schema, graph) = ladder(width, functions);
        let limits = PathLimits::unbounded_for_benchmarks();

        let t0 = schema.types().lookup("t0").unwrap();
        let full = {
            let last = (0..)
                .take_while(|i| schema.types().lookup(&format!("t{i}")).is_some())
                .last()
                .unwrap();
            let goal = schema.types().lookup(&format!("t{last}")).unwrap();
            all_simple_paths(&graph, t0, goal, &HashSet::new(), limits)
        };

        let small = rng.gen_range(0..60u64);
        let big = small + rng.gen_range(0..60u64);
        let under_small = end_to_end(&schema, &graph, limits, &Governor::with_max_steps(small));
        let under_big = end_to_end(&schema, &graph, limits, &Governor::with_max_steps(big));

        let small_paths = under_small.value();
        let big_paths = under_big.value();
        prop_assert!(small_paths.len() <= big_paths.len());
        prop_assert_eq!(&big_paths[..small_paths.len()], &small_paths[..]);
        prop_assert!(big_paths.len() <= full.len());
        prop_assert_eq!(&full[..big_paths.len()], &big_paths[..]);
    }

    /// With only a result cap, Exhausted is reported iff truncation
    /// actually happened, and a truncated answer has exactly `cap`
    /// results — the first `cap` of the full enumeration.
    #[test]
    fn exhausted_iff_truncated_under_result_caps(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let width = rng.gen_range(1..4usize);
        let functions = rng.gen_range(2..10usize);
        let (schema, graph) = ladder(width, functions);

        let full = end_to_end(
            &schema,
            &graph,
            PathLimits::unbounded_for_benchmarks(),
            &Governor::unbounded(),
        )
        .into_result("paths")
        .unwrap();

        let cap = rng.gen_range(1..20usize);
        let capped_limits = PathLimits {
            max_len: usize::MAX,
            max_paths: cap,
        };
        let outcome = end_to_end(&schema, &graph, capped_limits, &Governor::unbounded());
        if full.len() > cap {
            prop_assert_eq!(outcome.reason(), Some(StopReason::Cap));
            let partial = outcome.value();
            prop_assert_eq!(partial.len(), cap);
            prop_assert_eq!(&full[..cap], &partial[..]);
        } else {
            prop_assert!(outcome.is_complete(), "false Exhausted on fitting instance");
            prop_assert_eq!(outcome.value(), full);
        }
    }

    /// Derived-function query partials are prefixes too, end to end
    /// through the database layer.
    #[test]
    fn extension_partials_are_prefixes(seed in 0u64..300) {
        use fdb::core::Database;
        use fdb::types::{Derivation, Schema, Step, Value};

        let mut rng = StdRng::seed_from_u64(seed);
        let schema = Schema::builder()
            .function("teach", "faculty", "course", "many-many")
            .function("class_list", "course", "student", "many-many")
            .function("pupil", "faculty", "student", "many-many")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        let teach = db.resolve("teach").unwrap();
        let class_list = db.resolve("class_list").unwrap();
        let pupil = db.resolve("pupil").unwrap();
        db.register_derived(
            pupil,
            vec![Derivation::new(vec![Step::identity(teach), Step::identity(class_list)]).unwrap()],
        )
        .unwrap();
        for _ in 0..rng.gen_range(1..40usize) {
            let f = rng.gen_range(0..8u32);
            let c = rng.gen_range(0..5u32);
            let s = rng.gen_range(0..8u32);
            db.insert(teach, Value::atom(format!("f{f}")), Value::atom(format!("c{c}")))
                .ok();
            db.insert(class_list, Value::atom(format!("c{c}")), Value::atom(format!("s{s}")))
                .ok();
        }

        let full = db.extension(pupil).unwrap();
        let budget = rng.gen_range(0..80u64);
        let outcome = db
            .extension_governed(pupil, &Governor::with_max_steps(budget))
            .unwrap();
        let complete = outcome.is_complete();
        let partial = outcome.value();
        // Sound: nothing fabricated.
        prop_assert!(partial.iter().all(|p| full.contains(p)));
        if complete {
            prop_assert_eq!(partial, full);
        }
    }
}
