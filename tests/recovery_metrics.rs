//! Recovery publishes metrics that match its own [`RecoveryReport`].
//!
//! One cut point of the crash-matrix harness: a generated workload is
//! driven through a `LoggedDatabase` on a `SimDisk` whose write budget is
//! cut mid-record, the torn image is recovered, and the registry deltas
//! across the recovery must equal the report the recovery itself returned
//! (salvaged records, corruption events, quarantined bytes — and exactly
//! one recovery run). This file is its own test binary on purpose: the
//! registry is process-global and the delta assertions need a process to
//! themselves.

use std::path::PathBuf;
use std::sync::Arc;

use fdb::core::{
    Database, DurabilityConfig, LoggedDatabase, SimDisk, SyncPolicy, Update, WalStorage,
};
use fdb::obs;
use fdb::types::{Derivation, Functionality, Schema, Step};
use fdb::workload::{update_stream, UpdateStreamConfig};

const DIR: &str = "/recovery_metrics_db";

fn dir() -> PathBuf {
    PathBuf::from(DIR)
}

fn config() -> DurabilityConfig {
    DurabilityConfig {
        sync_policy: SyncPolicy::Always,
        checkpoint_every: Some(64),
        segment_max_bytes: 4096,
    }
}

fn triangle() -> Database {
    let schema = Schema::builder()
        .function("teach", "faculty", "course", "many-many")
        .function("class_list", "course", "student", "many-many")
        .function("pupil", "faculty", "student", "many-many")
        .build()
        .unwrap();
    let mut db = Database::new(schema);
    let (t, c, p) = (
        db.resolve("teach").unwrap(),
        db.resolve("class_list").unwrap(),
        db.resolve("pupil").unwrap(),
    );
    db.register_derived(
        p,
        vec![Derivation::new(vec![Step::identity(t), Step::identity(c)]).unwrap()],
    )
    .unwrap();
    db
}

fn workload() -> Vec<Update> {
    update_stream(
        &triangle(),
        UpdateStreamConfig {
            length: 120,
            domain_size: 8,
            derived_pct: 35,
            delete_pct: 40,
            seed: 17,
        },
    )
}

/// Drives schema setup plus the stream, stopping quietly once the disk's
/// write budget is exhausted.
fn drive(disk: &Arc<SimDisk>, stream: &[Update]) -> u64 {
    let storage: Arc<dyn WalStorage> = disk.clone();
    let mut written = 0u64;
    let Ok(mut ldb) = LoggedDatabase::create_with(storage, dir(), config()) else {
        return written;
    };
    for (name, dom, rng) in [
        ("teach", "faculty", "course"),
        ("class_list", "course", "student"),
        ("pupil", "faculty", "student"),
    ] {
        if ldb
            .declare(name, dom, rng, Functionality::ManyMany)
            .is_err()
        {
            return written;
        }
        written = disk.total_written();
    }
    if ldb
        .derive("pupil", &[("teach", false), ("class_list", false)])
        .is_err()
    {
        return written;
    }
    written = disk.total_written();
    for update in stream {
        match ldb.apply_update(update) {
            Ok(()) => written = disk.total_written(),
            Err(_) if disk.crashed() => return written,
            Err(_) => {}
        }
    }
    written
}

#[test]
fn recovery_metrics_match_the_recovery_report() {
    obs::set_enabled(true);
    let stream = workload();

    // Uncut dry run to learn the disk high-water mark, then replay with
    // the budget cut mid-record: a few bytes short of the full image
    // guarantees a torn tail rather than a clean boundary.
    let probe = Arc::new(SimDisk::new());
    let full = drive(&probe, &stream);
    assert!(full > 0, "dry run wrote nothing");

    let disk = Arc::new(SimDisk::new());
    disk.set_write_budget(Some(full - 3));
    drive(&disk, &stream);
    assert!(disk.crashed(), "budget cut did not trip the disk");
    disk.revive();

    let reg = obs::registry();
    let runs0 = reg.recovery_runs.get();
    let salvaged0 = reg.recovery_records_salvaged.get();
    let corrupt0 = reg.recovery_corruption_events.get();
    let quarantined0 = reg.recovery_quarantined_bytes.get();
    let fsyncs_before = reg.wal_fsyncs.get();

    let (recovered, report) =
        LoggedDatabase::open_with(disk.clone() as Arc<dyn WalStorage>, dir(), config()).unwrap();
    assert!(recovered.database().is_consistent());
    assert!(report.applied > 0, "cut recovered nothing — bad cut point");

    // The registry deltas across the recovery are exactly the report.
    assert_eq!(reg.recovery_runs.get() - runs0, 1);
    assert_eq!(
        reg.recovery_records_salvaged.get() - salvaged0,
        report.applied as u64
    );
    assert_eq!(
        reg.recovery_corruption_events.get() - corrupt0,
        report.corruption.len() as u64
    );
    assert_eq!(
        reg.recovery_quarantined_bytes.get() - quarantined0,
        report.quarantined_bytes
    );

    // And the workload that produced the image left WAL traffic behind:
    // every logged record was appended and (policy: Always) fsynced.
    assert!(reg.wal_appends.get() > 0);
    assert!(reg.wal_append_bytes.get() > 0);
    assert!(fsyncs_before > 0);
}

/// A statement span still open when the disk faults must appear in the
/// flight dump as `interrupted`, and the dump must come from the real
/// fault path: the failed WAL fsync itself triggers it, with no explicit
/// `DUMP TRACE` anywhere.
#[test]
fn open_span_at_fault_is_interrupted_in_flight_dump() {
    obs::set_enabled(true);
    obs::causal::set_tracing(true);

    let dump_dir = std::env::temp_dir().join(format!("fdb-flight-rm-{}", std::process::id()));
    std::fs::create_dir_all(&dump_dir).unwrap();
    obs::flight::set_dump_dir(Some(dump_dir.clone()));

    let disk = Arc::new(SimDisk::new());
    let mut ldb = LoggedDatabase::create_with(
        disk.clone() as Arc<dyn WalStorage>,
        "/flight_fault_db",
        config(),
    )
    .unwrap();
    ldb.declare("teach", "faculty", "course", Functionality::ManyMany)
        .unwrap();

    // The cut: the statement's span is open when the next fsync fails.
    let span = obs::causal::root_span("fdb.test.crash_statement", || "cut mid-flight".to_string());
    disk.fail_sync(1);
    let err = ldb.insert(
        "teach",
        fdb::types::Value::atom("euclid"),
        fdb::types::Value::atom("math"),
    );
    assert!(err.is_err(), "fsync fault must surface to the writer");
    drop(span);

    let mut found = false;
    for entry in std::fs::read_dir(&dump_dir).unwrap() {
        let body = std::fs::read_to_string(entry.unwrap().path()).unwrap_or_default();
        if body.contains("fsync_failure")
            && body.contains("fdb.test.crash_statement")
            && body.contains("\"status\":\"interrupted\"")
        {
            found = true;
        }
    }
    assert!(
        found,
        "no flight dump shows the open span as interrupted at the fsync fault"
    );

    obs::flight::set_dump_dir(None);
    std::fs::remove_dir_all(&dump_dir).ok();
}
