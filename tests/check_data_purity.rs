//! The discovery pass must be read-only: mining a store for FDs,
//! repairs and candidate derivations never mutates it. As in
//! `check_purity.rs`, the observability registry doubles as the
//! side-effect detector, so this test runs in its own binary where no
//! other test's engine traffic races the process-wide counters.

use std::collections::BTreeMap;

use fdb::check::{discover, discovery_diagnostics, render_discovery_text, DiscoverConfig};
use fdb::obs::registry;
use fdb::storage::Store;
use fdb::types::{Schema, Value};

fn mutation_counters() -> Vec<(&'static str, u64)> {
    let r = registry();
    vec![
        ("fdb.storage.base_inserts", r.storage_base_inserts.get()),
        ("fdb.storage.base_deletes", r.storage_base_deletes.get()),
        ("fdb.storage.ncs_created", r.storage_ncs_created.get()),
        ("fdb.storage.ncs_dismantled", r.storage_ncs_dismantled.get()),
        (
            "fdb.storage.null_substitutions",
            r.storage_null_substitutions.get(),
        ),
        ("fdb.storage.compactions", r.storage_compactions.get()),
        ("fdb.wal.appends", r.wal_appends.get()),
        ("fdb.wal.fsyncs", r.wal_fsyncs.get()),
        ("fdb.lang.statements", r.lang_statements.get()),
    ]
}

#[test]
fn discovery_is_pure_and_accounted() {
    let schema = Schema::builder()
        .function("teach", "faculty", "course", "many-many")
        .function("taught_by", "course", "faculty", "many-many")
        .function("office", "faculty", "room", "many-one")
        .build()
        .expect("schema builds");
    let teach = schema.resolve("teach").expect("teach");
    let taught_by = schema.resolve("taught_by").expect("taught_by");
    let office = schema.resolve("office").expect("office");
    let mut store = Store::new(schema.len());
    for (f, c) in [("euclid", "math"), ("laplace", "stat")] {
        store.base_insert(teach, Value::atom(f), Value::atom(c));
        store.base_insert(taught_by, Value::atom(c), Value::atom(f));
    }
    // A violated declaration, so the repair machinery runs too.
    store.base_insert(office, Value::atom("euclid"), Value::atom("e101"));
    store.base_insert(office, Value::atom("euclid"), Value::atom("e202"));

    let version = store.version();
    let before = mutation_counters();
    let runs_before = registry().check_discover_runs.get();

    let report = discover(
        &store,
        &schema,
        &BTreeMap::new(),
        &DiscoverConfig::default(),
    );
    let text = render_discovery_text(&report, &schema);
    let diags = discovery_diagnostics(&report, &schema);

    // The pass found real work (FDs, a violation, candidates)…
    assert!(!report.fds.is_empty());
    assert_eq!(report.violations.len(), 1);
    assert!(!text.is_empty());
    assert!(!diags.is_empty());
    // …ran exactly once by its own accounting…
    assert_eq!(registry().check_discover_runs.get(), runs_before + 1);
    // …and mutated nothing: every write-side counter and the store
    // version are exactly where they were.
    assert_eq!(store.version(), version);
    let after = mutation_counters();
    for ((name, b), (_, a)) in before.iter().zip(after.iter()) {
        assert_eq!(b, a, "{name} moved during discovery");
    }
}
