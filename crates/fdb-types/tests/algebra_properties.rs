//! Algebraic properties of the core vocabulary: the functionality
//! algebra, value matching, and derivation inversion.

use proptest::prelude::*;

use fdb_types::{Derivation, Functionality, MatchKind, NullId, Schema, Step, Value};

fn arb_functionality() -> impl Strategy<Value = Functionality> {
    prop::sample::select(Functionality::ALL.to_vec())
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        "[a-e]{1,3}".prop_map(Value::atom),
        (1u64..6).prop_map(|i| Value::Null(NullId(i))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The functionality monoid: associativity, identity (one-one),
    /// absorbing element (many-many), idempotence of every element.
    #[test]
    fn functionality_monoid_laws(
        a in arb_functionality(),
        b in arb_functionality(),
        c in arb_functionality(),
    ) {
        prop_assert_eq!(a.compose(b).compose(c), a.compose(b.compose(c)));
        prop_assert_eq!(Functionality::OneOne.compose(a), a);
        prop_assert_eq!(a.compose(Functionality::OneOne), a);
        prop_assert_eq!(a.compose(Functionality::ManyMany), Functionality::ManyMany);
        prop_assert_eq!(a.compose(a), a);
        // This algebra happens to be commutative (component-wise AND).
        prop_assert_eq!(a.compose(b), b.compose(a));
    }

    /// Inverse is an involutive anti-automorphism.
    #[test]
    fn inverse_laws(a in arb_functionality(), b in arb_functionality()) {
        prop_assert_eq!(a.inverse().inverse(), a);
        prop_assert_eq!(a.compose(b).inverse(), b.inverse().compose(a.inverse()));
    }

    /// Value matching is symmetric; exact matching is transitive; two
    /// atoms never match ambiguously.
    #[test]
    fn matching_laws(x in arb_value(), y in arb_value(), z in arb_value()) {
        prop_assert_eq!(x.matches(&y), y.matches(&x));
        prop_assert_eq!(x.matches(&x), MatchKind::Exact);
        if x.matches(&y) == MatchKind::Exact && y.matches(&z) == MatchKind::Exact {
            prop_assert_eq!(x.matches(&z), MatchKind::Exact);
        }
        if !x.is_null() && !y.is_null() {
            prop_assert_ne!(x.matches(&y), MatchKind::Ambiguous);
        }
        if x.matches(&y) == MatchKind::Ambiguous {
            prop_assert!(x.is_null() || y.is_null());
        }
    }

    /// MatchKind::and is the meet of the Exact > Ambiguous > None chain.
    #[test]
    fn match_combination_laws(
        a in prop::sample::select(vec![MatchKind::Exact, MatchKind::Ambiguous, MatchKind::None]),
        b in prop::sample::select(vec![MatchKind::Exact, MatchKind::Ambiguous, MatchKind::None]),
        c in prop::sample::select(vec![MatchKind::Exact, MatchKind::Ambiguous, MatchKind::None]),
    ) {
        prop_assert_eq!(a.and(b), b.and(a));
        prop_assert_eq!(a.and(b).and(c), a.and(b.and(c)));
        prop_assert_eq!(a.and(MatchKind::Exact), a);
        prop_assert_eq!(a.and(MatchKind::None), MatchKind::None);
        prop_assert_eq!(a.and(a), a);
    }

    /// Derivation inversion: involutive, endpoint-swapping,
    /// functionality-inverting — over random well-formed chains.
    #[test]
    fn derivation_inversion_laws(
        funcs in proptest::collection::vec(arb_functionality(), 1..6),
        invert_mask in proptest::collection::vec(any::<bool>(), 1..6),
    ) {
        // Build a chain schema t0 -f0-> t1 -f1-> … and a derivation using
        // each function, inverted per the mask (orientation adjusted so
        // the chain still links).
        let k = funcs.len();
        let mut schema = Schema::new();
        let mut steps = Vec::with_capacity(k);
        for (i, &fun) in funcs.iter().enumerate() {
            let inv = *invert_mask.get(i).unwrap_or(&false);
            // If the step is inverted, declare the function backwards so
            // the inverse step still leads t{i} → t{i+1}.
            let (dom, rng) = if inv {
                (format!("t{}", i + 1), format!("t{i}"))
            } else {
                (format!("t{i}"), format!("t{}", i + 1))
            };
            let id = schema
                .declare(&format!("f{i}"), &dom, &rng, fun)
                .unwrap();
            steps.push(if inv { Step::inverse(id) } else { Step::identity(id) });
        }
        let d = Derivation::new(steps).unwrap();
        let (dom, rng) = d.endpoints(&schema).unwrap();
        let inv = d.inverted();
        let (idom, irng) = inv.endpoints(&schema).unwrap();
        prop_assert_eq!((dom, rng), (irng, idom));
        prop_assert_eq!(inv.inverted(), d.clone());
        prop_assert_eq!(
            d.functionality(&schema).inverse(),
            inv.functionality(&schema)
        );
    }
}
