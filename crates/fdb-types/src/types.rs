//! Object types and the type registry.
//!
//! Object types are the nodes of the function graph (§2 of the paper).
//! They are interned: each distinct type name receives a dense [`TypeId`].
//! Compound domains such as `[student; course]` (used by `grade`, `score`
//! and `attendance` in the paper's running example) are first-class object
//! types whose canonical name records their components.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A dense identifier for an interned object type.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
#[serde(transparent)]
pub struct TypeId(pub u32);

impl TypeId {
    /// Returns the underlying index, usable for dense per-type tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "τ{}", self.0)
    }
}

/// Metadata stored for each interned type.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct TypeInfo {
    name: String,
    /// For a compound type `[a; b; …]`, the component types; empty for
    /// simple types.
    components: Vec<TypeId>,
}

/// Interner for object types.
///
/// Names are canonicalised before interning: surrounding whitespace is
/// trimmed and compound syntax is normalised to `[a; b]` with single
/// spacing, so `[student ;course]` and `[student; course]` intern to the
/// same [`TypeId`].
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TypeRegistry {
    infos: Vec<TypeInfo>,
    #[serde(skip)]
    by_name: HashMap<String, TypeId>,
}

impl TypeRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds the name index; used after deserialisation.
    pub fn rebuild_index(&mut self) {
        self.by_name = self
            .infos
            .iter()
            .enumerate()
            .map(|(i, info)| (info.name.clone(), TypeId(i as u32)))
            .collect();
    }

    /// Interns a simple or compound type name, returning its id.
    ///
    /// Compound names (`[a; b]`) recursively intern their components.
    pub fn intern(&mut self, name: &str) -> TypeId {
        let canonical = Self::canonicalize(name);
        if let Some(&id) = self.by_name.get(&canonical) {
            return id;
        }
        let components = if canonical.starts_with('[') {
            Self::split_components(&canonical)
                .into_iter()
                .map(|c| self.intern(&c))
                .collect()
        } else {
            Vec::new()
        };
        let id = TypeId(self.infos.len() as u32);
        self.infos.push(TypeInfo {
            name: canonical.clone(),
            components,
        });
        self.by_name.insert(canonical, id);
        id
    }

    /// Interns the compound type formed from the given component types.
    pub fn intern_compound(&mut self, components: &[TypeId]) -> TypeId {
        let name = format!(
            "[{}]",
            components
                .iter()
                .map(|&c| self.name(c).to_owned())
                .collect::<Vec<_>>()
                .join("; ")
        );
        self.intern(&name)
    }

    /// Looks up a type by (canonicalised) name without interning.
    pub fn lookup(&self, name: &str) -> Option<TypeId> {
        self.by_name.get(&Self::canonicalize(name)).copied()
    }

    /// Returns the canonical name of a type.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this registry.
    pub fn name(&self, id: TypeId) -> &str {
        &self.infos[id.index()].name
    }

    /// Returns the components of a compound type (empty for simple types).
    pub fn components(&self, id: TypeId) -> &[TypeId] {
        &self.infos[id.index()].components
    }

    /// Returns `true` if the type is compound (`[a; b]`-shaped).
    pub fn is_compound(&self, id: TypeId) -> bool {
        !self.infos[id.index()].components.is_empty()
    }

    /// Number of interned types.
    pub fn len(&self) -> usize {
        self.infos.len()
    }

    /// Returns `true` if no types have been interned.
    pub fn is_empty(&self) -> bool {
        self.infos.is_empty()
    }

    /// Iterates over all `(TypeId, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (TypeId, &str)> {
        self.infos
            .iter()
            .enumerate()
            .map(|(i, info)| (TypeId(i as u32), info.name.as_str()))
    }

    fn canonicalize(name: &str) -> String {
        let trimmed = name.trim();
        if trimmed.starts_with('[') && trimmed.ends_with(']') {
            let inner = &trimmed[1..trimmed.len() - 1];
            let parts: Vec<String> = inner.split(';').map(Self::canonicalize).collect();
            format!("[{}]", parts.join("; "))
        } else {
            trimmed.to_owned()
        }
    }

    fn split_components(canonical: &str) -> Vec<String> {
        // `canonical` is already normalised; components are split on `;` at
        // bracket depth 1.
        let inner = &canonical[1..canonical.len() - 1];
        let mut parts = Vec::new();
        let mut depth = 0usize;
        let mut start = 0usize;
        for (i, ch) in inner.char_indices() {
            match ch {
                '[' => depth += 1,
                ']' => depth = depth.saturating_sub(1),
                ';' if depth == 0 => {
                    parts.push(inner[start..i].trim().to_owned());
                    start = i + 1;
                }
                _ => {}
            }
        }
        parts.push(inner[start..].trim().to_owned());
        parts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut reg = TypeRegistry::new();
        let a = reg.intern("student");
        let b = reg.intern("student");
        assert_eq!(a, b);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn distinct_names_get_distinct_ids() {
        let mut reg = TypeRegistry::new();
        let a = reg.intern("student");
        let b = reg.intern("course");
        assert_ne!(a, b);
        assert_eq!(reg.name(a), "student");
        assert_eq!(reg.name(b), "course");
    }

    #[test]
    fn compound_types_are_canonicalised() {
        let mut reg = TypeRegistry::new();
        let a = reg.intern("[student; course]");
        let b = reg.intern("[ student ;course ]");
        assert_eq!(a, b);
        assert_eq!(reg.name(a), "[student; course]");
        assert!(reg.is_compound(a));
        let comps = reg.components(a).to_vec();
        assert_eq!(comps.len(), 2);
        assert_eq!(reg.name(comps[0]), "student");
        assert_eq!(reg.name(comps[1]), "course");
    }

    #[test]
    fn compound_interning_registers_components() {
        let mut reg = TypeRegistry::new();
        reg.intern("[a; b]");
        assert!(reg.lookup("a").is_some());
        assert!(reg.lookup("b").is_some());
        assert_eq!(reg.len(), 3);
    }

    #[test]
    fn intern_compound_builds_bracket_name() {
        let mut reg = TypeRegistry::new();
        let s = reg.intern("student");
        let c = reg.intern("course");
        let sc = reg.intern_compound(&[s, c]);
        assert_eq!(reg.name(sc), "[student; course]");
        assert_eq!(reg.lookup("[student; course]"), Some(sc));
    }

    #[test]
    fn nested_compounds_split_correctly() {
        let mut reg = TypeRegistry::new();
        let t = reg.intern("[[a; b]; c]");
        let comps = reg.components(t).to_vec();
        assert_eq!(comps.len(), 2);
        assert_eq!(reg.name(comps[0]), "[a; b]");
        assert_eq!(reg.name(comps[1]), "c");
    }

    #[test]
    fn lookup_without_intern_returns_none() {
        let reg = TypeRegistry::new();
        assert!(reg.lookup("ghost").is_none());
    }

    #[test]
    fn rebuild_index_restores_lookup_after_serde() {
        let mut reg = TypeRegistry::new();
        reg.intern("faculty");
        reg.intern("[x; y]");
        let json = serde_json::to_string(&reg).unwrap();
        let mut back: TypeRegistry = serde_json::from_str(&json).unwrap();
        assert!(back.lookup("faculty").is_none()); // index skipped by serde
        back.rebuild_index();
        assert_eq!(back.lookup("faculty"), reg.lookup("faculty"));
        assert_eq!(back.lookup("[x; y]"), reg.lookup("[x; y]"));
    }
}
