//! Function definitions.
//!
//! A conceptual schema is a collection of function *definitions*
//! `<function_name, domain_type, range_type>` plus declared type
//! functionality (§2). The actual functions — sets of `<domain_val,
//! range_val>` pairs — live in `fdb-storage`.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::functionality::Functionality;
use crate::types::TypeId;

/// Dense identifier of a function within one [`crate::Schema`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
#[serde(transparent)]
pub struct FunctionId(pub u32);

impl FunctionId {
    /// Returns the underlying index for dense per-function tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FunctionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F{}", self.0)
    }
}

/// Definition of one function in the conceptual schema.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct FunctionDef {
    /// Identifier within the owning schema.
    pub id: FunctionId,
    /// The function's name, unique within the schema.
    pub name: String,
    /// Domain object type.
    pub domain: TypeId,
    /// Range object type.
    pub range: TypeId,
    /// Declared type functionality of the mapping.
    pub functionality: Functionality,
}

impl FunctionDef {
    /// Returns the (domain, range) pair — the function's *syntax* in the
    /// paper's terminology.
    pub fn syntax(&self) -> (TypeId, TypeId) {
        (self.domain, self.range)
    }

    /// `true` if the function maps a type to itself (a self-loop in the
    /// function graph).
    pub fn is_loop(&self) -> bool {
        self.domain == self.range
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn syntax_and_loop() {
        let f = FunctionDef {
            id: FunctionId(0),
            name: "teach".into(),
            domain: TypeId(0),
            range: TypeId(1),
            functionality: Functionality::ManyMany,
        };
        assert_eq!(f.syntax(), (TypeId(0), TypeId(1)));
        assert!(!f.is_loop());

        let g = FunctionDef {
            id: FunctionId(1),
            name: "mentor".into(),
            domain: TypeId(2),
            range: TypeId(2),
            functionality: Functionality::ManyOne,
        };
        assert!(g.is_loop());
    }
}
