//! Source spans for diagnostics.
//!
//! The language front end is line-oriented (one statement per line), so a
//! span is a 1-based line number plus a half-open **byte** range within
//! that line. Spans are carried by lexer tokens, threaded through the
//! parser, and consumed by the `fdb-check` static analyzer so every
//! diagnostic points at `line:col` instead of just naming a line.

use serde::{Deserialize, Serialize};

/// A half-open byte range `[start, end)` within one source line.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// Byte offset of the first byte, 0-based.
    pub start: u32,
    /// Byte offset one past the last byte.
    pub end: u32,
}

impl Span {
    /// Builds a span.
    pub fn new(line: u32, start: u32, end: u32) -> Self {
        Span { line, start, end }
    }

    /// A zero-width span at the start of a line (for diagnostics about a
    /// whole statement when no finer position is known).
    pub fn line_start(line: u32) -> Self {
        Span {
            line,
            start: 0,
            end: 0,
        }
    }

    /// The 1-based column of the span's first byte (what editors and
    /// SARIF consumers expect).
    pub fn col(&self) -> u32 {
        self.start + 1
    }

    /// The 1-based column one past the span's last byte.
    pub fn end_col(&self) -> u32 {
        self.end.max(self.start) + 1
    }

    /// The smallest span covering both `self` and `other` (same line
    /// assumed; keeps `self`'s line).
    pub fn merge(&self, other: Span) -> Span {
        Span {
            line: self.line,
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_are_one_based() {
        let s = Span::new(3, 4, 9);
        assert_eq!(s.col(), 5);
        assert_eq!(s.end_col(), 10);
        assert_eq!(s.to_string(), "3:5");
    }

    #[test]
    fn merge_covers_both() {
        let a = Span::new(1, 4, 9);
        let b = Span::new(1, 12, 20);
        assert_eq!(a.merge(b), Span::new(1, 4, 20));
        assert_eq!(b.merge(a), Span::new(1, 4, 20));
    }

    #[test]
    fn line_start_is_zero_width() {
        let s = Span::line_start(7);
        assert_eq!((s.start, s.end), (0, 0));
        assert_eq!(s.col(), 1);
    }
}
