//! The type-functionality algebra.
//!
//! §2.1: "The type functionality of a function indicates the nature of the
//! mapping it defines: one-one, one-many, many-one, and many-many." Paths
//! in the function graph compose functionalities; traversing an edge
//! against its declared direction uses the inverse functionality.
//!
//! We model a functionality as the pair of booleans
//! (*functional*: every domain object has at most one range object,
//! *injective*: every range object has at most one domain object):
//!
//! | variant    | functional | injective |
//! |------------|-----------|-----------|
//! | one-one    | yes       | yes       |
//! | one-many   | no        | yes       |
//! | many-one   | yes       | no        |
//! | many-many  | no        | no        |
//!
//! Under this reading `cutoff : marks → letter_grade (many-one)` maps many
//! marks to one letter grade: it is functional but not injective.
//! Composition is the conservative type-level rule: `f o g` is functional
//! iff both are, injective iff both are. Inverse swaps the two booleans.
//! Both operations are closed over the four variants, which is what makes
//! path functionality well-defined.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::FdbError;

/// Type functionality of a function or path (see module docs).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Functionality {
    /// Bijective mapping: each side determines the other.
    OneOne,
    /// One domain object may map to many range objects; range determines domain.
    OneMany,
    /// Many domain objects map to at most one range object each.
    ManyOne,
    /// Unrestricted binary relation.
    ManyMany,
}

impl Functionality {
    /// All four variants, in declaration order.
    pub const ALL: [Functionality; 4] = [
        Functionality::OneOne,
        Functionality::OneMany,
        Functionality::ManyOne,
        Functionality::ManyMany,
    ];

    /// Builds a functionality from its (functional, injective) components.
    pub fn from_parts(functional: bool, injective: bool) -> Self {
        match (functional, injective) {
            (true, true) => Functionality::OneOne,
            (false, true) => Functionality::OneMany,
            (true, false) => Functionality::ManyOne,
            (false, false) => Functionality::ManyMany,
        }
    }

    /// `true` iff each domain object has at most one range object.
    pub fn is_functional(self) -> bool {
        matches!(self, Functionality::OneOne | Functionality::ManyOne)
    }

    /// `true` iff each range object has at most one domain object.
    pub fn is_injective(self) -> bool {
        matches!(self, Functionality::OneOne | Functionality::OneMany)
    }

    /// Functionality of the inverse mapping (swap the two components).
    pub fn inverse(self) -> Self {
        Functionality::from_parts(self.is_injective(), self.is_functional())
    }

    /// Type-level functionality of the composition `self o other`
    /// (`x : (f o g) = (x : f) : g`, so `self` is applied first).
    pub fn compose(self, other: Self) -> Self {
        Functionality::from_parts(
            self.is_functional() && other.is_functional(),
            self.is_injective() && other.is_injective(),
        )
    }

    /// The paper's notation, e.g. `many - one`.
    pub fn paper_notation(self) -> &'static str {
        match self {
            Functionality::OneOne => "one - one",
            Functionality::OneMany => "one - many",
            Functionality::ManyOne => "many - one",
            Functionality::ManyMany => "many - many",
        }
    }
}

impl fmt::Display for Functionality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Functionality::OneOne => "one-one",
            Functionality::OneMany => "one-many",
            Functionality::ManyOne => "many-one",
            Functionality::ManyMany => "many-many",
        };
        f.write_str(s)
    }
}

impl FromStr for Functionality {
    type Err = FdbError;

    /// Accepts `one-one`, `one - one`, `1:1`, `one_one`, case-insensitively,
    /// and similarly for the other variants.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm: String = s
            .chars()
            .filter(|c| !c.is_whitespace())
            .map(|c| match c {
                '_' | ':' => '-',
                c => c.to_ascii_lowercase(),
            })
            .collect();
        match norm.as_str() {
            "one-one" | "1-1" => Ok(Functionality::OneOne),
            "one-many" | "1-n" | "1-m" => Ok(Functionality::OneMany),
            "many-one" | "n-1" | "m-1" => Ok(Functionality::ManyOne),
            "many-many" | "n-n" | "m-n" | "n-m" | "m-m" => Ok(Functionality::ManyMany),
            _ => Err(FdbError::ParseFunctionality(s.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Functionality::*;
    use super::*;

    #[test]
    fn parts_round_trip() {
        for f in Functionality::ALL {
            assert_eq!(
                Functionality::from_parts(f.is_functional(), f.is_injective()),
                f
            );
        }
    }

    #[test]
    fn inverse_swaps_components() {
        assert_eq!(OneOne.inverse(), OneOne);
        assert_eq!(OneMany.inverse(), ManyOne);
        assert_eq!(ManyOne.inverse(), OneMany);
        assert_eq!(ManyMany.inverse(), ManyMany);
    }

    #[test]
    fn inverse_is_involutive() {
        for f in Functionality::ALL {
            assert_eq!(f.inverse().inverse(), f);
        }
    }

    #[test]
    fn composition_table() {
        // Functional iff both functional; injective iff both injective.
        assert_eq!(OneOne.compose(OneOne), OneOne);
        assert_eq!(ManyOne.compose(ManyOne), ManyOne);
        assert_eq!(ManyOne.compose(OneMany), ManyMany);
        assert_eq!(OneMany.compose(ManyOne), ManyMany);
        assert_eq!(OneOne.compose(ManyOne), ManyOne);
        assert_eq!(OneMany.compose(OneMany), OneMany);
        assert_eq!(ManyMany.compose(OneOne), ManyMany);
    }

    #[test]
    fn composition_is_associative() {
        for a in Functionality::ALL {
            for b in Functionality::ALL {
                for c in Functionality::ALL {
                    assert_eq!(a.compose(b).compose(c), a.compose(b.compose(c)));
                }
            }
        }
    }

    #[test]
    fn one_one_is_composition_identity() {
        for f in Functionality::ALL {
            assert_eq!(OneOne.compose(f), f);
            assert_eq!(f.compose(OneOne), f);
        }
    }

    #[test]
    fn inverse_antidistributes_over_composition() {
        // (f o g)⁻¹ = g⁻¹ o f⁻¹ at the type level. Since our compose is
        // symmetric in its boolean components this is easy, but assert it.
        for f in Functionality::ALL {
            for g in Functionality::ALL {
                assert_eq!(f.compose(g).inverse(), g.inverse().compose(f.inverse()));
            }
        }
    }

    #[test]
    fn parse_accepts_paper_notation() {
        assert_eq!("many - many".parse::<Functionality>().unwrap(), ManyMany);
        assert_eq!("many - one".parse::<Functionality>().unwrap(), ManyOne);
        assert_eq!("ONE_ONE".parse::<Functionality>().unwrap(), OneOne);
        assert_eq!("1:1".parse::<Functionality>().unwrap(), OneOne);
        assert_eq!("n:1".parse::<Functionality>().unwrap(), ManyOne);
        assert!("sideways".parse::<Functionality>().is_err());
    }

    #[test]
    fn display_and_paper_notation() {
        assert_eq!(ManyOne.to_string(), "many-one");
        assert_eq!(ManyOne.paper_notation(), "many - one");
    }
}
