//! Data values: atoms and uniquely-indexed null values.
//!
//! Section 3.2 of the paper introduces *null values* `n₁, n₂, …` to
//! represent the existential witness created by a derived insert: inserting
//! `<f₃, a₃, c₃>` where `f₃ = f₁ o f₂` stores `<f₁, a₃, n₁>` and
//! `<f₂, n₁, c₃>` for a fresh, uniquely indexed null `n₁`.
//!
//! Matching rules (quoted from the paper): two facts `<x, y>`, `<u, v>`
//! *match exactly* if `y = u`, and *match ambiguously* if `y ≠ u` and
//! (`y` is a null value or `u` is a null value). `y = u` iff both are
//! non-null and are the same data item, or both are null values with the
//! same index.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// An interned immutable data atom (a non-null object identifier).
///
/// Atoms are cheap to clone (`Arc<str>`), compare by string content, and
/// hash by content so that structurally equal atoms coming from different
/// sources behave identically.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Atom(Arc<str>);

impl Atom {
    /// Creates an atom from any string-like input.
    pub fn new(s: impl AsRef<str>) -> Self {
        Atom(Arc::from(s.as_ref()))
    }

    /// Returns the atom's textual content.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Atom {
    fn from(s: &str) -> Self {
        Atom::new(s)
    }
}

impl From<String> for Atom {
    fn from(s: String) -> Self {
        Atom(Arc::from(s))
    }
}

/// The unique index of a null value (`n₁`, `n₂`, …).
///
/// Two nulls are the *same* value iff their indices are equal; nulls with
/// distinct indices may or may not denote the same underlying object, which
/// is exactly the ambiguity the paper's chain-matching rules capture.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
#[serde(transparent)]
pub struct NullId(pub u64);

impl fmt::Display for NullId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Generator of fresh, uniquely indexed null values.
///
/// Each database owns one generator so null indices never collide within an
/// instance. The generator is deliberately deterministic: the `k`-th null
/// created is always `n_k`, which keeps traces reproducible (and matches the
/// paper's worked example, where the first derived insert creates `n1`).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct NullGen {
    next: u64,
}

impl NullGen {
    /// Creates a generator whose first null will be `n1`.
    pub fn new() -> Self {
        NullGen { next: 1 }
    }

    /// Returns a fresh null value, advancing the counter.
    pub fn fresh(&mut self) -> Value {
        let id = NullId(self.next);
        self.next += 1;
        Value::Null(id)
    }

    /// Number of nulls generated so far.
    pub fn generated(&self) -> u64 {
        self.next.saturating_sub(1)
    }

    /// Internal watermark: the index the next fresh null will take.
    ///
    /// Capture this before a speculative operation and pass it back to
    /// [`NullGen::rewind`] to un-draw the nulls generated since — the
    /// storage-layer undo journal uses this so a rolled-back transaction
    /// leaves the generator byte-identical to its pre-transaction state.
    pub fn watermark(&self) -> u64 {
        self.next
    }

    /// Rewinds the generator to a previously captured [`NullGen::watermark`].
    ///
    /// Only ever rewind to a watermark taken from this generator: the
    /// indices drawn since the watermark must no longer be referenced
    /// anywhere (the undo journal guarantees this by removing the rows
    /// that used them first).
    pub fn rewind(&mut self, watermark: u64) {
        debug_assert!(
            watermark <= self.next,
            "rewind target {watermark} is ahead of the generator ({})",
            self.next
        );
        self.next = watermark;
    }
}

/// A data value: either a concrete [`Atom`] or a [`NullId`]-indexed null.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Value {
    /// A concrete data item.
    Atom(Atom),
    /// A uniquely indexed null value standing for an unknown data item.
    Null(NullId),
}

impl Value {
    /// Convenience constructor for an atom value.
    pub fn atom(s: impl AsRef<str>) -> Self {
        Value::Atom(Atom::new(s))
    }

    /// Returns `true` if this value is a null.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null(_))
    }

    /// Returns the atom content if this value is an atom.
    pub fn as_atom(&self) -> Option<&Atom> {
        match self {
            Value::Atom(a) => Some(a),
            Value::Null(_) => None,
        }
    }

    /// How this value matches another under the paper's §3.2 rules.
    ///
    /// * [`MatchKind::Exact`] — the values are equal (same atom, or nulls
    ///   with the same index);
    /// * [`MatchKind::Ambiguous`] — the values differ but at least one is a
    ///   null, so they *could* denote the same object;
    /// * [`MatchKind::None`] — two distinct atoms; they can never match.
    pub fn matches(&self, other: &Value) -> MatchKind {
        if self == other {
            MatchKind::Exact
        } else if self.is_null() || other.is_null() {
            MatchKind::Ambiguous
        } else {
            MatchKind::None
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Atom(a) => a.fmt(f),
            Value::Null(n) => n.fmt(f),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::atom(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Atom(Atom::from(s))
    }
}

impl From<Atom> for Value {
    fn from(a: Atom) -> Self {
        Value::Atom(a)
    }
}

/// The result of matching two values (or two adjacent facts in a chain).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum MatchKind {
    /// The values are equal.
    Exact,
    /// The values differ but one of them is a null, so equality is possible.
    Ambiguous,
    /// Two distinct atoms; equality is impossible.
    None,
}

impl MatchKind {
    /// Combines the match kinds of successive links of a chain: a chain
    /// matches exactly iff every link does, ambiguously if no link is an
    /// outright mismatch but some link is ambiguous.
    pub fn and(self, other: MatchKind) -> MatchKind {
        use MatchKind::*;
        match (self, other) {
            (None, _) | (_, None) => None,
            (Ambiguous, _) | (_, Ambiguous) => Ambiguous,
            (Exact, Exact) => Exact,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atom_equality_is_by_content() {
        assert_eq!(Atom::new("math"), Atom::new(String::from("math")));
        assert_ne!(Atom::new("math"), Atom::new("physics"));
    }

    #[test]
    fn null_gen_starts_at_n1_and_is_sequential() {
        let mut g = NullGen::new();
        assert_eq!(g.fresh(), Value::Null(NullId(1)));
        assert_eq!(g.fresh(), Value::Null(NullId(2)));
        assert_eq!(g.generated(), 2);
    }

    #[test]
    fn matching_atoms() {
        let a = Value::atom("x");
        let b = Value::atom("x");
        let c = Value::atom("y");
        assert_eq!(a.matches(&b), MatchKind::Exact);
        assert_eq!(a.matches(&c), MatchKind::None);
    }

    #[test]
    fn matching_nulls_same_index_is_exact() {
        let n1 = Value::Null(NullId(1));
        let n1b = Value::Null(NullId(1));
        assert_eq!(n1.matches(&n1b), MatchKind::Exact);
    }

    #[test]
    fn matching_nulls_distinct_index_is_ambiguous() {
        let n1 = Value::Null(NullId(1));
        let n2 = Value::Null(NullId(2));
        assert_eq!(n1.matches(&n2), MatchKind::Ambiguous);
    }

    #[test]
    fn matching_null_with_atom_is_ambiguous() {
        let n1 = Value::Null(NullId(1));
        let a = Value::atom("x");
        assert_eq!(n1.matches(&a), MatchKind::Ambiguous);
        assert_eq!(a.matches(&n1), MatchKind::Ambiguous);
    }

    #[test]
    fn match_kind_and_combines_like_three_valued_conjunction() {
        use MatchKind::*;
        assert_eq!(Exact.and(Exact), Exact);
        assert_eq!(Exact.and(Ambiguous), Ambiguous);
        assert_eq!(Ambiguous.and(Ambiguous), Ambiguous);
        assert_eq!(None.and(Exact), None);
        assert_eq!(Ambiguous.and(None), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::atom("euclid").to_string(), "euclid");
        assert_eq!(Value::Null(NullId(7)).to_string(), "n7");
    }

    #[test]
    fn serde_round_trip() {
        let v = Value::Null(NullId(3));
        let s = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&s).unwrap();
        assert_eq!(v, back);
        let v = Value::atom("gauss");
        let s = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&s).unwrap();
        assert_eq!(v, back);
    }
}
