//! Derivation expressions.
//!
//! A *derivation* of a derived function `G` is an ordered sequence of base
//! functions combined with the operations identity and inverse:
//! `g = u₁ f_{i₁} o u₂ f_{i₂} o … o u_k f_{i_k}` with
//! `uⱼ ∈ {identity, inverse}` (§2). Composition is
//! `x : (f o g) = (x : f) : g`, i.e. the *first* step is applied first.
//!
//! A derivation is well-formed with respect to a schema when the effective
//! range of each step equals the effective domain of the next, where the
//! effective domain/range of an inverse step are the declared range/domain
//! swapped.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{FdbError, Result};
use crate::function::FunctionId;
use crate::functionality::Functionality;
use crate::schema::Schema;
use crate::types::TypeId;

/// The per-step operator: use the function as declared, or inverted.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Op {
    /// Use the function as declared.
    Identity,
    /// Use the inverse of the function.
    Inverse,
}

impl Op {
    /// Flips identity ↔ inverse.
    pub fn flip(self) -> Op {
        match self {
            Op::Identity => Op::Inverse,
            Op::Inverse => Op::Identity,
        }
    }
}

/// One step of a derivation: `u F` for `u ∈ {identity, inverse}`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Step {
    /// The operator applied to the function.
    pub op: Op,
    /// The base function used by this step.
    pub function: FunctionId,
}

impl Step {
    /// A step using the function as declared.
    pub fn identity(function: FunctionId) -> Self {
        Step {
            op: Op::Identity,
            function,
        }
    }

    /// A step using the inverse of the function.
    pub fn inverse(function: FunctionId) -> Self {
        Step {
            op: Op::Inverse,
            function,
        }
    }

    /// Effective (domain, range) of the step under a schema.
    pub fn endpoints(&self, schema: &Schema) -> (TypeId, TypeId) {
        let def = schema.function(self.function);
        match self.op {
            Op::Identity => (def.domain, def.range),
            Op::Inverse => (def.range, def.domain),
        }
    }

    /// Effective functionality of the step under a schema.
    pub fn functionality(&self, schema: &Schema) -> Functionality {
        let f = schema.function(self.function).functionality;
        match self.op {
            Op::Identity => f,
            Op::Inverse => f.inverse(),
        }
    }
}

/// A derivation: a non-empty sequence of [`Step`]s composed left to right.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Derivation {
    steps: Vec<Step>,
}

impl Derivation {
    /// Builds a derivation from steps, rejecting the empty sequence.
    pub fn new(steps: Vec<Step>) -> Result<Self> {
        if steps.is_empty() {
            return Err(FdbError::MalformedDerivation(
                "a derivation must have at least one step".into(),
            ));
        }
        Ok(Derivation { steps })
    }

    /// A single-step derivation (e.g. `taught_by = teach⁻¹`).
    pub fn single(step: Step) -> Self {
        Derivation { steps: vec![step] }
    }

    /// The steps, first-applied first.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Derivations are never empty, so this is always `false`; provided to
    /// satisfy the usual container idiom.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Validates chaining against a schema and returns the derivation's
    /// effective (domain, range) — its *syntax* in the paper's terms.
    pub fn endpoints(&self, schema: &Schema) -> Result<(TypeId, TypeId)> {
        let (start, mut cur) = self.steps[0].endpoints(schema);
        for (i, step) in self.steps.iter().enumerate().skip(1) {
            let (d, r) = step.endpoints(schema);
            if d != cur {
                return Err(FdbError::MalformedDerivation(format!(
                    "step {i} expects domain {} but previous range is {}",
                    schema.type_name(d),
                    schema.type_name(cur)
                )));
            }
            cur = r;
        }
        Ok((start, cur))
    }

    /// Composed type functionality of the whole derivation.
    pub fn functionality(&self, schema: &Schema) -> Functionality {
        self.steps
            .iter()
            .map(|s| s.functionality(schema))
            .reduce(Functionality::compose)
            .expect("derivations are non-empty")
    }

    /// The inverse derivation: steps reversed, each op flipped.
    pub fn inverted(&self) -> Derivation {
        Derivation {
            steps: self
                .steps
                .iter()
                .rev()
                .map(|s| Step {
                    op: s.op.flip(),
                    function: s.function,
                })
                .collect(),
        }
    }

    /// `true` if the derivation mentions the given function (in either
    /// orientation).
    pub fn mentions(&self, f: FunctionId) -> bool {
        self.steps.iter().any(|s| s.function == f)
    }

    /// Renders the derivation with function names, e.g.
    /// `class_list^-1 o teach^-1`.
    pub fn render(&self, schema: &Schema) -> String {
        self.steps
            .iter()
            .map(|s| {
                let name = &schema.function(s.function).name;
                match s.op {
                    Op::Identity => name.clone(),
                    Op::Inverse => format!("{name}^-1"),
                }
            })
            .collect::<Vec<_>>()
            .join(" o ")
    }
}

impl fmt::Display for Derivation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .steps
            .iter()
            .map(|s| match s.op {
                Op::Identity => format!("{}", s.function),
                Op::Inverse => format!("{}^-1", s.function),
            })
            .collect();
        f.write_str(&parts.join(" o "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{schema_s1, schema_s2};

    #[test]
    fn empty_derivation_rejected() {
        assert!(matches!(
            Derivation::new(vec![]),
            Err(FdbError::MalformedDerivation(_))
        ));
    }

    #[test]
    fn grade_equals_score_o_cutoff() {
        let s = schema_s1();
        let score = s.resolve("score").unwrap();
        let cutoff = s.resolve("cutoff").unwrap();
        let d = Derivation::new(vec![Step::identity(score), Step::identity(cutoff)]).unwrap();
        let (dom, rng) = d.endpoints(&s).unwrap();
        let grade = s.function_by_name("grade").unwrap();
        assert_eq!((dom, rng), grade.syntax());
        assert_eq!(d.functionality(&s), grade.functionality);
        assert_eq!(d.render(&s), "score o cutoff");
    }

    #[test]
    fn lecturer_of_derivation_uses_inverses() {
        let s = schema_s2();
        let teach = s.resolve("teach").unwrap();
        let class_list = s.resolve("class_list").unwrap();
        // lecturer_of = class_list⁻¹ o teach⁻¹ : student → faculty
        let d = Derivation::new(vec![Step::inverse(class_list), Step::inverse(teach)]).unwrap();
        let (dom, rng) = d.endpoints(&s).unwrap();
        assert_eq!(s.type_name(dom), "student");
        assert_eq!(s.type_name(rng), "faculty");
        assert_eq!(d.render(&s), "class_list^-1 o teach^-1");
    }

    #[test]
    fn broken_chain_is_malformed() {
        let s = schema_s1();
        let teach = s.resolve("teach").unwrap(); // faculty → course
        let cutoff = s.resolve("cutoff").unwrap(); // marks → letter_grade
        let d = Derivation::new(vec![Step::identity(teach), Step::identity(cutoff)]).unwrap();
        assert!(matches!(
            d.endpoints(&s),
            Err(FdbError::MalformedDerivation(_))
        ));
    }

    #[test]
    fn inverted_reverses_and_flips() {
        let s = schema_s2();
        let teach = s.resolve("teach").unwrap();
        let class_list = s.resolve("class_list").unwrap();
        let d = Derivation::new(vec![Step::inverse(class_list), Step::inverse(teach)]).unwrap();
        let inv = d.inverted();
        assert_eq!(
            inv.steps(),
            &[Step::identity(teach), Step::identity(class_list)]
        );
        // Inverting twice is the identity.
        assert_eq!(inv.inverted(), d);
        // Endpoints swap.
        let (d0, r0) = d.endpoints(&s).unwrap();
        let (d1, r1) = inv.endpoints(&s).unwrap();
        assert_eq!((d0, r0), (r1, d1));
    }

    #[test]
    fn functionality_composes_with_inverse() {
        let s = schema_s1();
        let cutoff = s.resolve("cutoff").unwrap(); // many-one
        let d = Derivation::single(Step::inverse(cutoff));
        assert_eq!(d.functionality(&s), Functionality::OneMany);
    }

    #[test]
    fn mentions_checks_either_orientation() {
        let s = schema_s1();
        let score = s.resolve("score").unwrap();
        let cutoff = s.resolve("cutoff").unwrap();
        let teach = s.resolve("teach").unwrap();
        let d = Derivation::new(vec![Step::identity(score), Step::inverse(cutoff)]).unwrap();
        assert!(d.mentions(score));
        assert!(d.mentions(cutoff));
        assert!(!d.mentions(teach));
    }
}
