//! Conceptual schemas.
//!
//! A schema is the ordered collection of function definitions of a
//! functional database, together with the object-type registry. Order
//! matters: the on-line design aid (Method 2.1) processes functions in
//! declaration order, and Algorithm AMS iterates edges in that order, so we
//! preserve it.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{FdbError, Result};
use crate::function::{FunctionDef, FunctionId};
use crate::functionality::Functionality;
use crate::types::{TypeId, TypeRegistry};

/// A conceptual schema: object types plus function definitions.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Schema {
    types: TypeRegistry,
    functions: Vec<FunctionDef>,
    #[serde(skip)]
    by_name: HashMap<String, FunctionId>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a fluent builder.
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder {
            schema: Schema::new(),
            error: None,
        }
    }

    /// Rebuilds internal indexes after deserialisation.
    pub fn rebuild_index(&mut self) {
        self.types.rebuild_index();
        self.by_name = self
            .functions
            .iter()
            .map(|f| (f.name.clone(), f.id))
            .collect();
    }

    /// Declares a function `name : domain → range (functionality)`.
    ///
    /// Domain and range type names are interned on the fly. Returns the new
    /// function's id, or [`FdbError::DuplicateFunction`] if the name is
    /// taken.
    pub fn declare(
        &mut self,
        name: &str,
        domain: &str,
        range: &str,
        functionality: Functionality,
    ) -> Result<FunctionId> {
        if self.by_name.contains_key(name) {
            return Err(FdbError::DuplicateFunction(name.to_owned()));
        }
        let domain = self.types.intern(domain);
        let range = self.types.intern(range);
        let id = FunctionId(self.functions.len() as u32);
        self.functions.push(FunctionDef {
            id,
            name: name.to_owned(),
            domain,
            range,
            functionality,
        });
        self.by_name.insert(name.to_owned(), id);
        Ok(id)
    }

    /// Looks a function up by name.
    pub fn function_by_name(&self, name: &str) -> Option<&FunctionDef> {
        self.by_name.get(name).map(|&id| self.function(id))
    }

    /// Resolves a function name to its id, erroring if unknown.
    pub fn resolve(&self, name: &str) -> Result<FunctionId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| FdbError::UnknownFunction(name.to_owned()))
    }

    /// Returns the definition of a function.
    ///
    /// # Panics
    /// Panics if `id` does not belong to this schema.
    pub fn function(&self, id: FunctionId) -> &FunctionDef {
        &self.functions[id.index()]
    }

    /// All function definitions, in declaration order.
    pub fn functions(&self) -> &[FunctionDef] {
        &self.functions
    }

    /// Number of functions declared.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// `true` if no functions are declared.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }

    /// Immutable access to the type registry.
    pub fn types(&self) -> &TypeRegistry {
        &self.types
    }

    /// Mutable access to the type registry (used by the language layer to
    /// pre-intern compound types).
    pub fn types_mut(&mut self) -> &mut TypeRegistry {
        &mut self.types
    }

    /// The name of an object type.
    pub fn type_name(&self, id: TypeId) -> &str {
        self.types.name(id)
    }

    /// Renders one definition the way the paper prints them:
    /// `grade: [student; course] → letter_grade; (many - one)`.
    pub fn render_def(&self, id: FunctionId) -> String {
        let f = self.function(id);
        format!(
            "{}: {} -> {}; ({})",
            f.name,
            self.type_name(f.domain),
            self.type_name(f.range),
            f.functionality.paper_notation()
        )
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, def) in self.functions.iter().enumerate() {
            writeln!(f, "{}. {}", i + 1, self.render_def(def.id))?;
        }
        Ok(())
    }
}

/// Fluent builder so examples can declare whole schemas in one expression.
///
/// Errors are deferred: the first declaration failure is reported by
/// [`SchemaBuilder::build`].
pub struct SchemaBuilder {
    schema: Schema,
    error: Option<FdbError>,
}

impl SchemaBuilder {
    /// Declares a function; functionality is given textually
    /// (`"many-one"`, `"many - many"`, …).
    pub fn function(mut self, name: &str, domain: &str, range: &str, functionality: &str) -> Self {
        if self.error.is_some() {
            return self;
        }
        match functionality.parse::<Functionality>() {
            Ok(fun) => {
                if let Err(e) = self.schema.declare(name, domain, range, fun) {
                    self.error = Some(e);
                }
            }
            Err(e) => self.error = Some(e),
        }
        self
    }

    /// Finishes the build, reporting the first deferred error if any.
    pub fn build(self) -> Result<Schema> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(self.schema),
        }
    }
}

/// The paper's Table 1 (conceptual schema S1), ready-made for tests,
/// examples and benches.
pub fn schema_s1() -> Schema {
    Schema::builder()
        .function("grade", "[student; course]", "letter_grade", "many-one")
        .function("score", "[student; course]", "marks", "many-one")
        .function("cutoff", "marks", "letter_grade", "many-one")
        .function("teach", "faculty", "course", "many-many")
        .function("taught_by", "course", "faculty", "many-many")
        .build()
        .expect("S1 is well-formed")
}

/// The §2.1 counter-example schema S2 (teach / class_list / lecturer_of).
pub fn schema_s2() -> Schema {
    Schema::builder()
        .function("teach", "faculty", "course", "many-many")
        .function("class_list", "course", "student", "many-many")
        .function("lecturer_of", "student", "faculty", "many-many")
        .build()
        .expect("S2 is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_lookup() {
        let mut s = Schema::new();
        let id = s
            .declare("teach", "faculty", "course", Functionality::ManyMany)
            .unwrap();
        assert_eq!(s.resolve("teach").unwrap(), id);
        let def = s.function_by_name("teach").unwrap();
        assert_eq!(s.type_name(def.domain), "faculty");
        assert_eq!(s.type_name(def.range), "course");
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut s = Schema::new();
        s.declare("f", "a", "b", Functionality::OneOne).unwrap();
        let err = s.declare("f", "a", "c", Functionality::OneOne).unwrap_err();
        assert_eq!(err, FdbError::DuplicateFunction("f".into()));
    }

    #[test]
    fn unknown_function_errors() {
        let s = Schema::new();
        assert!(matches!(
            s.resolve("nope"),
            Err(FdbError::UnknownFunction(_))
        ));
    }

    #[test]
    fn table1_schema_s1_matches_paper() {
        let s = schema_s1();
        assert_eq!(s.len(), 5);
        assert_eq!(
            s.render_def(s.resolve("grade").unwrap()),
            "grade: [student; course] -> letter_grade; (many - one)"
        );
        assert_eq!(
            s.render_def(s.resolve("cutoff").unwrap()),
            "cutoff: marks -> letter_grade; (many - one)"
        );
        // grade and score share the compound domain type.
        let grade = s.function_by_name("grade").unwrap();
        let score = s.function_by_name("score").unwrap();
        assert_eq!(grade.domain, score.domain);
    }

    #[test]
    fn builder_reports_first_error() {
        let r = Schema::builder()
            .function("f", "a", "b", "one-one")
            .function("g", "a", "b", "sideways")
            .function("f", "a", "b", "one-one")
            .build();
        assert!(matches!(r, Err(FdbError::ParseFunctionality(_))));
    }

    #[test]
    fn display_numbers_functions_like_table1() {
        let s = schema_s1();
        let text = s.to_string();
        assert!(text.starts_with("1. grade:"));
        assert!(text.contains("\n5. taught_by:"));
    }

    #[test]
    fn serde_round_trip_preserves_resolution() {
        let s = schema_s1();
        let json = serde_json::to_string(&s).unwrap();
        let mut back: Schema = serde_json::from_str(&json).unwrap();
        back.rebuild_index();
        assert_eq!(back.len(), 5);
        assert_eq!(back.resolve("teach").unwrap(), s.resolve("teach").unwrap());
        assert_eq!(
            back.render_def(back.resolve("grade").unwrap()),
            s.render_def(s.resolve("grade").unwrap())
        );
    }
}
