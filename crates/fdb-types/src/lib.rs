//! Core vocabulary of the `fdb` functional database.
//!
//! A *functional database* (in the DAPLEX / EFDM lineage formalised by
//! Yerneni & Lanka, ICDE 1989) is a set of **object types** together with a
//! set of **functions** `F : α → β` mapping objects of type `α` to objects
//! of type `β`. Functions are not necessarily single-valued; they are binary
//! relations whose *type functionality* (one-one, one-many, many-one,
//! many-many) is declared in the schema.
//!
//! This crate defines the shared vocabulary used by every other crate in
//! the workspace:
//!
//! * [`Value`] — data atoms and uniquely-indexed null values (`n₁`, `n₂`, …)
//!   with the paper's exact / ambiguous matching rules,
//! * [`TypeId`] / [`TypeRegistry`] — interned object types, including
//!   compound domains such as `[student; course]`,
//! * [`Functionality`] — the type-functionality algebra closed under
//!   composition and inverse,
//! * [`FunctionDef`] / [`Schema`] — function definitions and conceptual
//!   schemas,
//! * [`Derivation`] — derivation expressions `u₁F₁ o u₂F₂ o … o uₖFₖ`
//!   with `uᵢ ∈ {identity, inverse}`,
//! * [`FdbError`] — the workspace error type.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod derivation;
mod error;
mod function;
mod functionality;
mod schema;
mod span;
mod types;
mod value;

pub use derivation::{Derivation, Op, Step};
pub use error::{FdbError, Result};
pub use function::{FunctionDef, FunctionId};
pub use functionality::Functionality;
pub use schema::{schema_s1, schema_s2, Schema, SchemaBuilder};
pub use span::Span;
pub use types::{TypeId, TypeRegistry};
pub use value::{Atom, MatchKind, NullGen, NullId, Value};
