//! Workspace-wide error type.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, FdbError>;

/// Errors raised by the fdb crates.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum FdbError {
    /// A functionality string could not be parsed.
    ParseFunctionality(String),
    /// A function name was declared twice in one schema.
    DuplicateFunction(String),
    /// A function name is unknown in the schema.
    UnknownFunction(String),
    /// An object type name is unknown.
    UnknownType(String),
    /// A derivation is not well-formed (adjacent steps do not chain, or it
    /// is empty).
    MalformedDerivation(String),
    /// An update targeted a derived function that has no derivation.
    NoDerivation(String),
    /// An update on a derived function passed null arguments (only the
    /// system introduces nulls; users insert concrete facts).
    NullInUserUpdate,
    /// A base update targeted a derived function or vice versa.
    WrongFunctionKind {
        /// The function the update targeted.
        function: String,
        /// `true` if the function is derived but a base update was attempted.
        is_derived: bool,
    },
    /// A replace update's deleted pair was absent.
    ReplaceMissing(String),
    /// Generic parse error from the language front end.
    Parse {
        /// 1-based line of the error.
        line: u32,
        /// Explanation of what went wrong.
        message: String,
    },
    /// A governed operation ran past its wall-clock deadline; the string
    /// names what was interrupted. Partial work (if any) was discarded —
    /// retry with a larger deadline or use a partial-result API.
    DeadlineExceeded(String),
    /// A governed operation exhausted a step/memory/result budget; the
    /// string names what was interrupted and which budget ran out.
    BudgetExhausted(String),
    /// A cooperative cancellation token was tripped (Ctrl-C, admin stop).
    Cancelled,
    /// The system shed this request to protect itself: a bounded lock
    /// acquisition timed out or the admission gate was full. The request
    /// was not executed; safe to retry later.
    Overloaded {
        /// What could not be acquired (e.g. "database write lock").
        what: String,
        /// How long the request waited before being shed, in ms.
        waited_ms: u64,
    },
    /// A transaction-control operation was used out of order: `COMMIT` /
    /// `ROLLBACK` / `SAVEPOINT` without an open `BEGIN`, `BEGIN` inside an
    /// open transaction, `ROLLBACK TO` an unknown savepoint, or an
    /// operation that cannot run inside a transaction (e.g. a checkpoint).
    TxnControl(String),
    /// A governed statement inside an open transaction stopped early
    /// (deadline, budget, cancellation or overload); the transaction was
    /// automatically rolled back to `savepoint` — or aborted entirely when
    /// `savepoint` is `None` — and `cause` is the stop that triggered it.
    /// The partial work of the statement is gone; committed-so-far state
    /// up to the savepoint is still live inside the open transaction.
    TxnAborted {
        /// The savepoint rolled back to, if one was set.
        savepoint: Option<String>,
        /// The governed stop that triggered the rollback.
        cause: Box<FdbError>,
    },
    /// An internal invariant was violated (bug).
    Internal(String),
}

impl FdbError {
    /// `true` for the graceful-degradation stops (deadline, budget,
    /// cancellation, overload shedding) that a transaction reacts to by
    /// rolling back to its last savepoint. Other errors (parse errors,
    /// unknown functions, …) leave the transaction as-is: they made no
    /// partial mutation to undo.
    pub fn is_governed_stop(&self) -> bool {
        matches!(
            self,
            FdbError::DeadlineExceeded(_)
                | FdbError::BudgetExhausted(_)
                | FdbError::Cancelled
                | FdbError::Overloaded { .. }
        )
    }
}

impl fmt::Display for FdbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FdbError::ParseFunctionality(s) => {
                write!(f, "cannot parse type functionality from {s:?}")
            }
            FdbError::DuplicateFunction(name) => {
                write!(f, "function {name:?} declared more than once")
            }
            FdbError::UnknownFunction(name) => write!(f, "unknown function {name:?}"),
            FdbError::UnknownType(name) => write!(f, "unknown object type {name:?}"),
            FdbError::MalformedDerivation(why) => {
                write!(f, "malformed derivation: {why}")
            }
            FdbError::NoDerivation(name) => {
                write!(f, "derived function {name:?} has no registered derivation")
            }
            FdbError::NullInUserUpdate => {
                write!(f, "user updates must not contain null values")
            }
            FdbError::WrongFunctionKind {
                function,
                is_derived,
            } => {
                if *is_derived {
                    write!(f, "{function:?} is derived; use a derived update")
                } else {
                    write!(f, "{function:?} is a base function; use a base update")
                }
            }
            FdbError::ReplaceMissing(what) => {
                write!(f, "replace: pair to remove not present: {what}")
            }
            FdbError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            FdbError::DeadlineExceeded(what) => {
                write!(f, "deadline exceeded: {what}")
            }
            FdbError::BudgetExhausted(what) => {
                write!(f, "budget exhausted: {what}")
            }
            FdbError::Cancelled => write!(f, "operation cancelled"),
            FdbError::Overloaded { what, waited_ms } => {
                write!(f, "overloaded: {what} unavailable after {waited_ms}ms")
            }
            FdbError::TxnControl(msg) => write!(f, "transaction control error: {msg}"),
            FdbError::TxnAborted { savepoint, cause } => match savepoint {
                Some(name) => write!(
                    f,
                    "statement stopped ({cause}); transaction rolled back to savepoint {name:?}"
                ),
                None => write!(f, "statement stopped ({cause}); transaction rolled back"),
            },
            FdbError::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for FdbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = FdbError::UnknownFunction("pupil".into());
        assert!(e.to_string().contains("pupil"));
        let e = FdbError::Parse {
            line: 3,
            message: "expected '->'".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&FdbError::NullInUserUpdate);
    }
}
