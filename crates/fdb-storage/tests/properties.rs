//! Property-based tests for the §3.2 / §4 update semantics.
//!
//! A random stream of base/derived inserts and deletes over the paper's
//! `pupil = teach o class_list` shape must preserve the structural
//! invariants of the store and the logical guarantees of each operation.

use proptest::prelude::*;

use fdb_storage::chain::{derived_delete, derived_truth, ChainLimits};
use fdb_storage::nvc::derived_insert;
use fdb_storage::{Fact, Store, Truth};
use fdb_types::{Derivation, FunctionId, Step, Value};

const TEACH: FunctionId = FunctionId(0);
const CLASS_LIST: FunctionId = FunctionId(1);

fn pupil() -> Derivation {
    Derivation::new(vec![Step::identity(TEACH), Step::identity(CLASS_LIST)]).unwrap()
}

#[derive(Clone, Debug)]
enum OpKind {
    BaseInsertTeach(u8, u8),
    BaseInsertClass(u8, u8),
    BaseDeleteTeach(u8, u8),
    BaseDeleteClass(u8, u8),
    DerivedInsert(u8, u8),
    DerivedDelete(u8, u8),
}

fn faculty(i: u8) -> Value {
    Value::atom(format!("fac{i}"))
}
fn course(i: u8) -> Value {
    Value::atom(format!("crs{i}"))
}
fn student(i: u8) -> Value {
    Value::atom(format!("stu{i}"))
}

fn arb_op() -> impl Strategy<Value = OpKind> {
    let small = 0u8..4;
    prop_oneof![
        (small.clone(), small.clone()).prop_map(|(a, b)| OpKind::BaseInsertTeach(a, b)),
        (small.clone(), small.clone()).prop_map(|(a, b)| OpKind::BaseInsertClass(a, b)),
        (small.clone(), small.clone()).prop_map(|(a, b)| OpKind::BaseDeleteTeach(a, b)),
        (small.clone(), small.clone()).prop_map(|(a, b)| OpKind::BaseDeleteClass(a, b)),
        (small.clone(), small.clone()).prop_map(|(a, b)| OpKind::DerivedInsert(a, b)),
        (small.clone(), small).prop_map(|(a, b)| OpKind::DerivedDelete(a, b)),
    ]
}

fn apply(store: &mut Store, op: &OpKind) {
    let d = pupil();
    let lim = ChainLimits::default();
    match *op {
        OpKind::BaseInsertTeach(a, b) => store.base_insert(TEACH, faculty(a), course(b)),
        OpKind::BaseInsertClass(a, b) => store.base_insert(CLASS_LIST, course(a), student(b)),
        OpKind::BaseDeleteTeach(a, b) => {
            store.base_delete(TEACH, &faculty(a), &course(b));
        }
        OpKind::BaseDeleteClass(a, b) => {
            store.base_delete(CLASS_LIST, &course(a), &student(b));
        }
        OpKind::DerivedInsert(a, b) => derived_insert(store, &d, faculty(a), student(b)),
        OpKind::DerivedDelete(a, b) => {
            derived_delete(store, &[d], &faculty(a), &student(b), lim);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The NC ↔ NCL duality invariant survives any op sequence.
    #[test]
    fn duality_invariant(ops in proptest::collection::vec(arb_op(), 0..40)) {
        let mut store = Store::new(2);
        for op in &ops {
            apply(&mut store, op);
            prop_assert!(store.check_duality().is_none(),
                "duality violated after {op:?}: {:?}", store.check_duality());
        }
    }

    /// Immediately after `derived-insert(x, y)` the derived fact is true.
    #[test]
    fn derived_insert_makes_fact_true(
        ops in proptest::collection::vec(arb_op(), 0..25),
        a in 0u8..4, b in 0u8..4,
    ) {
        let mut store = Store::new(2);
        for op in &ops {
            apply(&mut store, op);
        }
        derived_insert(&mut store, &pupil(), faculty(a), student(b));
        prop_assert_eq!(
            derived_truth(&store, &[pupil()], &faculty(a), &student(b), ChainLimits::default()),
            Truth::True
        );
    }

    /// Immediately after `derived-delete(x, y)` the derived fact is not
    /// true (it may remain ambiguous through chains with mismatched nulls,
    /// which the delete's NCs do not — and must not — negate).
    #[test]
    fn derived_delete_removes_truth(
        ops in proptest::collection::vec(arb_op(), 0..25),
        a in 0u8..4, b in 0u8..4,
    ) {
        let mut store = Store::new(2);
        for op in &ops {
            apply(&mut store, op);
        }
        derived_delete(&mut store, &[pupil()], &faculty(a), &student(b), ChainLimits::default());
        prop_assert_ne!(
            derived_truth(&store, &[pupil()], &faculty(a), &student(b), ChainLimits::default()),
            Truth::True
        );
    }

    /// Base inserts make the base fact true; base deletes make it false —
    /// regardless of history.
    #[test]
    fn base_ops_assert_their_fact(
        ops in proptest::collection::vec(arb_op(), 0..25),
        a in 0u8..4, b in 0u8..4,
    ) {
        let mut store = Store::new(2);
        for op in &ops {
            apply(&mut store, op);
        }
        store.base_insert(TEACH, faculty(a), course(b));
        prop_assert_eq!(
            store.base_truth(&Fact::new(TEACH, faculty(a), course(b))),
            Truth::True
        );
        store.base_delete(TEACH, &faculty(a), &course(b));
        prop_assert_eq!(
            store.base_truth(&Fact::new(TEACH, faculty(a), course(b))),
            Truth::False
        );
    }

    /// Every NC member is flagged ambiguous while its NC is live — and
    /// base facts flagged true belong to no NC.
    #[test]
    fn nc_members_are_ambiguous(ops in proptest::collection::vec(arb_op(), 0..40)) {
        let mut store = Store::new(2);
        for op in &ops {
            apply(&mut store, op);
        }
        for (_, facts) in store.ncs().iter() {
            for f in facts {
                prop_assert_eq!(store.base_truth(f), Truth::Ambiguous);
            }
        }
        for fid in [TEACH, CLASS_LIST] {
            for row in store.table(fid).rows() {
                if row.truth == Truth::True {
                    prop_assert!(row.ncl.is_empty());
                }
            }
        }
    }

    /// Derived-insert is idempotent at the instance level: repeating it
    /// changes neither the fact count nor the null count.
    #[test]
    fn derived_insert_idempotent(
        ops in proptest::collection::vec(arb_op(), 0..25),
        a in 0u8..4, b in 0u8..4,
    ) {
        let mut store = Store::new(2);
        for op in &ops {
            apply(&mut store, op);
        }
        derived_insert(&mut store, &pupil(), faculty(a), student(b));
        let facts = store.fact_count();
        let nulls = store.nulls().generated();
        derived_insert(&mut store, &pupil(), faculty(a), student(b));
        prop_assert_eq!(store.fact_count(), facts);
        prop_assert_eq!(store.nulls().generated(), nulls);
    }

    /// The side-effect-freedom theorem of §3: a derived delete never
    /// changes the truth value of any *other* derived fact from true to
    /// false (it may downgrade true to ambiguous, never to false, and
    /// never invents new truth).
    #[test]
    fn derived_delete_is_side_effect_free(
        ops in proptest::collection::vec(arb_op(), 0..25),
        a in 0u8..4, b in 0u8..4,
    ) {
        let mut store = Store::new(2);
        for op in &ops {
            apply(&mut store, op);
        }
        let lim = ChainLimits::default();
        // Truth of every derived pair before the delete.
        let mut before = Vec::new();
        for fa in 0..4u8 {
            for st in 0..4u8 {
                before.push((
                    fa,
                    st,
                    derived_truth(&store, &[pupil()], &faculty(fa), &student(st), lim),
                ));
            }
        }
        derived_delete(&mut store, &[pupil()], &faculty(a), &student(b), lim);
        for (fa, st, old) in before {
            if fa == a && st == b {
                continue; // the deleted fact itself
            }
            let new = derived_truth(&store, &[pupil()], &faculty(fa), &student(st), lim);
            // No other fact may be falsified outright…
            if old == Truth::True {
                prop_assert_ne!(new, Truth::False,
                    "side effect: pupil(fac{}, stu{}) went true → false", fa, st);
            }
            // …and nothing false becomes true.
            if old == Truth::False {
                prop_assert_ne!(new, Truth::True);
            }
        }
    }
}
