//! Negated conjunctions (NC) and their store.
//!
//! §3.2: deleting a derived fact `σ` converts each of its derivations into
//! a *negated conjunction* — a set of base facts whose conjunction is
//! asserted false while each member individually becomes ambiguous. §4
//! implements an NC as "a list of pointers to its component facts"; each
//! fact's NCL points back, forming a dual structure. The store below owns
//! the NC → facts direction; the facts' NCLs live in their tables
//! ([`crate::table`]) and are kept in sync by [`crate::Store`].

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::fact::Fact;

/// Unique index of a negated conjunction (the paper writes `NC(d)`; the
/// worked example names its first NC `g₁`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
#[serde(transparent)]
pub struct NcId(pub u64);

impl fmt::Display for NcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// The NC store: `NcId → component facts`.
///
/// Only the bookkeeping lives here; flag/NCL updates on the component
/// facts are the responsibility of [`crate::Store`], which wraps
/// [`NcStore::create`] / [`NcStore::dismantle`] in the paper's
/// `create-NC` / `dismantle-NC` procedures.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct NcStore {
    ncs: BTreeMap<NcId, Vec<Fact>>,
    next: u64,
}

impl NcStore {
    /// Creates an empty store whose first NC will be `g1`.
    pub fn new() -> Self {
        NcStore {
            ncs: BTreeMap::new(),
            next: 1,
        }
    }

    /// Registers a new NC over `conjuncts`, returning its fresh index.
    pub fn create(&mut self, conjuncts: Vec<Fact>) -> NcId {
        let id = NcId(self.next);
        self.next += 1;
        self.ncs.insert(id, conjuncts);
        id
    }

    /// Removes `id` and returns its conjuncts (empty if unknown).
    pub fn dismantle(&mut self, id: NcId) -> Vec<Fact> {
        self.ncs.remove(&id).unwrap_or_default()
    }

    /// Undoes a create (transaction rollback): removes `id` and rewinds
    /// the index counter so the store's next NC reuses it. Sound only in
    /// reverse creation order — the most recently created NC always holds
    /// the highest index — which the undo journal guarantees.
    pub(crate) fn undo_create(&mut self, id: NcId) {
        debug_assert_eq!(id.0 + 1, self.next, "undo_create out of order");
        self.ncs.remove(&id);
        self.next = id.0;
    }

    /// Undoes a dismantle (transaction rollback): re-registers `id` with
    /// the conjuncts it held. The index counter is untouched — dismantle
    /// never advanced it.
    pub(crate) fn restore(&mut self, id: NcId, conjuncts: Vec<Fact>) {
        debug_assert!(!self.ncs.contains_key(&id), "restore of a live NC");
        self.ncs.insert(id, conjuncts);
    }

    /// Replaces the conjuncts of a live NC verbatim (undo of
    /// [`NcStore::substitute_value`] for one NC during rollback).
    pub(crate) fn rewrite(&mut self, id: NcId, conjuncts: Vec<Fact>) {
        if let Some(facts) = self.ncs.get_mut(&id) {
            *facts = conjuncts;
        } else {
            debug_assert!(false, "rewrite of unknown NC {id}");
        }
    }

    /// The conjuncts of `id`, if it exists.
    pub fn get(&self, id: NcId) -> Option<&[Fact]> {
        self.ncs.get(&id).map(Vec::as_slice)
    }

    /// `true` if `id` is a live NC.
    pub fn contains(&self, id: NcId) -> bool {
        self.ncs.contains_key(&id)
    }

    /// Number of live NCs.
    pub fn len(&self) -> usize {
        self.ncs.len()
    }

    /// `true` if there are no live NCs.
    pub fn is_empty(&self) -> bool {
        self.ncs.is_empty()
    }

    /// Iterates over the live NCs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (NcId, &[Fact])> {
        self.ncs.iter().map(|(&id, facts)| (id, facts.as_slice()))
    }

    /// Rewrites every occurrence of `from` in NC conjunct values to `to`
    /// (used by null substitution; see `fdb-core`'s resolution pass).
    pub fn substitute_value(&mut self, from: &fdb_types::Value, to: &fdb_types::Value) {
        for facts in self.ncs.values_mut() {
            for f in facts.iter_mut() {
                if &f.x == from {
                    f.x = to.clone();
                }
                if &f.y == from {
                    f.y = to.clone();
                }
            }
        }
    }

    /// Returns `true` if the multiset of facts in `chain` is a superset of
    /// some live NC — the §3.2 condition that disqualifies a chain from
    /// making a derived fact ambiguous.
    ///
    /// Facts are compared structurally (function + pair); a chain never
    /// contains duplicates of the same row, so set semantics suffice.
    pub fn chain_covers_some_nc(&self, chain: &[Fact]) -> bool {
        self.ncs
            .values()
            .any(|nc| nc.iter().all(|f| chain.contains(f)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_types::FunctionId;

    fn fact(f: u32, x: &str, y: &str) -> Fact {
        Fact::new(FunctionId(f), x, y)
    }

    #[test]
    fn create_assigns_sequential_indices() {
        let mut s = NcStore::new();
        let a = s.create(vec![fact(0, "a", "b")]);
        let b = s.create(vec![fact(1, "b", "c")]);
        assert_eq!(a, NcId(1));
        assert_eq!(b, NcId(2));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn dismantle_removes_and_returns_conjuncts() {
        let mut s = NcStore::new();
        let id = s.create(vec![fact(0, "a", "b"), fact(1, "b", "c")]);
        let conj = s.dismantle(id);
        assert_eq!(conj.len(), 2);
        assert!(!s.contains(id));
        assert!(s.dismantle(id).is_empty());
    }

    #[test]
    fn indices_are_never_reused() {
        let mut s = NcStore::new();
        let a = s.create(vec![fact(0, "a", "b")]);
        s.dismantle(a);
        let b = s.create(vec![fact(0, "a", "b")]);
        assert_ne!(a, b);
    }

    #[test]
    fn chain_superset_detection() {
        let mut s = NcStore::new();
        s.create(vec![fact(0, "euclid", "math"), fact(1, "math", "john")]);
        // The exact chain is a superset (equal).
        assert!(s.chain_covers_some_nc(&[fact(0, "euclid", "math"), fact(1, "math", "john")]));
        // A longer chain containing the NC is also a superset.
        assert!(s.chain_covers_some_nc(&[
            fact(0, "euclid", "math"),
            fact(1, "math", "john"),
            fact(2, "john", "cs")
        ]));
        // A chain sharing only one conjunct is not.
        assert!(!s.chain_covers_some_nc(&[fact(0, "euclid", "math"), fact(1, "math", "bill")]));
        // The empty chain covers nothing (every NC is non-empty here).
        assert!(!s.chain_covers_some_nc(&[]));
    }

    #[test]
    fn iter_in_index_order() {
        let mut s = NcStore::new();
        let a = s.create(vec![fact(0, "a", "b")]);
        let b = s.create(vec![fact(1, "c", "d")]);
        let ids: Vec<NcId> = s.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![a, b]);
    }
}
