//! In-memory undo journal backing atomic multi-statement transactions.
//!
//! §3 views "a general update request … as a sequence of simple updates";
//! making that sequence atomic means every primitive mutation of the store
//! must be individually reversible. While a transaction is open the
//! [`crate::Store`] appends one [`UndoOp`] per primitive side effect
//! (row appended, row tombstoned, truth flag set, NC created/dismantled,
//! NCL entry attached/detached, null drawn, NC conjunct rewritten);
//! rollback applies the inverses in reverse order, which restores the
//! serialized representation of the store *byte-identically* — including
//! tombstone layout, NC indices and the null-generator watermark — so a
//! rolled-back transaction is indistinguishable from one that never ran.
//!
//! The journal is deliberately not serialized: an open transaction never
//! survives a snapshot (checkpoints are deferred while one is open, see
//! `fdb-core`'s durability layer), and crash recovery re-derives
//! atomicity from the WAL's `TxnBegin`/`TxnCommit`/`TxnAbort` frames.

use std::collections::BTreeSet;

use fdb_types::FunctionId;

use crate::fact::Fact;
use crate::nc::NcId;
use crate::truth::Truth;

/// One reversible primitive mutation, recorded in execution order.
#[derive(Clone, Debug)]
pub enum UndoOp {
    /// A fresh row was appended to the table of `f` (by `base-insert` or a
    /// null-substitution rebuild). Undo: pop the table's last row — in
    /// reverse undo order the appended row is always last, because rows
    /// are append-only and compaction is suspended while a transaction is
    /// open.
    RowAppended {
        /// Function whose table grew.
        f: FunctionId,
    },
    /// The live row at `index` was tombstoned. Undo: resurrect it in
    /// place, restoring the NCL it carried (tombstoning preserves the
    /// row's key and flag, so in-place resurrection reproduces the exact
    /// serialized layout).
    RowRemoved {
        /// Function whose table lost the row.
        f: FunctionId,
        /// Row index at removal time (stable: compaction is suspended).
        index: usize,
        /// The NCL the row carried when removed.
        ncl: BTreeSet<NcId>,
    },
    /// The truth flag of the row at `index` was overwritten. Undo: restore
    /// `prior`.
    TruthSet {
        /// Function owning the row.
        f: FunctionId,
        /// Row index.
        index: usize,
        /// Flag before the write (`T` or `A`; live rows are never `F`).
        prior: Truth,
    },
    /// `id` was attached to the NCL of the row at `index` (flagging it
    /// ambiguous). Undo: detach if the entry was newly inserted, then
    /// restore the prior flag.
    NcAttached {
        /// Function owning the row.
        f: FunctionId,
        /// Row index.
        index: usize,
        /// The NC attached.
        id: NcId,
        /// Flag before the attach.
        prior: Truth,
        /// `false` if the NCL already contained `id` (BTreeSet dedup).
        newly: bool,
    },
    /// `id` was detached from the NCL of the row at `index` (dismantle
    /// leaves the flag ambiguous). Undo: re-attach — the row was
    /// necessarily ambiguous at detach time, so `attach_nc` restores both
    /// the entry and the flag.
    NcDetached {
        /// Function owning the row.
        f: FunctionId,
        /// Row index.
        index: usize,
        /// The NC detached.
        id: NcId,
    },
    /// A fresh NC was registered. Undo: remove it and rewind the NC-id
    /// counter (safe in reverse order: the most recently created NC always
    /// holds the highest index).
    NcCreated {
        /// The NC created.
        id: NcId,
    },
    /// An NC was dismantled. Undo: re-register it under the same index
    /// with the conjuncts it held (the id counter was not advanced by the
    /// dismantle).
    NcDismantled {
        /// The NC dismantled.
        id: NcId,
        /// Its conjuncts at dismantle time.
        conjuncts: Vec<Fact>,
    },
    /// Null substitution rewrote the conjuncts of an NC. Undo: restore the
    /// prior conjunct list verbatim.
    NcRewritten {
        /// The NC rewritten.
        id: NcId,
        /// Its conjuncts before the substitution.
        prior: Vec<Fact>,
    },
    /// A fresh null was drawn. Undo: rewind the generator to the
    /// watermark captured immediately before the draw.
    NullDrawn {
        /// `NullGen::watermark()` before the draw.
        watermark: u64,
    },
}

impl UndoOp {
    /// Rough in-memory footprint, reported through `fdb.txn.undo_log_bytes`.
    pub fn approx_bytes(&self) -> usize {
        let base = std::mem::size_of::<UndoOp>();
        match self {
            UndoOp::RowRemoved { ncl, .. } => base + ncl.len() * std::mem::size_of::<NcId>(),
            UndoOp::NcDismantled { conjuncts, .. }
            | UndoOp::NcRewritten {
                prior: conjuncts, ..
            } => base + conjuncts.len() * std::mem::size_of::<Fact>(),
            _ => base,
        }
    }

    /// The function whose observable extension this op touched, if any —
    /// rollback bumps exactly these per-function version counters so every
    /// derived cache observes the rollback as a fresh version event.
    pub fn touched_function(&self) -> Option<FunctionId> {
        match self {
            UndoOp::RowAppended { f }
            | UndoOp::RowRemoved { f, .. }
            | UndoOp::TruthSet { f, .. }
            | UndoOp::NcAttached { f, .. }
            | UndoOp::NcDetached { f, .. } => Some(*f),
            _ => None,
        }
    }
}

/// The journal of an open transaction: ops in execution order plus the
/// bookkeeping needed to defer compaction until commit.
#[derive(Clone, Debug, Default)]
pub struct UndoJournal {
    ops: Vec<UndoOp>,
    /// Approximate bytes across all recorded ops (kept incrementally so
    /// the metric gauge is O(1)).
    bytes: usize,
    /// Functions whose automatic compaction was suppressed while the
    /// transaction was open; commit re-checks their policies.
    pub(crate) deferred_compaction: BTreeSet<u32>,
}

impl UndoJournal {
    /// Records one op.
    pub fn push(&mut self, op: UndoOp) {
        self.bytes += op.approx_bytes();
        self.ops.push(op);
    }

    /// Number of recorded ops — used as a savepoint mark.
    pub fn mark(&self) -> usize {
        self.ops.len()
    }

    /// Approximate journal size in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.bytes
    }

    /// Drains the ops after `mark`, newest first (the order rollback must
    /// apply the inverses in).
    pub(crate) fn drain_to(&mut self, mark: usize) -> Vec<UndoOp> {
        let tail: Vec<UndoOp> = self.ops.drain(mark..).rev().collect();
        self.bytes = self.ops.iter().map(UndoOp::approx_bytes).sum();
        tail
    }
}
