//! Extensional storage with three-valued truth for the fdb functional
//! database — the §3.2 / §4 machinery of Yerneni & Lanka (ICDE 1989).
//!
//! A fact `f(a) = b` is stored as the quadruple `<a, b, T/A, NCL>` in the
//! table of `f` (§4): the *truth flag* is `T` (true) or `A` (ambiguous),
//! and the *negated-conjunction list* (NCL) records every NC the fact
//! participates in. Partial information created by updates on derived
//! functions is captured by two constructs:
//!
//! * **NC** (negated conjunction, [`nc`]) — created by a derived delete:
//!   the conjunction of the member facts is false, and each member becomes
//!   ambiguous. The NC store and the per-row NCLs form the dual structure
//!   of §4 ("the NC and NCL form a dual data structure that enables the
//!   traversal from a NC to its component facts and vice versa").
//! * **NVC** (null-valued chain, [`nvc`]) — created by a derived insert:
//!   a chain of base facts threaded through fresh, uniquely indexed null
//!   values witnessing the inserted derived fact.
//!
//! Truth of *derived* facts ([`chain`]) follows §3.2 verbatim: a derived
//! fact is **true** if some exactly matching chain of true base facts
//! yields it; **ambiguous** if it is not true but some chain yielding it
//! (exactly or ambiguously) is not a superset of an NC; **false**
//! otherwise.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod chain;
pub mod fact;
pub mod nc;
pub mod nvc;
pub mod snapshot;
pub mod store;
pub mod table;
pub mod truth;
pub mod undo;

pub use chain::{Chain, ChainLimits, DerivedPair};
pub use fact::Fact;
pub use fdb_governor::{Governance, Governor, Outcome, StopReason, Ungoverned};
pub use nc::{NcId, NcStore};
pub use snapshot::Snapshot;
pub use store::{CompactionPolicy, Store};
pub use table::{RowView, Table, TableStats};
pub use truth::Truth;
pub use undo::{UndoJournal, UndoOp};
