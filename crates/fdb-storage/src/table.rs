//! Per-function extensional tables of quadruples `<a, b, T/A, NCL>` (§4).
//!
//! Rows keep their insertion order (the paper's worked-example tables are
//! printed in insertion order) and are tombstoned on delete so row indices
//! remain stable within one table. Lookup indexes by domain value, range
//! value, and null-valuedness support the chain traversal of [`crate::chain`].

use std::collections::{BTreeSet, HashMap};

use serde::{Deserialize, Serialize};

use fdb_types::Value;

use crate::nc::NcId;
use crate::truth::Truth;

/// A stored row (internal representation).
#[derive(Clone, Debug, Serialize, Deserialize)]
struct Row {
    x: Value,
    y: Value,
    truth: Truth, // True or Ambiguous; never False while alive
    ncl: BTreeSet<NcId>,
    alive: bool,
}

/// A read-only view of one live row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RowView<'t> {
    /// Domain value.
    pub x: &'t Value,
    /// Range value.
    pub y: &'t Value,
    /// Truth flag (`T` or `A`).
    pub truth: Truth,
    /// The row's negated-conjunction list.
    pub ncl: &'t BTreeSet<NcId>,
}

/// The extensional table of one base function.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Table {
    rows: Vec<Row>,
    #[serde(skip)]
    index: HashMap<(Value, Value), usize>,
    #[serde(skip)]
    by_x: HashMap<Value, Vec<usize>>,
    #[serde(skip)]
    by_y: HashMap<Value, Vec<usize>>,
    #[serde(skip)]
    null_x: Vec<usize>,
    #[serde(skip)]
    null_y: Vec<usize>,
    #[serde(skip)]
    live: usize,
    #[serde(skip)]
    dead: usize,
}

/// Cheap per-table statistics for the chain planner (`fdb-exec`).
///
/// `rows` is exact; the distinct and null counts are *estimates*: they
/// count index entries, which may include keys whose rows are all
/// tombstoned. Auto-compaction (see [`crate::store::CompactionPolicy`])
/// bounds the tombstone fraction, and with it the estimation error.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Number of live rows (exact).
    pub rows: usize,
    /// Distinct domain values (index-entry estimate).
    pub distinct_x: usize,
    /// Distinct range values (index-entry estimate).
    pub distinct_y: usize,
    /// Rows with a null domain value (index-entry estimate).
    pub null_x: usize,
    /// Rows with a null range value (index-entry estimate).
    pub null_y: usize,
}

impl Table {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds the lookup indexes from the row log (after deserialising).
    pub fn rebuild_index(&mut self) {
        self.index.clear();
        self.by_x.clear();
        self.by_y.clear();
        self.null_x.clear();
        self.null_y.clear();
        self.live = 0;
        self.dead = 0;
        for i in 0..self.rows.len() {
            if self.rows[i].alive {
                self.live += 1;
                self.index_row(i);
            } else {
                self.dead += 1;
            }
        }
    }

    fn index_row(&mut self, i: usize) {
        let (x, y) = (self.rows[i].x.clone(), self.rows[i].y.clone());
        self.index.insert((x.clone(), y.clone()), i);
        self.by_x.entry(x.clone()).or_default().push(i);
        self.by_y.entry(y.clone()).or_default().push(i);
        if x.is_null() {
            self.null_x.push(i);
        }
        if y.is_null() {
            self.null_y.push(i);
        }
    }

    /// Inserts `(x, y)` with flag `T` and empty NCL, or returns the index
    /// of the already-present row. The boolean is `true` if a new row was
    /// created.
    pub fn insert(&mut self, x: Value, y: Value) -> (usize, bool) {
        if let Some(&i) = self.index.get(&(x.clone(), y.clone())) {
            return (i, false);
        }
        let i = self.rows.len();
        self.rows.push(Row {
            x,
            y,
            truth: Truth::True,
            ncl: BTreeSet::new(),
            alive: true,
        });
        self.live += 1;
        self.index_row(i);
        (i, true)
    }

    /// Removes `(x, y)` if present, returning the NCL it carried.
    pub fn remove(&mut self, x: &Value, y: &Value) -> Option<BTreeSet<NcId>> {
        let i = self.index.remove(&(x.clone(), y.clone()))?;
        self.rows[i].alive = false;
        self.live -= 1;
        self.dead += 1;
        Some(std::mem::take(&mut self.rows[i].ncl))
    }

    /// Index of the live row `(x, y)`, if present.
    pub fn position(&self, x: &Value, y: &Value) -> Option<usize> {
        self.index.get(&(x.clone(), y.clone())).copied()
    }

    /// `true` if the pair is present (alive).
    pub fn contains(&self, x: &Value, y: &Value) -> bool {
        self.position(x, y).is_some()
    }

    /// View of the live row at `i`, if alive.
    pub fn row(&self, i: usize) -> Option<RowView<'_>> {
        let r = self.rows.get(i)?;
        r.alive.then_some(RowView {
            x: &r.x,
            y: &r.y,
            truth: r.truth,
            ncl: &r.ncl,
        })
    }

    /// Truth flag of a live pair ([`Truth::False`] if absent — absent base
    /// facts are false, §3.2).
    pub fn truth_of(&self, x: &Value, y: &Value) -> Truth {
        match self.position(x, y) {
            Some(i) => self.rows[i].truth,
            None => Truth::False,
        }
    }

    /// Sets the truth flag of a live row.
    pub fn set_truth(&mut self, i: usize, truth: Truth) {
        debug_assert!(truth != Truth::False, "stored rows are never false");
        if let Some(r) = self.rows.get_mut(i) {
            if r.alive {
                r.truth = truth;
            }
        }
    }

    /// Adds an NC to a live row's NCL (and flags the row ambiguous, per
    /// `create-NC`).
    pub fn attach_nc(&mut self, i: usize, nc: NcId) {
        if let Some(r) = self.rows.get_mut(i) {
            if r.alive {
                r.ncl.insert(nc);
                r.truth = Truth::Ambiguous;
            }
        }
    }

    /// Removes an NC from a live row's NCL. Per the paper's
    /// `dismantle-NC`, the flag is *not* reset: the member facts remain
    /// ambiguous until a direct insert asserts them true.
    pub fn detach_nc(&mut self, i: usize, nc: NcId) {
        if let Some(r) = self.rows.get_mut(i) {
            r.ncl.remove(&nc);
        }
    }

    /// Low-level insert of a row with explicit flag and NCL, used by null
    /// substitution to rebuild rows under a new key. If the pair already
    /// exists the row is left untouched and `None` is returned; otherwise
    /// the new row's index.
    pub fn restore_row(
        &mut self,
        x: Value,
        y: Value,
        truth: Truth,
        ncl: BTreeSet<NcId>,
    ) -> Option<usize> {
        if self.index.contains_key(&(x.clone(), y.clone())) {
            return None;
        }
        let (i, _) = self.insert(x, y);
        self.rows[i].truth = truth;
        self.rows[i].ncl = ncl;
        Some(i)
    }

    /// Undoes the most recent append (transaction rollback): pops the last
    /// row and scrubs its index entries. The caller (the store's undo
    /// journal) applies inverses in reverse order with compaction
    /// suspended, so the row to un-append is always the physically last
    /// one and is always alive.
    pub(crate) fn undo_append(&mut self) {
        let Some(r) = self.rows.pop() else {
            debug_assert!(false, "undo_append on an empty table");
            return;
        };
        debug_assert!(r.alive, "undo_append must target a live row");
        let i = self.rows.len();
        self.index.remove(&(r.x.clone(), r.y.clone()));
        // Bucket vectors hold ascending row indices, so the popped row's
        // entry — if present — is the bucket's last element.
        if let Some(b) = self.by_x.get_mut(&r.x) {
            if b.last() == Some(&i) {
                b.pop();
            }
            if b.is_empty() {
                self.by_x.remove(&r.x);
            }
        }
        if let Some(b) = self.by_y.get_mut(&r.y) {
            if b.last() == Some(&i) {
                b.pop();
            }
            if b.is_empty() {
                self.by_y.remove(&r.y);
            }
        }
        if self.null_x.last() == Some(&i) {
            self.null_x.pop();
        }
        if self.null_y.last() == Some(&i) {
            self.null_y.pop();
        }
        self.live -= 1;
    }

    /// Undoes a tombstoning (transaction rollback): revives the row at `i`
    /// in place, restoring the NCL it carried. Key, flag and physical
    /// position were preserved by [`Table::remove`], so this reproduces
    /// the exact pre-removal serialized layout; the value-bucket indexes
    /// still reference `i` (removal never scrubbed them) and become
    /// valid again the moment `alive` flips back.
    pub(crate) fn resurrect(&mut self, i: usize, ncl: BTreeSet<NcId>) {
        let Some(r) = self.rows.get_mut(i) else {
            debug_assert!(false, "resurrect of unknown row {i}");
            return;
        };
        debug_assert!(!r.alive, "resurrect must target a tombstoned row");
        r.alive = true;
        r.ncl = ncl;
        let key = (r.x.clone(), r.y.clone());
        self.index.insert(key, i);
        self.live += 1;
        self.dead -= 1;
    }

    /// Live rows in insertion order.
    pub fn rows(&self) -> impl Iterator<Item = RowView<'_>> {
        self.rows.iter().filter(|r| r.alive).map(|r| RowView {
            x: &r.x,
            y: &r.y,
            truth: r.truth,
            ncl: &r.ncl,
        })
    }

    /// Number of live rows (O(1): maintained incrementally).
    pub fn len(&self) -> usize {
        self.live
    }

    /// Planner statistics (see [`TableStats`] for exactness caveats).
    pub fn stats(&self) -> TableStats {
        TableStats {
            rows: self.live,
            distinct_x: self.by_x.len(),
            distinct_y: self.by_y.len(),
            null_x: self.null_x.len(),
            null_y: self.null_y.len(),
        }
    }

    /// Exact single-valuedness of the current extension, over *live* rows
    /// only: `(functional, injective)`. `functional` holds when no domain
    /// value maps to two live range values, `injective` when no range
    /// value is reached from two live domain values. Unlike
    /// [`Table::stats`] this scans the rows, so tombstoned index entries
    /// cannot inflate the answer; nulls compare by identity (two distinct
    /// unknowns count as distinct values). An empty table is vacuously
    /// both.
    pub fn single_valuedness(&self) -> (bool, bool) {
        let mut seen_x: HashMap<&Value, &Value> = HashMap::new();
        let mut seen_y: HashMap<&Value, &Value> = HashMap::new();
        let mut functional = true;
        let mut injective = true;
        for r in self.rows.iter().filter(|r| r.alive) {
            match seen_x.get(&r.x) {
                Some(y) if *y != &r.y => functional = false,
                _ => {
                    seen_x.insert(&r.x, &r.y);
                }
            }
            match seen_y.get(&r.y) {
                Some(x) if *x != &r.x => injective = false,
                _ => {
                    seen_y.insert(&r.y, &r.x);
                }
            }
            if !functional && !injective {
                break;
            }
        }
        (functional, injective)
    }

    /// Width of the `by_x` index bucket for `v` — an O(1) upper bound on
    /// `rows_with_x(v).count()` (tombstoned entries are not subtracted).
    pub fn x_width(&self, v: &Value) -> usize {
        self.by_x.get(v).map_or(0, Vec::len)
    }

    /// Width of the `by_y` index bucket for `v` — an O(1) upper bound on
    /// `rows_with_y(v).count()`.
    pub fn y_width(&self, v: &Value) -> usize {
        self.by_y.get(v).map_or(0, Vec::len)
    }

    /// `true` if the table has no live rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Indices of live rows whose domain value equals `v` exactly.
    pub fn rows_with_x(&self, v: &Value) -> impl Iterator<Item = usize> + '_ {
        fdb_obs::registry().storage_index_probes.inc();
        self.by_x
            .get(v)
            .into_iter()
            .flatten()
            .copied()
            .filter(move |&i| self.rows[i].alive)
    }

    /// Indices of live rows whose range value equals `v` exactly.
    pub fn rows_with_y(&self, v: &Value) -> impl Iterator<Item = usize> + '_ {
        fdb_obs::registry().storage_index_probes.inc();
        self.by_y
            .get(v)
            .into_iter()
            .flatten()
            .copied()
            .filter(move |&i| self.rows[i].alive)
    }

    /// Indices of live rows whose domain value is a null.
    pub fn rows_with_null_x(&self) -> impl Iterator<Item = usize> + '_ {
        self.null_x
            .iter()
            .copied()
            .filter(move |&i| self.rows[i].alive)
    }

    /// Indices of live rows whose range value is a null.
    pub fn rows_with_null_y(&self) -> impl Iterator<Item = usize> + '_ {
        self.null_y
            .iter()
            .copied()
            .filter(move |&i| self.rows[i].alive)
    }

    /// Indices of all live rows.
    pub fn live_indices(&self) -> impl Iterator<Item = usize> + '_ {
        fdb_obs::registry().storage_table_scans.inc();
        (0..self.rows.len()).filter(move |&i| self.rows[i].alive)
    }

    /// Number of tombstoned rows awaiting compaction (O(1)).
    pub fn tombstones(&self) -> usize {
        self.dead
    }

    /// Drops tombstoned rows and rebuilds the indexes. Row indices are
    /// invalidated (they are internal handles only; no NC conjunct stores
    /// an index — conjuncts key by value pair, which compaction
    /// preserves). Insertion order of live rows is kept.
    pub fn compact(&mut self) {
        if self.dead == 0 {
            return;
        }
        fdb_obs::registry().storage_compactions.inc();
        self.rows.retain(|r| r.alive);
        self.rebuild_index();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_types::NullId;

    fn v(s: &str) -> Value {
        Value::atom(s)
    }

    #[test]
    fn insert_and_lookup() {
        let mut t = Table::new();
        let (i, fresh) = t.insert(v("euclid"), v("math"));
        assert!(fresh);
        let (j, fresh2) = t.insert(v("euclid"), v("math"));
        assert!(!fresh2);
        assert_eq!(i, j);
        assert_eq!(t.len(), 1);
        assert_eq!(t.truth_of(&v("euclid"), &v("math")), Truth::True);
        assert_eq!(t.truth_of(&v("euclid"), &v("physics")), Truth::False);
    }

    #[test]
    fn remove_tombstones_and_returns_ncl() {
        let mut t = Table::new();
        let (i, _) = t.insert(v("a"), v("b"));
        t.attach_nc(i, NcId(1));
        let ncl = t.remove(&v("a"), &v("b")).unwrap();
        assert_eq!(ncl.into_iter().collect::<Vec<_>>(), vec![NcId(1)]);
        assert!(!t.contains(&v("a"), &v("b")));
        assert!(t.remove(&v("a"), &v("b")).is_none());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn reinsert_after_remove_is_fresh_and_true() {
        let mut t = Table::new();
        let (i, _) = t.insert(v("a"), v("b"));
        t.attach_nc(i, NcId(1));
        t.remove(&v("a"), &v("b"));
        let (j, fresh) = t.insert(v("a"), v("b"));
        assert!(fresh);
        assert_ne!(i, j);
        assert_eq!(t.truth_of(&v("a"), &v("b")), Truth::True);
        assert!(t.row(j).unwrap().ncl.is_empty());
    }

    #[test]
    fn attach_nc_flags_ambiguous_detach_keeps_flag() {
        let mut t = Table::new();
        let (i, _) = t.insert(v("a"), v("b"));
        t.attach_nc(i, NcId(7));
        assert_eq!(t.truth_of(&v("a"), &v("b")), Truth::Ambiguous);
        t.detach_nc(i, NcId(7));
        // dismantle-NC does not reset the flag (§4; see the `math john A {}`
        // state after u3 in the paper's trace).
        assert_eq!(t.truth_of(&v("a"), &v("b")), Truth::Ambiguous);
        assert!(t.row(i).unwrap().ncl.is_empty());
        t.set_truth(i, Truth::True);
        assert_eq!(t.truth_of(&v("a"), &v("b")), Truth::True);
    }

    #[test]
    fn value_indexes() {
        let mut t = Table::new();
        t.insert(v("math"), v("john"));
        t.insert(v("math"), v("bill"));
        t.insert(v("physics"), v("bill"));
        assert_eq!(t.rows_with_x(&v("math")).count(), 2);
        assert_eq!(t.rows_with_y(&v("bill")).count(), 2);
        t.remove(&v("math"), &v("bill"));
        assert_eq!(t.rows_with_x(&v("math")).count(), 1);
        assert_eq!(t.rows_with_y(&v("bill")).count(), 1);
    }

    #[test]
    fn null_indexes() {
        let mut t = Table::new();
        let n1 = Value::Null(NullId(1));
        t.insert(v("gauss"), n1.clone());
        t.insert(n1.clone(), v("bill"));
        assert_eq!(t.rows_with_null_x().count(), 1);
        assert_eq!(t.rows_with_null_y().count(), 1);
        t.remove(&n1, &v("bill"));
        assert_eq!(t.rows_with_null_x().count(), 0);
    }

    #[test]
    fn rows_iterate_in_insertion_order() {
        let mut t = Table::new();
        t.insert(v("1"), v("a"));
        t.insert(v("2"), v("b"));
        t.insert(v("3"), v("c"));
        t.remove(&v("2"), &v("b"));
        let xs: Vec<String> = t.rows().map(|r| r.x.to_string()).collect();
        assert_eq!(xs, vec!["1", "3"]);
    }

    #[test]
    fn compact_drops_tombstones_and_keeps_order() {
        let mut t = Table::new();
        t.insert(v("1"), v("a"));
        let (i2, _) = t.insert(v("2"), v("b"));
        t.insert(v("3"), v("c"));
        t.attach_nc(i2, NcId(4));
        t.remove(&v("1"), &v("a"));
        assert_eq!(t.tombstones(), 1);
        t.compact();
        assert_eq!(t.tombstones(), 0);
        assert_eq!(t.len(), 2);
        let xs: Vec<String> = t.rows().map(|r| r.x.to_string()).collect();
        assert_eq!(xs, vec!["2", "3"]);
        // Flags, NCLs and indexes survive compaction.
        let j = t.position(&v("2"), &v("b")).unwrap();
        assert_eq!(t.row(j).unwrap().truth, Truth::Ambiguous);
        assert!(t.row(j).unwrap().ncl.contains(&NcId(4)));
        assert_eq!(t.rows_with_x(&v("3")).count(), 1);
        // Compacting an already-compact table is a no-op.
        t.compact();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn stats_and_widths_reflect_live_rows_after_compaction() {
        let mut t = Table::new();
        let n1 = Value::Null(NullId(1));
        t.insert(v("math"), v("john"));
        t.insert(v("math"), v("bill"));
        t.insert(v("physics"), v("bill"));
        t.insert(n1.clone(), v("kim"));
        let s = t.stats();
        assert_eq!(s.rows, 4);
        assert_eq!(s.distinct_x, 3);
        assert_eq!(s.distinct_y, 3);
        assert_eq!(s.null_x, 1);
        assert_eq!(s.null_y, 0);
        assert_eq!(t.x_width(&v("math")), 2);
        assert_eq!(t.y_width(&v("bill")), 2);
        assert_eq!(t.x_width(&v("absent")), 0);
        // Widths are estimates until compaction removes dead entries.
        t.remove(&v("math"), &v("bill"));
        assert_eq!(t.x_width(&v("math")), 2);
        t.compact();
        assert_eq!(t.x_width(&v("math")), 1);
        assert_eq!(t.stats().rows, 3);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn single_valuedness_is_exact_over_live_rows() {
        let mut t = Table::new();
        assert_eq!(t.single_valuedness(), (true, true));
        t.insert(v("a"), v("x"));
        t.insert(v("b"), v("y"));
        assert_eq!(t.single_valuedness(), (true, true));
        // a second range value for `a` breaks functionality only.
        t.insert(v("a"), v("z"));
        assert_eq!(t.single_valuedness(), (false, true));
        // a second domain value for `y` breaks injectivity too.
        t.insert(v("c"), v("y"));
        assert_eq!(t.single_valuedness(), (false, false));
        // tombstoning the offenders restores both — stats() would still
        // see the dead index entries, single_valuedness must not.
        t.remove(&v("a"), &v("z"));
        t.remove(&v("c"), &v("y"));
        assert_eq!(t.single_valuedness(), (true, true));
    }

    #[test]
    fn rebuild_index_after_serde() {
        let mut t = Table::new();
        t.insert(v("a"), v("b"));
        t.insert(v("c"), v("d"));
        t.remove(&v("a"), &v("b"));
        let json = serde_json::to_string(&t).unwrap();
        let mut back: Table = serde_json::from_str(&json).unwrap();
        back.rebuild_index();
        assert!(back.contains(&v("c"), &v("d")));
        assert!(!back.contains(&v("a"), &v("b")));
        assert_eq!(back.len(), 1);
    }
}
