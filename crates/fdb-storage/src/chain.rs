//! Chains of base facts and the §3.2 truth semantics of derived facts.
//!
//! "A derived fact can be obtained by composing a chain of base facts if
//! adjacent pairs of facts in the chain match. […] A derived fact is true
//! if it is obtained from a chain of true base facts which matches
//! exactly. It is ambiguous if it can be obtained from a chain of base
//! facts which is not a superset of a NC and each chain of base facts
//! from which it can be obtained either does not match exactly or
//! contains at least one ambiguous fact. A derived fact is false if it is
//! neither true nor ambiguous."
//!
//! A chain for the derivation `f = u₁f₁ o … o u_k f_k` is a sequence of
//! rows, one from each step's table, oriented by the step's operator (an
//! inverse step reads its table right-to-left). Matching of adjacent
//! links — and of the chain's endpoints against the queried pair — uses
//! [`fdb_types::MatchKind`]: exact, ambiguous (through null values), or
//! none.
//!
//! `derived-delete` also lives here: it converts every *exactly* matching
//! chain that derives the deleted pair into an NC. (Chains that only
//! match ambiguously assert nothing exact about the pair; negating them
//! would falsify base facts the update does not speak about, which is
//! precisely the side-effect behaviour the paper rejects.)

use serde::{Deserialize, Serialize};

use fdb_governor::{Governance, Governor, Outcome, StopReason, Ungoverned};
use fdb_types::{Derivation, MatchKind, Op, Step, Value};

use crate::fact::Fact;
use crate::store::Store;
use crate::truth::Truth;

/// Caps on chain enumeration (ambiguous matching through nulls can fan
/// out combinatorially).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ChainLimits {
    /// Maximum number of chains collected per query.
    pub max_chains: usize,
}

impl Default for ChainLimits {
    fn default() -> Self {
        ChainLimits { max_chains: 10_000 }
    }
}

/// One chain of base facts deriving some pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Chain {
    /// The facts, in derivation-step order.
    pub facts: Vec<Fact>,
    /// Combined match quality of all links and both endpoints.
    pub matching: MatchKind,
    /// Three-valued conjunction of the member facts' truth flags.
    pub flags: Truth,
}

impl Chain {
    /// `true` if this chain proves its derived fact true: exact matching
    /// and all members true.
    pub fn proves_true(&self) -> bool {
        self.matching == MatchKind::Exact && self.flags == Truth::True
    }
}

/// A pair in the computed extension of a derived function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DerivedPair {
    /// Domain value.
    pub x: Value,
    /// Range value.
    pub y: Value,
    /// Truth of the derived fact `(x, y)`.
    pub truth: Truth,
}

/// How a derivation step reads its table.
#[derive(Clone, Copy, Debug)]
struct StepView {
    function: fdb_types::FunctionId,
    inverted: bool,
}

impl StepView {
    fn of(step: &Step) -> Self {
        StepView {
            function: step.function,
            inverted: step.op == Op::Inverse,
        }
    }

    /// The link's left value (the side matched against the incoming value).
    fn left<'v>(&self, x: &'v Value, y: &'v Value) -> &'v Value {
        if self.inverted {
            y
        } else {
            x
        }
    }

    /// The link's right value (carried to the next step).
    fn right<'v>(&self, x: &'v Value, y: &'v Value) -> &'v Value {
        if self.inverted {
            x
        } else {
            y
        }
    }
}

/// Enumerates chains of stored facts for `derivation` whose left endpoint
/// matches `x` and right endpoint matches `y`.
///
/// With `allow_ambiguous` every link (and endpoint) may match ambiguously
/// through nulls; otherwise only exact matches are followed — the mode
/// `derived-delete` uses.
pub fn chains_deriving(
    store: &Store,
    derivation: &Derivation,
    x: &Value,
    y: &Value,
    allow_ambiguous: bool,
    limits: ChainLimits,
) -> Vec<Chain> {
    chains_deriving_impl(
        store,
        derivation,
        x,
        y,
        allow_ambiguous,
        limits,
        &Ungoverned,
    )
    .value()
}

/// [`chains_deriving`] under a [`Governor`]: enumeration stops on
/// deadline/step/memory budget, cancellation, or the `max_chains` cap
/// (the cap is reported only when one more chain provably exists), and
/// the chains found so far come back as a sound prefix.
pub fn chains_deriving_governed(
    store: &Store,
    derivation: &Derivation,
    x: &Value,
    y: &Value,
    allow_ambiguous: bool,
    limits: ChainLimits,
    governor: &Governor,
) -> Outcome<Vec<Chain>> {
    chains_deriving_impl(store, derivation, x, y, allow_ambiguous, limits, governor)
}

fn chains_deriving_impl<G: Governance>(
    store: &Store,
    derivation: &Derivation,
    x: &Value,
    y: &Value,
    allow_ambiguous: bool,
    limits: ChainLimits,
    governor: &G,
) -> Outcome<Vec<Chain>> {
    let views: Vec<StepView> = derivation.steps().iter().map(StepView::of).collect();
    let mut out = Vec::new();
    let mut facts = Vec::with_capacity(views.len());
    let stop = search(
        store,
        &views,
        0,
        x,
        y,
        MatchKind::Exact,
        Truth::True,
        allow_ambiguous,
        limits,
        governor,
        &mut facts,
        &mut out,
    )
    .err();
    Outcome::new(out, stop)
}

#[allow(clippy::too_many_arguments)]
fn search<G: Governance>(
    store: &Store,
    views: &[StepView],
    depth: usize,
    incoming: &Value,
    goal_y: &Value,
    matching: MatchKind,
    flags: Truth,
    allow_ambiguous: bool,
    limits: ChainLimits,
    governor: &G,
    facts: &mut Vec<Fact>,
    out: &mut Vec<Chain>,
) -> Result<(), StopReason> {
    let view = views[depth];
    let table = store.table(view.function);
    // Candidate rows whose left side matches `incoming`.
    let mut candidates: Vec<usize> = if view.inverted {
        table.rows_with_y(incoming).collect()
    } else {
        table.rows_with_x(incoming).collect()
    };
    if allow_ambiguous {
        if incoming.is_null() {
            // A null matches everything at least ambiguously.
            candidates = table.live_indices().collect();
        } else if view.inverted {
            candidates.extend(table.rows_with_null_y());
        } else {
            candidates.extend(table.rows_with_null_x());
        }
    }
    for i in candidates {
        governor.tick()?;
        let Some(row) = table.row(i) else { continue };
        let left = view.left(row.x, row.y);
        let right = view.right(row.x, row.y);
        let link = incoming.matches(left);
        if link == MatchKind::None {
            continue;
        }
        let m = matching.and(link);
        if !allow_ambiguous && m != MatchKind::Exact {
            continue;
        }
        let fl = flags.and(row.truth);
        facts.push(Fact {
            function: view.function,
            x: row.x.clone(),
            y: row.y.clone(),
        });
        let res = if depth + 1 == views.len() {
            let endpoint = right.matches(goal_y);
            let m_final = m.and(endpoint);
            if m_final != MatchKind::None && (allow_ambiguous || m_final == MatchKind::Exact) {
                if out.len() >= limits.max_chains {
                    // Exact cap detection: one more chain provably exists.
                    Err(StopReason::Cap)
                } else {
                    governor.charge(1).map(|()| {
                        out.push(Chain {
                            facts: facts.clone(),
                            matching: m_final,
                            flags: fl,
                        });
                    })
                }
            } else {
                Ok(())
            }
        } else {
            search(
                store,
                views,
                depth + 1,
                right,
                goal_y,
                m,
                fl,
                allow_ambiguous,
                limits,
                governor,
                facts,
                out,
            )
        };
        facts.pop();
        res?;
    }
    Ok(())
}

/// §3.2 truth of the derived fact `(x, y)` under a set of derivations
/// (cyclic function graphs can give a derived function several
/// derivations; evidence is combined with three-valued OR).
pub fn derived_truth(
    store: &Store,
    derivations: &[Derivation],
    x: &Value,
    y: &Value,
    limits: ChainLimits,
) -> Truth {
    derived_truth_impl(store, derivations, x, y, limits, &Ungoverned).value()
}

/// [`derived_truth`] under a [`Governor`]. A stopped evaluation reports
/// the truth established so far, which is a sound *lower bound* in the
/// `False < Ambiguous < True` order (more chains can only raise it); a
/// proof of `True` is final, so that answer is always `Complete`.
pub fn derived_truth_governed(
    store: &Store,
    derivations: &[Derivation],
    x: &Value,
    y: &Value,
    limits: ChainLimits,
    governor: &Governor,
) -> Outcome<Truth> {
    derived_truth_impl(store, derivations, x, y, limits, governor)
}

pub(crate) fn derived_truth_impl<G: Governance>(
    store: &Store,
    derivations: &[Derivation],
    x: &Value,
    y: &Value,
    limits: ChainLimits,
    governor: &G,
) -> Outcome<Truth> {
    let mut best = Truth::False;
    let mut stop: Option<StopReason> = None;
    for derivation in derivations {
        let outcome = chains_deriving_impl(store, derivation, x, y, true, limits, governor);
        let reason = outcome.reason();
        for chain in outcome.value() {
            if chain.proves_true() {
                // Top of the truth lattice: no further chain can change
                // the answer, so it is complete even after a stop.
                return Outcome::Complete(Truth::True);
            }
            if !store.ncs().chain_covers_some_nc(&chain.facts) {
                best = Truth::Ambiguous;
            }
        }
        if let Some(r) = reason {
            stop = Some(r);
            break;
        }
    }
    Outcome::new(best, stop)
}

/// Computes the visible extension of a derived function: every pair of
/// *non-null* endpoint values derivable through some chain, with its
/// §3.2 truth value. Pairs whose truth is [`Truth::False`] (all their
/// chains are negated) are omitted — they are not in the extension.
///
/// The result is sorted by (x, y) for deterministic display.
pub fn derived_extension(
    store: &Store,
    derivations: &[Derivation],
    limits: ChainLimits,
) -> Vec<DerivedPair> {
    derived_extension_impl(store, derivations, limits, &Ungoverned).value()
}

/// [`derived_extension`] under a [`Governor`]. A stopped computation
/// reports the pairs whose membership was established before the stop —
/// a sound subset of the full extension (every reported pair really is
/// in it; each reported truth is a lower bound).
pub fn derived_extension_governed(
    store: &Store,
    derivations: &[Derivation],
    limits: ChainLimits,
    governor: &Governor,
) -> Outcome<Vec<DerivedPair>> {
    derived_extension_impl(store, derivations, limits, governor)
}

pub(crate) fn derived_extension_impl<G: Governance>(
    store: &Store,
    derivations: &[Derivation],
    limits: ChainLimits,
    governor: &G,
) -> Outcome<Vec<DerivedPair>> {
    let mut stop: Option<StopReason> = None;
    let mut pairs: Vec<(Value, Value)> = Vec::new();
    for derivation in derivations {
        let outcome = all_chains(store, derivation, limits, governor);
        let reason = outcome.reason();
        for chain in outcome.value() {
            let first = &chain.facts[0];
            let last = &chain.facts[chain.facts.len() - 1];
            let sv_first = StepView::of(&derivation.steps()[0]);
            let sv_last = StepView::of(&derivation.steps()[derivation.len() - 1]);
            let x = sv_first.left(&first.x, &first.y).clone();
            let y = sv_last.right(&last.x, &last.y).clone();
            if !x.is_null() && !y.is_null() {
                pairs.push((x, y));
            }
        }
        if let Some(r) = reason {
            stop = Some(r);
            break;
        }
    }
    pairs.sort();
    pairs.dedup();
    let mut out = Vec::new();
    for (x, y) in pairs {
        if stop.is_some() && !matches!(stop, Some(StopReason::Cap)) {
            // Hard stop: don't start further truth evaluations (each one
            // would just re-trip the same exhausted governor).
            break;
        }
        let truth_outcome = derived_truth_impl(store, derivations, &x, &y, limits, governor);
        stop = stop.or(truth_outcome.reason());
        let truth = truth_outcome.value();
        if truth != Truth::False {
            out.push(DerivedPair { x, y, truth });
        }
    }
    Outcome::new(out, stop)
}

/// Enumerates every chain of the derivation regardless of endpoints
/// (links matching at least ambiguously).
fn all_chains<G: Governance>(
    store: &Store,
    derivation: &Derivation,
    limits: ChainLimits,
    governor: &G,
) -> Outcome<Vec<Chain>> {
    let views: Vec<StepView> = derivation.steps().iter().map(StepView::of).collect();
    let first = views[0];
    let table = store.table(first.function);
    let mut out = Vec::new();
    let mut facts = Vec::with_capacity(views.len());
    let mut stop: Option<StopReason> = None;
    // live_indices() borrows the table only immutably, so iterate it
    // directly instead of collecting it into a fresh Vec per call.
    for i in table.live_indices() {
        if let Err(r) = governor.tick() {
            stop = Some(r);
            break;
        }
        let Some(row) = table.row(i) else { continue };
        let right = first.right(row.x, row.y);
        facts.push(Fact {
            function: first.function,
            x: row.x.clone(),
            y: row.y.clone(),
        });
        let res = if views.len() == 1 {
            push_chain(
                Chain {
                    facts: facts.clone(),
                    matching: MatchKind::Exact,
                    flags: row.truth,
                },
                limits,
                governor,
                &mut out,
            )
        } else {
            search_open(
                store,
                &views,
                1,
                right,
                MatchKind::Exact,
                row.truth,
                limits,
                governor,
                &mut facts,
                &mut out,
            )
        };
        facts.pop();
        if let Err(r) = res {
            stop = Some(r);
            break;
        }
    }
    Outcome::new(out, stop)
}

/// Appends a completed chain, enforcing the cap (exact detection) and
/// the governor's memory budget.
fn push_chain<G: Governance>(
    chain: Chain,
    limits: ChainLimits,
    governor: &G,
    out: &mut Vec<Chain>,
) -> Result<(), StopReason> {
    if out.len() >= limits.max_chains {
        return Err(StopReason::Cap);
    }
    governor.charge(1)?;
    out.push(chain);
    Ok(())
}

/// Like [`search`], but with no goal endpoint: collects all full-length
/// chains (used for extension computation).
#[allow(clippy::too_many_arguments)]
fn search_open<G: Governance>(
    store: &Store,
    views: &[StepView],
    depth: usize,
    incoming: &Value,
    matching: MatchKind,
    flags: Truth,
    limits: ChainLimits,
    governor: &G,
    facts: &mut Vec<Fact>,
    out: &mut Vec<Chain>,
) -> Result<(), StopReason> {
    let view = views[depth];
    let table = store.table(view.function);
    let mut candidates: Vec<usize> = if view.inverted {
        table.rows_with_y(incoming).collect()
    } else {
        table.rows_with_x(incoming).collect()
    };
    if incoming.is_null() {
        candidates = table.live_indices().collect();
    } else if view.inverted {
        candidates.extend(table.rows_with_null_y());
    } else {
        candidates.extend(table.rows_with_null_x());
    }
    for i in candidates {
        governor.tick()?;
        let Some(row) = table.row(i) else { continue };
        let left = view.left(row.x, row.y);
        let link = incoming.matches(left);
        if link == MatchKind::None {
            continue;
        }
        let m = matching.and(link);
        let fl = flags.and(row.truth);
        let right = view.right(row.x, row.y);
        facts.push(Fact {
            function: view.function,
            x: row.x.clone(),
            y: row.y.clone(),
        });
        let res = if depth + 1 == views.len() {
            push_chain(
                Chain {
                    facts: facts.clone(),
                    matching: m,
                    flags: fl,
                },
                limits,
                governor,
                out,
            )
        } else {
            search_open(
                store,
                views,
                depth + 1,
                right,
                m,
                fl,
                limits,
                governor,
                facts,
                out,
            )
        };
        facts.pop();
        res?;
    }
    Ok(())
}

/// Which chains a derived delete negates — an ablation knob.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeletePolicy {
    /// The paper's procedure: negate every *exactly* matching chain.
    /// Chains that only match ambiguously (through mismatched nulls)
    /// assert nothing exact about the deleted pair, and negating them
    /// would falsify facts the update does not speak about — so they are
    /// left alone, and the deleted fact may remain *ambiguous* when such
    /// chains exist.
    #[default]
    Faithful,
    /// Additionally negate ambiguously matching chains, guaranteeing the
    /// deleted fact evaluates to `False` afterwards — at the cost of
    /// asserting more than the update logically implies. Provided for the
    /// ablation benchmark; not the paper's semantics.
    Strict,
}

/// §4.1 `derived-delete(f, x, y)`: "for each path p of (f, x, y) do
/// create-NC(p)" — every exactly matching chain becomes a negated
/// conjunction (see [`DeletePolicy`] for the ambiguous-chain knob).
/// Returns the ids of the NCs created.
pub fn derived_delete(
    store: &mut Store,
    derivations: &[Derivation],
    x: &Value,
    y: &Value,
    limits: ChainLimits,
) -> Vec<crate::nc::NcId> {
    derived_delete_with_policy(store, derivations, x, y, DeletePolicy::Faithful, limits)
}

/// [`derived_delete`] with an explicit [`DeletePolicy`].
pub fn derived_delete_with_policy(
    store: &mut Store,
    derivations: &[Derivation],
    x: &Value,
    y: &Value,
    policy: DeletePolicy,
    limits: ChainLimits,
) -> Vec<crate::nc::NcId> {
    // Historic behaviour: a capped enumeration silently negates the
    // chains found so far (the governed variant is all-or-nothing).
    let (chains, _) = collect_delete_chains(store, derivations, x, y, policy, limits, &Ungoverned);
    chains
        .into_iter()
        .map(|facts| store.create_nc(facts))
        .collect()
}

/// [`derived_delete_with_policy`] under a [`Governor`] —
/// **all-or-nothing**: a delete that negated only *some* matching chains
/// would leave the deleted fact still derivable, so if the governor (or
/// the chain cap) stops enumeration the store is left untouched and the
/// stop reason is returned.
pub fn derived_delete_governed(
    store: &mut Store,
    derivations: &[Derivation],
    x: &Value,
    y: &Value,
    policy: DeletePolicy,
    limits: ChainLimits,
    governor: &Governor,
) -> Result<Vec<crate::nc::NcId>, StopReason> {
    let (chains, stop) = collect_delete_chains(store, derivations, x, y, policy, limits, governor);
    if let Some(r) = stop {
        return Err(r);
    }
    Ok(chains
        .into_iter()
        .map(|facts| store.create_nc(facts))
        .collect())
}

fn collect_delete_chains<G: Governance>(
    store: &Store,
    derivations: &[Derivation],
    x: &Value,
    y: &Value,
    policy: DeletePolicy,
    limits: ChainLimits,
    governor: &G,
) -> (Vec<Vec<Fact>>, Option<StopReason>) {
    let allow_ambiguous = policy == DeletePolicy::Strict;
    let mut chains: Vec<Vec<Fact>> = Vec::new();
    let mut stop = None;
    for derivation in derivations {
        let outcome =
            chains_deriving_impl(store, derivation, x, y, allow_ambiguous, limits, governor);
        stop = stop.or(outcome.reason());
        for chain in outcome.value() {
            if !chains.contains(&chain.facts) {
                chains.push(chain.facts);
            }
        }
    }
    (chains, stop)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_types::{FunctionId, Step};

    const TEACH: FunctionId = FunctionId(0);
    const CLASS_LIST: FunctionId = FunctionId(1);

    fn pupil_derivation() -> Derivation {
        Derivation::new(vec![Step::identity(TEACH), Step::identity(CLASS_LIST)]).unwrap()
    }

    fn v(s: &str) -> Value {
        Value::atom(s)
    }

    /// The §3 instance: teach = {euclid→math, laplace→math, laplace→physics},
    /// class_list = {math→john, math→bill}.
    fn paper_instance() -> Store {
        let mut s = Store::new(2);
        s.base_insert(TEACH, v("euclid"), v("math"));
        s.base_insert(TEACH, v("laplace"), v("math"));
        s.base_insert(TEACH, v("laplace"), v("physics"));
        s.base_insert(CLASS_LIST, v("math"), v("john"));
        s.base_insert(CLASS_LIST, v("math"), v("bill"));
        s
    }

    #[test]
    fn exact_chain_of_true_facts_is_true() {
        let s = paper_instance();
        let d = [pupil_derivation()];
        assert_eq!(
            derived_truth(&s, &d, &v("euclid"), &v("john"), ChainLimits::default()),
            Truth::True
        );
        assert_eq!(
            derived_truth(&s, &d, &v("laplace"), &v("bill"), ChainLimits::default()),
            Truth::False.or(Truth::True)
        );
    }

    #[test]
    fn absent_pair_is_false() {
        let s = paper_instance();
        let d = [pupil_derivation()];
        assert_eq!(
            derived_truth(&s, &d, &v("gauss"), &v("john"), ChainLimits::default()),
            Truth::False
        );
        assert_eq!(
            derived_truth(&s, &d, &v("euclid"), &v("nobody"), ChainLimits::default()),
            Truth::False
        );
    }

    #[test]
    fn derived_delete_negates_the_single_chain() {
        // u1 of the §4.2 trace: DEL(pupil, <euclid, john>).
        let mut s = paper_instance();
        let d = [pupil_derivation()];
        let ncs = derived_delete(&mut s, &d, &v("euclid"), &v("john"), ChainLimits::default());
        assert_eq!(ncs.len(), 1);
        let conj = s.ncs().get(ncs[0]).unwrap();
        assert_eq!(conj.len(), 2);
        // The deleted pair is now false…
        assert_eq!(
            derived_truth(&s, &d, &v("euclid"), &v("john"), ChainLimits::default()),
            Truth::False
        );
        // …its chain-mates became ambiguous (no side-effect deletion)…
        assert_eq!(
            derived_truth(&s, &d, &v("euclid"), &v("bill"), ChainLimits::default()),
            Truth::Ambiguous
        );
        assert_eq!(
            derived_truth(&s, &d, &v("laplace"), &v("john"), ChainLimits::default()),
            Truth::Ambiguous
        );
        // …and the untouched pair stays true.
        assert_eq!(
            derived_truth(&s, &d, &v("laplace"), &v("bill"), ChainLimits::default()),
            Truth::True
        );
    }

    #[test]
    fn extension_reproduces_pupil_after_u1() {
        let mut s = paper_instance();
        let d = [pupil_derivation()];
        derived_delete(&mut s, &d, &v("euclid"), &v("john"), ChainLimits::default());
        let ext = derived_extension(&s, &d, ChainLimits::default());
        let rendered: Vec<String> = ext
            .iter()
            .map(|p| format!("{} {} {}", p.x, p.y, p.truth.flag()))
            .collect();
        assert_eq!(
            rendered,
            vec!["euclid bill A", "laplace bill T", "laplace john A",]
        );
    }

    #[test]
    fn null_links_match_exactly_only_with_same_index() {
        // NVC-style chain through n1 is exact; through mismatched nulls is
        // ambiguous.
        let mut s = Store::new(2);
        let n1 = s.fresh_null();
        let n2 = s.fresh_null();
        s.base_insert(TEACH, v("gauss"), n1.clone());
        s.base_insert(CLASS_LIST, n1.clone(), v("bill"));
        s.base_insert(CLASS_LIST, n2.clone(), v("john"));
        let d = [pupil_derivation()];
        assert_eq!(
            derived_truth(&s, &d, &v("gauss"), &v("bill"), ChainLimits::default()),
            Truth::True
        );
        assert_eq!(
            derived_truth(&s, &d, &v("gauss"), &v("john"), ChainLimits::default()),
            Truth::Ambiguous
        );
    }

    #[test]
    fn inverse_steps_read_tables_backwards() {
        // taught_by = teach⁻¹.
        let mut s = Store::new(1);
        s.base_insert(TEACH, v("euclid"), v("math"));
        let d = [Derivation::single(Step::inverse(TEACH))];
        assert_eq!(
            derived_truth(&s, &d, &v("math"), &v("euclid"), ChainLimits::default()),
            Truth::True
        );
        assert_eq!(
            derived_truth(&s, &d, &v("euclid"), &v("math"), ChainLimits::default()),
            Truth::False
        );
        let ext = derived_extension(&s, &d, ChainLimits::default());
        assert_eq!(ext.len(), 1);
        assert_eq!(ext[0].x, v("math"));
        assert_eq!(ext[0].y, v("euclid"));
    }

    #[test]
    fn ambiguous_fact_makes_chain_ambiguous_even_if_exact() {
        let mut s = paper_instance();
        let d = [pupil_derivation()];
        // NC over a different derived fact's chain shares <teach,euclid,math>.
        derived_delete(&mut s, &d, &v("euclid"), &v("john"), ChainLimits::default());
        // euclid-bill's chain matches exactly but contains the ambiguous
        // <teach,euclid,math>: not true, not NC-covered → ambiguous.
        let chains = chains_deriving(
            &s,
            &pupil_derivation(),
            &v("euclid"),
            &v("bill"),
            true,
            ChainLimits::default(),
        );
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].matching, MatchKind::Exact);
        assert_eq!(chains[0].flags, Truth::Ambiguous);
    }

    #[test]
    fn chain_limit_caps_enumeration() {
        let mut s = Store::new(2);
        for i in 0..20 {
            s.base_insert(TEACH, v("x"), v(&format!("m{i}")));
            s.base_insert(CLASS_LIST, v(&format!("m{i}")), v("y"));
        }
        let chains = chains_deriving(
            &s,
            &pupil_derivation(),
            &v("x"),
            &v("y"),
            true,
            ChainLimits { max_chains: 5 },
        );
        assert_eq!(chains.len(), 5);
    }

    #[test]
    fn multiple_derivations_combine_with_or() {
        // Derivation A yields ambiguous evidence, derivation B yields true:
        // the fact is true.
        let mut s = Store::new(3);
        let other = FunctionId(2);
        let n1 = s.fresh_null();
        s.base_insert(TEACH, v("gauss"), n1.clone());
        s.base_insert(CLASS_LIST, v("math"), v("john")); // mismatched link → ambiguous
        s.base_insert(other, v("gauss"), v("john"));
        let d = [
            pupil_derivation(),
            Derivation::single(Step::identity(other)),
        ];
        assert_eq!(
            derived_truth(&s, &d, &v("gauss"), &v("john"), ChainLimits::default()),
            Truth::True
        );
    }
}
