//! Chains of base facts and the §3.2 truth semantics of derived facts.
//!
//! "A derived fact can be obtained by composing a chain of base facts if
//! adjacent pairs of facts in the chain match. […] A derived fact is true
//! if it is obtained from a chain of true base facts which matches
//! exactly. It is ambiguous if it can be obtained from a chain of base
//! facts which is not a superset of a NC and each chain of base facts
//! from which it can be obtained either does not match exactly or
//! contains at least one ambiguous fact. A derived fact is false if it is
//! neither true nor ambiguous."
//!
//! A chain for the derivation `f = u₁f₁ o … o u_k f_k` is a sequence of
//! rows, one from each step's table, oriented by the step's operator (an
//! inverse step reads its table right-to-left). Matching of adjacent
//! links — and of the chain's endpoints against the queried pair — uses
//! [`fdb_types::MatchKind`]: exact, ambiguous (through null values), or
//! none.
//!
//! `derived-delete` also lives here: it converts every *exactly* matching
//! chain that derives the deleted pair into an NC. (Chains that only
//! match ambiguously assert nothing exact about the pair; negating them
//! would falsify base facts the update does not speak about, which is
//! precisely the side-effect behaviour the paper rejects.)

use serde::{Deserialize, Serialize};

use fdb_types::{Derivation, MatchKind, Op, Step, Value};

use crate::fact::Fact;
use crate::store::Store;
use crate::truth::Truth;

/// Caps on chain enumeration (ambiguous matching through nulls can fan
/// out combinatorially).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ChainLimits {
    /// Maximum number of chains collected per query.
    pub max_chains: usize,
}

impl Default for ChainLimits {
    fn default() -> Self {
        ChainLimits { max_chains: 10_000 }
    }
}

/// One chain of base facts deriving some pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Chain {
    /// The facts, in derivation-step order.
    pub facts: Vec<Fact>,
    /// Combined match quality of all links and both endpoints.
    pub matching: MatchKind,
    /// Three-valued conjunction of the member facts' truth flags.
    pub flags: Truth,
}

impl Chain {
    /// `true` if this chain proves its derived fact true: exact matching
    /// and all members true.
    pub fn proves_true(&self) -> bool {
        self.matching == MatchKind::Exact && self.flags == Truth::True
    }
}

/// A pair in the computed extension of a derived function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DerivedPair {
    /// Domain value.
    pub x: Value,
    /// Range value.
    pub y: Value,
    /// Truth of the derived fact `(x, y)`.
    pub truth: Truth,
}

/// How a derivation step reads its table.
#[derive(Clone, Copy, Debug)]
struct StepView {
    function: fdb_types::FunctionId,
    inverted: bool,
}

impl StepView {
    fn of(step: &Step) -> Self {
        StepView {
            function: step.function,
            inverted: step.op == Op::Inverse,
        }
    }

    /// The link's left value (the side matched against the incoming value).
    fn left<'v>(&self, x: &'v Value, y: &'v Value) -> &'v Value {
        if self.inverted {
            y
        } else {
            x
        }
    }

    /// The link's right value (carried to the next step).
    fn right<'v>(&self, x: &'v Value, y: &'v Value) -> &'v Value {
        if self.inverted {
            x
        } else {
            y
        }
    }
}

/// Enumerates chains of stored facts for `derivation` whose left endpoint
/// matches `x` and right endpoint matches `y`.
///
/// With `allow_ambiguous` every link (and endpoint) may match ambiguously
/// through nulls; otherwise only exact matches are followed — the mode
/// `derived-delete` uses.
pub fn chains_deriving(
    store: &Store,
    derivation: &Derivation,
    x: &Value,
    y: &Value,
    allow_ambiguous: bool,
    limits: ChainLimits,
) -> Vec<Chain> {
    let views: Vec<StepView> = derivation.steps().iter().map(StepView::of).collect();
    let mut out = Vec::new();
    let mut facts = Vec::with_capacity(views.len());
    search(
        store,
        &views,
        0,
        x,
        y,
        MatchKind::Exact,
        Truth::True,
        allow_ambiguous,
        limits,
        &mut facts,
        &mut out,
    );
    out
}

#[allow(clippy::too_many_arguments)]
fn search(
    store: &Store,
    views: &[StepView],
    depth: usize,
    incoming: &Value,
    goal_y: &Value,
    matching: MatchKind,
    flags: Truth,
    allow_ambiguous: bool,
    limits: ChainLimits,
    facts: &mut Vec<Fact>,
    out: &mut Vec<Chain>,
) {
    if out.len() >= limits.max_chains {
        return;
    }
    let view = views[depth];
    let table = store.table(view.function);
    // Candidate rows whose left side matches `incoming`.
    let mut candidates: Vec<usize> = if view.inverted {
        table.rows_with_y(incoming).collect()
    } else {
        table.rows_with_x(incoming).collect()
    };
    if allow_ambiguous {
        if incoming.is_null() {
            // A null matches everything at least ambiguously.
            candidates = table.live_indices().collect();
        } else if view.inverted {
            candidates.extend(table.rows_with_null_y());
        } else {
            candidates.extend(table.rows_with_null_x());
        }
    }
    for i in candidates {
        if out.len() >= limits.max_chains {
            return;
        }
        let Some(row) = table.row(i) else { continue };
        let left = view.left(row.x, row.y);
        let right = view.right(row.x, row.y).clone();
        let link = incoming.matches(left);
        if link == MatchKind::None {
            continue;
        }
        let m = matching.and(link);
        if !allow_ambiguous && m != MatchKind::Exact {
            continue;
        }
        let fl = flags.and(row.truth);
        facts.push(Fact {
            function: view.function,
            x: row.x.clone(),
            y: row.y.clone(),
        });
        if depth + 1 == views.len() {
            let endpoint = right.matches(goal_y);
            let m_final = m.and(endpoint);
            if m_final != MatchKind::None && (allow_ambiguous || m_final == MatchKind::Exact) {
                out.push(Chain {
                    facts: facts.clone(),
                    matching: m_final,
                    flags: fl,
                });
            }
        } else {
            search(
                store,
                views,
                depth + 1,
                &right,
                goal_y,
                m,
                fl,
                allow_ambiguous,
                limits,
                facts,
                out,
            );
        }
        facts.pop();
    }
}

/// §3.2 truth of the derived fact `(x, y)` under a set of derivations
/// (cyclic function graphs can give a derived function several
/// derivations; evidence is combined with three-valued OR).
pub fn derived_truth(
    store: &Store,
    derivations: &[Derivation],
    x: &Value,
    y: &Value,
    limits: ChainLimits,
) -> Truth {
    let mut best = Truth::False;
    for derivation in derivations {
        for chain in chains_deriving(store, derivation, x, y, true, limits) {
            if chain.proves_true() {
                return Truth::True;
            }
            if !store.ncs().chain_covers_some_nc(&chain.facts) {
                best = Truth::Ambiguous;
            }
        }
    }
    best
}

/// Computes the visible extension of a derived function: every pair of
/// *non-null* endpoint values derivable through some chain, with its
/// §3.2 truth value. Pairs whose truth is [`Truth::False`] (all their
/// chains are negated) are omitted — they are not in the extension.
///
/// The result is sorted by (x, y) for deterministic display.
pub fn derived_extension(
    store: &Store,
    derivations: &[Derivation],
    limits: ChainLimits,
) -> Vec<DerivedPair> {
    let mut pairs: Vec<(Value, Value)> = Vec::new();
    for derivation in derivations {
        for chain in all_chains(store, derivation, limits) {
            let first = &chain.facts[0];
            let last = &chain.facts[chain.facts.len() - 1];
            let sv_first = StepView::of(&derivation.steps()[0]);
            let sv_last = StepView::of(&derivation.steps()[derivation.len() - 1]);
            let x = sv_first.left(&first.x, &first.y).clone();
            let y = sv_last.right(&last.x, &last.y).clone();
            if !x.is_null() && !y.is_null() {
                pairs.push((x, y));
            }
        }
    }
    pairs.sort();
    pairs.dedup();
    pairs
        .into_iter()
        .filter_map(|(x, y)| {
            let truth = derived_truth(store, derivations, &x, &y, limits);
            (truth != Truth::False).then_some(DerivedPair { x, y, truth })
        })
        .collect()
}

/// Enumerates every chain of the derivation regardless of endpoints
/// (links matching at least ambiguously).
fn all_chains(store: &Store, derivation: &Derivation, limits: ChainLimits) -> Vec<Chain> {
    let views: Vec<StepView> = derivation.steps().iter().map(StepView::of).collect();
    let first = views[0];
    let table = store.table(first.function);
    let mut out = Vec::new();
    let mut facts = Vec::with_capacity(views.len());
    for i in table.live_indices().collect::<Vec<_>>() {
        if out.len() >= limits.max_chains {
            break;
        }
        let Some(row) = table.row(i) else { continue };
        let right = first.right(row.x, row.y).clone();
        facts.push(Fact {
            function: first.function,
            x: row.x.clone(),
            y: row.y.clone(),
        });
        if views.len() == 1 {
            out.push(Chain {
                facts: facts.clone(),
                matching: MatchKind::Exact,
                flags: row.truth,
            });
        } else {
            search_open(
                store,
                &views,
                1,
                &right,
                MatchKind::Exact,
                row.truth,
                limits,
                &mut facts,
                &mut out,
            );
        }
        facts.pop();
    }
    out
}

/// Like [`search`], but with no goal endpoint: collects all full-length
/// chains (used for extension computation).
#[allow(clippy::too_many_arguments)]
fn search_open(
    store: &Store,
    views: &[StepView],
    depth: usize,
    incoming: &Value,
    matching: MatchKind,
    flags: Truth,
    limits: ChainLimits,
    facts: &mut Vec<Fact>,
    out: &mut Vec<Chain>,
) {
    if out.len() >= limits.max_chains {
        return;
    }
    let view = views[depth];
    let table = store.table(view.function);
    let mut candidates: Vec<usize> = if view.inverted {
        table.rows_with_y(incoming).collect()
    } else {
        table.rows_with_x(incoming).collect()
    };
    if incoming.is_null() {
        candidates = table.live_indices().collect();
    } else if view.inverted {
        candidates.extend(table.rows_with_null_y());
    } else {
        candidates.extend(table.rows_with_null_x());
    }
    for i in candidates {
        if out.len() >= limits.max_chains {
            return;
        }
        let Some(row) = table.row(i) else { continue };
        let left = view.left(row.x, row.y);
        let link = incoming.matches(left);
        if link == MatchKind::None {
            continue;
        }
        let m = matching.and(link);
        let fl = flags.and(row.truth);
        let right = view.right(row.x, row.y).clone();
        facts.push(Fact {
            function: view.function,
            x: row.x.clone(),
            y: row.y.clone(),
        });
        if depth + 1 == views.len() {
            out.push(Chain {
                facts: facts.clone(),
                matching: m,
                flags: fl,
            });
        } else {
            search_open(store, views, depth + 1, &right, m, fl, limits, facts, out);
        }
        facts.pop();
    }
}

/// Which chains a derived delete negates — an ablation knob.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeletePolicy {
    /// The paper's procedure: negate every *exactly* matching chain.
    /// Chains that only match ambiguously (through mismatched nulls)
    /// assert nothing exact about the deleted pair, and negating them
    /// would falsify facts the update does not speak about — so they are
    /// left alone, and the deleted fact may remain *ambiguous* when such
    /// chains exist.
    #[default]
    Faithful,
    /// Additionally negate ambiguously matching chains, guaranteeing the
    /// deleted fact evaluates to `False` afterwards — at the cost of
    /// asserting more than the update logically implies. Provided for the
    /// ablation benchmark; not the paper's semantics.
    Strict,
}

/// §4.1 `derived-delete(f, x, y)`: "for each path p of (f, x, y) do
/// create-NC(p)" — every exactly matching chain becomes a negated
/// conjunction (see [`DeletePolicy`] for the ambiguous-chain knob).
/// Returns the ids of the NCs created.
pub fn derived_delete(
    store: &mut Store,
    derivations: &[Derivation],
    x: &Value,
    y: &Value,
    limits: ChainLimits,
) -> Vec<crate::nc::NcId> {
    derived_delete_with_policy(store, derivations, x, y, DeletePolicy::Faithful, limits)
}

/// [`derived_delete`] with an explicit [`DeletePolicy`].
pub fn derived_delete_with_policy(
    store: &mut Store,
    derivations: &[Derivation],
    x: &Value,
    y: &Value,
    policy: DeletePolicy,
    limits: ChainLimits,
) -> Vec<crate::nc::NcId> {
    let allow_ambiguous = policy == DeletePolicy::Strict;
    let mut chains: Vec<Vec<Fact>> = Vec::new();
    for derivation in derivations {
        for chain in chains_deriving(store, derivation, x, y, allow_ambiguous, limits) {
            if !chains.contains(&chain.facts) {
                chains.push(chain.facts);
            }
        }
    }
    chains
        .into_iter()
        .map(|facts| store.create_nc(facts))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_types::{FunctionId, Step};

    const TEACH: FunctionId = FunctionId(0);
    const CLASS_LIST: FunctionId = FunctionId(1);

    fn pupil_derivation() -> Derivation {
        Derivation::new(vec![Step::identity(TEACH), Step::identity(CLASS_LIST)]).unwrap()
    }

    fn v(s: &str) -> Value {
        Value::atom(s)
    }

    /// The §3 instance: teach = {euclid→math, laplace→math, laplace→physics},
    /// class_list = {math→john, math→bill}.
    fn paper_instance() -> Store {
        let mut s = Store::new(2);
        s.base_insert(TEACH, v("euclid"), v("math"));
        s.base_insert(TEACH, v("laplace"), v("math"));
        s.base_insert(TEACH, v("laplace"), v("physics"));
        s.base_insert(CLASS_LIST, v("math"), v("john"));
        s.base_insert(CLASS_LIST, v("math"), v("bill"));
        s
    }

    #[test]
    fn exact_chain_of_true_facts_is_true() {
        let s = paper_instance();
        let d = [pupil_derivation()];
        assert_eq!(
            derived_truth(&s, &d, &v("euclid"), &v("john"), ChainLimits::default()),
            Truth::True
        );
        assert_eq!(
            derived_truth(&s, &d, &v("laplace"), &v("bill"), ChainLimits::default()),
            Truth::False.or(Truth::True)
        );
    }

    #[test]
    fn absent_pair_is_false() {
        let s = paper_instance();
        let d = [pupil_derivation()];
        assert_eq!(
            derived_truth(&s, &d, &v("gauss"), &v("john"), ChainLimits::default()),
            Truth::False
        );
        assert_eq!(
            derived_truth(&s, &d, &v("euclid"), &v("nobody"), ChainLimits::default()),
            Truth::False
        );
    }

    #[test]
    fn derived_delete_negates_the_single_chain() {
        // u1 of the §4.2 trace: DEL(pupil, <euclid, john>).
        let mut s = paper_instance();
        let d = [pupil_derivation()];
        let ncs = derived_delete(&mut s, &d, &v("euclid"), &v("john"), ChainLimits::default());
        assert_eq!(ncs.len(), 1);
        let conj = s.ncs().get(ncs[0]).unwrap();
        assert_eq!(conj.len(), 2);
        // The deleted pair is now false…
        assert_eq!(
            derived_truth(&s, &d, &v("euclid"), &v("john"), ChainLimits::default()),
            Truth::False
        );
        // …its chain-mates became ambiguous (no side-effect deletion)…
        assert_eq!(
            derived_truth(&s, &d, &v("euclid"), &v("bill"), ChainLimits::default()),
            Truth::Ambiguous
        );
        assert_eq!(
            derived_truth(&s, &d, &v("laplace"), &v("john"), ChainLimits::default()),
            Truth::Ambiguous
        );
        // …and the untouched pair stays true.
        assert_eq!(
            derived_truth(&s, &d, &v("laplace"), &v("bill"), ChainLimits::default()),
            Truth::True
        );
    }

    #[test]
    fn extension_reproduces_pupil_after_u1() {
        let mut s = paper_instance();
        let d = [pupil_derivation()];
        derived_delete(&mut s, &d, &v("euclid"), &v("john"), ChainLimits::default());
        let ext = derived_extension(&s, &d, ChainLimits::default());
        let rendered: Vec<String> = ext
            .iter()
            .map(|p| format!("{} {} {}", p.x, p.y, p.truth.flag()))
            .collect();
        assert_eq!(
            rendered,
            vec!["euclid bill A", "laplace bill T", "laplace john A",]
        );
    }

    #[test]
    fn null_links_match_exactly_only_with_same_index() {
        // NVC-style chain through n1 is exact; through mismatched nulls is
        // ambiguous.
        let mut s = Store::new(2);
        let n1 = s.fresh_null();
        let n2 = s.fresh_null();
        s.base_insert(TEACH, v("gauss"), n1.clone());
        s.base_insert(CLASS_LIST, n1.clone(), v("bill"));
        s.base_insert(CLASS_LIST, n2.clone(), v("john"));
        let d = [pupil_derivation()];
        assert_eq!(
            derived_truth(&s, &d, &v("gauss"), &v("bill"), ChainLimits::default()),
            Truth::True
        );
        assert_eq!(
            derived_truth(&s, &d, &v("gauss"), &v("john"), ChainLimits::default()),
            Truth::Ambiguous
        );
    }

    #[test]
    fn inverse_steps_read_tables_backwards() {
        // taught_by = teach⁻¹.
        let mut s = Store::new(1);
        s.base_insert(TEACH, v("euclid"), v("math"));
        let d = [Derivation::single(Step::inverse(TEACH))];
        assert_eq!(
            derived_truth(&s, &d, &v("math"), &v("euclid"), ChainLimits::default()),
            Truth::True
        );
        assert_eq!(
            derived_truth(&s, &d, &v("euclid"), &v("math"), ChainLimits::default()),
            Truth::False
        );
        let ext = derived_extension(&s, &d, ChainLimits::default());
        assert_eq!(ext.len(), 1);
        assert_eq!(ext[0].x, v("math"));
        assert_eq!(ext[0].y, v("euclid"));
    }

    #[test]
    fn ambiguous_fact_makes_chain_ambiguous_even_if_exact() {
        let mut s = paper_instance();
        let d = [pupil_derivation()];
        // NC over a different derived fact's chain shares <teach,euclid,math>.
        derived_delete(&mut s, &d, &v("euclid"), &v("john"), ChainLimits::default());
        // euclid-bill's chain matches exactly but contains the ambiguous
        // <teach,euclid,math>: not true, not NC-covered → ambiguous.
        let chains = chains_deriving(
            &s,
            &pupil_derivation(),
            &v("euclid"),
            &v("bill"),
            true,
            ChainLimits::default(),
        );
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].matching, MatchKind::Exact);
        assert_eq!(chains[0].flags, Truth::Ambiguous);
    }

    #[test]
    fn chain_limit_caps_enumeration() {
        let mut s = Store::new(2);
        for i in 0..20 {
            s.base_insert(TEACH, v("x"), v(&format!("m{i}")));
            s.base_insert(CLASS_LIST, v(&format!("m{i}")), v("y"));
        }
        let chains = chains_deriving(
            &s,
            &pupil_derivation(),
            &v("x"),
            &v("y"),
            true,
            ChainLimits { max_chains: 5 },
        );
        assert_eq!(chains.len(), 5);
    }

    #[test]
    fn multiple_derivations_combine_with_or() {
        // Derivation A yields ambiguous evidence, derivation B yields true:
        // the fact is true.
        let mut s = Store::new(3);
        let other = FunctionId(2);
        let n1 = s.fresh_null();
        s.base_insert(TEACH, v("gauss"), n1.clone());
        s.base_insert(CLASS_LIST, v("math"), v("john")); // mismatched link → ambiguous
        s.base_insert(other, v("gauss"), v("john"));
        let d = [
            pupil_derivation(),
            Derivation::single(Step::identity(other)),
        ];
        assert_eq!(
            derived_truth(&s, &d, &v("gauss"), &v("john"), ChainLimits::default()),
            Truth::True
        );
    }
}
