//! Three-valued logic (§3.2).
//!
//! "In this logic a fact can be *true*, *false*, or *ambiguous*. Partial
//! information is embodied by facts whose truth value is ambiguous."

use std::fmt;

use serde::{Deserialize, Serialize};

/// Truth value of a fact under the paper's three-valued logic.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Truth {
    /// The fact is known false. Base facts absent from the database are
    /// false; stored facts are never flagged false (they are removed
    /// instead).
    False,
    /// The fact might be true or false — it participates in unresolved
    /// partial information.
    Ambiguous,
    /// The fact is known true.
    True,
}

impl Truth {
    /// Three-valued conjunction (Kleene strong AND): `False` dominates,
    /// then `Ambiguous`, then `True`.
    pub fn and(self, other: Truth) -> Truth {
        use Truth::*;
        match (self, other) {
            (False, _) | (_, False) => False,
            (Ambiguous, _) | (_, Ambiguous) => Ambiguous,
            (True, True) => True,
        }
    }

    /// Three-valued disjunction (Kleene strong OR): `True` dominates,
    /// then `Ambiguous`, then `False`. Used to combine the evidence of
    /// several chains/derivations for the same derived fact.
    pub fn or(self, other: Truth) -> Truth {
        use Truth::*;
        match (self, other) {
            (True, _) | (_, True) => True,
            (Ambiguous, _) | (_, Ambiguous) => Ambiguous,
            (False, False) => False,
        }
    }

    /// The paper's single-letter flag notation (`T`/`A`); false facts are
    /// not stored, but `F` is rendered for completeness.
    pub fn flag(self) -> char {
        match self {
            Truth::True => 'T',
            Truth::Ambiguous => 'A',
            Truth::False => 'F',
        }
    }
}

impl fmt::Display for Truth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.flag())
    }
}

#[cfg(test)]
mod tests {
    use super::Truth::*;
    use super::*;

    const ALL: [Truth; 3] = [False, Ambiguous, True];

    #[test]
    fn conjunction_truth_table() {
        assert_eq!(True.and(True), True);
        assert_eq!(True.and(Ambiguous), Ambiguous);
        assert_eq!(Ambiguous.and(Ambiguous), Ambiguous);
        assert_eq!(False.and(True), False);
        assert_eq!(False.and(Ambiguous), False);
    }

    #[test]
    fn disjunction_truth_table() {
        assert_eq!(False.or(False), False);
        assert_eq!(False.or(Ambiguous), Ambiguous);
        assert_eq!(Ambiguous.or(Ambiguous), Ambiguous);
        assert_eq!(True.or(False), True);
        assert_eq!(True.or(Ambiguous), True);
    }

    #[test]
    fn and_or_are_commutative_and_associative() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a.and(b), b.and(a));
                assert_eq!(a.or(b), b.or(a));
                for c in ALL {
                    assert_eq!(a.and(b).and(c), a.and(b.and(c)));
                    assert_eq!(a.or(b).or(c), a.or(b.or(c)));
                }
            }
        }
    }

    #[test]
    fn ordering_false_lt_ambiguous_lt_true() {
        assert!(False < Ambiguous);
        assert!(Ambiguous < True);
    }

    #[test]
    fn flags() {
        assert_eq!(True.flag(), 'T');
        assert_eq!(Ambiguous.flag(), 'A');
        assert_eq!(False.to_string(), "F");
    }
}
