//! Facts: `<f, a, b>` triples representing `f(a) = b` (§3.2).

use std::fmt;

use serde::{Deserialize, Serialize};

use fdb_types::{FunctionId, Value};

/// A fact `f(a) = b`, denoted `<f, a, b>` in the paper.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Fact {
    /// The function the fact belongs to.
    pub function: FunctionId,
    /// Domain value (`a`).
    pub x: Value,
    /// Range value (`b`).
    pub y: Value,
}

impl Fact {
    /// Builds a fact.
    pub fn new(function: FunctionId, x: impl Into<Value>, y: impl Into<Value>) -> Self {
        Fact {
            function,
            x: x.into(),
            y: y.into(),
        }
    }

    /// The `(x, y)` pair of the fact.
    pub fn pair(&self) -> (Value, Value) {
        (self.x.clone(), self.y.clone())
    }

    /// `true` if either side of the fact is a null value.
    pub fn has_null(&self) -> bool {
        self.x.is_null() || self.y.is_null()
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}, {}, {}>", self.function, self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_types::NullId;

    #[test]
    fn construction_and_pair() {
        let f = Fact::new(FunctionId(0), "euclid", "math");
        assert_eq!(f.pair(), (Value::atom("euclid"), Value::atom("math")));
        assert!(!f.has_null());
    }

    #[test]
    fn has_null_detects_either_side() {
        let n = Value::Null(NullId(1));
        assert!(Fact::new(FunctionId(0), n.clone(), Value::atom("x")).has_null());
        assert!(Fact::new(FunctionId(0), Value::atom("x"), n).has_null());
    }

    #[test]
    fn display_is_triple_notation() {
        let f = Fact::new(FunctionId(2), "gauss", Value::Null(NullId(1)));
        assert_eq!(f.to_string(), "<F2, gauss, n1>");
    }
}
