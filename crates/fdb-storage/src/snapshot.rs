//! MVCC store snapshots: cheap, immutable, version-stamped views.
//!
//! A [`Snapshot`] freezes the extensional state of a [`Store`] at one
//! mutation-counter instant. Capturing one is O(#functions): every
//! per-function table and the NC store sit behind `Arc`s inside the
//! store, so the "copy" is a round of reference-count bumps. The first
//! write the live store makes to a function *after* a snapshot was taken
//! detaches just that function's table (`Arc::make_mut`), which is what
//! makes publication copy-on-write at per-function-extension
//! granularity: a commit that touched two functions shares every other
//! table with all outstanding snapshots.
//!
//! Readers holding a snapshot see a state that can never change —
//! there is no locking, no torn read, and no coordination with writers.
//! The stamp ([`Snapshot::version`]) is the store's monotone mutation
//! counter at capture time; because the counter is bumped by every
//! state-changing operation (including rollbacks), two snapshots with
//! the same stamp are byte-identical and result caches may treat the
//! stamp as a complete cache key ("support-set logic collapses into
//! snapshot identity" — see `fdb-exec`'s `ResultCache`).
//!
//! Snapshots are views of **committed** state only: the shared handles
//! in `fdb-core` publish a new snapshot at each commit boundary and
//! never while an undo journal (open transaction) is recording.

use std::ops::Deref;

use crate::store::Store;

/// An immutable, version-stamped view of a [`Store`].
///
/// Derefs to [`Store`], so every read-side accessor (`table`, `ncs`,
/// `base_truth`, chain search, …) works on a snapshot unchanged.
#[derive(Clone, Debug)]
pub struct Snapshot {
    store: Store,
    version: u64,
}

impl Snapshot {
    pub(crate) fn new(store: Store) -> Snapshot {
        Snapshot {
            version: store.version(),
            store,
        }
    }

    /// The store's monotone mutation counter at capture time. Equal
    /// stamps imply byte-identical logical state (the counter never
    /// rewinds, even across transaction rollbacks).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The frozen store.
    pub fn store(&self) -> &Store {
        &self.store
    }
}

impl Deref for Snapshot {
    type Target = Store;

    fn deref(&self) -> &Store {
        &self.store
    }
}

#[cfg(test)]
mod tests {
    use fdb_types::{FunctionId, Value};

    use crate::fact::Fact;
    use crate::store::Store;
    use crate::truth::Truth;

    fn f(i: u32) -> FunctionId {
        FunctionId(i)
    }

    fn v(s: &str) -> Value {
        Value::atom(s)
    }

    #[test]
    fn snapshot_is_immune_to_later_writes() {
        let mut s = Store::new(2);
        s.base_insert(f(0), v("euclid"), v("math"));
        let snap = s.snapshot();
        assert_eq!(snap.version(), s.version());

        s.base_insert(f(0), v("gauss"), v("algebra"));
        s.base_delete(f(0), &v("euclid"), &v("math"));
        s.base_insert(f(1), v("math"), v("john"));

        // The snapshot still answers from the frozen state…
        assert_eq!(
            snap.base_truth(&Fact::new(f(0), "euclid", "math")),
            Truth::True
        );
        assert_eq!(
            snap.base_truth(&Fact::new(f(0), "gauss", "algebra")),
            Truth::False
        );
        assert_eq!(snap.table(f(1)).len(), 0);
        // …and its stamp is frozen while the live store moved on.
        assert!(s.version() > snap.version());
    }

    #[test]
    fn publication_is_copy_on_write_per_function() {
        let mut s = Store::new(3);
        s.base_insert(f(0), v("a"), v("b"));
        s.base_insert(f(1), v("c"), v("d"));
        s.base_insert(f(2), v("e"), v("g"));
        let snap = s.snapshot();

        // Before any write, every table is physically shared.
        for i in 0..3 {
            assert!(s.shares_table_with(snap.store(), f(i)));
        }
        // A write to f0 detaches exactly f0's table.
        s.base_insert(f(0), v("a2"), v("b2"));
        assert!(!s.shares_table_with(snap.store(), f(0)));
        assert!(s.shares_table_with(snap.store(), f(1)));
        assert!(s.shares_table_with(snap.store(), f(2)));
    }

    #[test]
    fn equal_stamps_mean_identical_state() {
        let mut s = Store::new(1);
        s.base_insert(f(0), v("a"), v("b"));
        let s1 = s.snapshot();
        let s2 = s.snapshot();
        assert_eq!(s1.version(), s2.version());
        let j1 = serde_json::to_string(s1.store()).unwrap();
        let j2 = serde_json::to_string(s2.store()).unwrap();
        assert_eq!(j1, j2);
    }
}
