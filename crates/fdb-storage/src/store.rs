//! The fact store: per-function tables + NC store + null generator.
//!
//! Implements the base-level procedures of §4.1 (`base-insert`,
//! `base-delete`, `create-NC`, `dismantle-NC`). The derived-level
//! procedures (`derived-insert` / `derived-delete` and their NVC helpers)
//! live in [`crate::nvc`] and [`crate::chain`] because they need a
//! derivation; the full update dispatch is assembled in `fdb-core`.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use fdb_types::{FunctionId, NullGen, Value};

use crate::fact::Fact;
use crate::nc::{NcId, NcStore};
use crate::table::Table;
use crate::truth::Truth;
use crate::undo::{UndoJournal, UndoOp};

/// When a table's tombstones are compacted away automatically.
///
/// [`Store::base_delete`] checks the policy after tombstoning a row and
/// calls [`Table::compact`] once the dead-row count exceeds both the
/// absolute floor and the configured fraction of the live rows. Compaction
/// is a logical no-op (value-keyed NC conjuncts are unaffected; row
/// indices are internal handles), so it does not bump any version counter.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CompactionPolicy {
    /// Compact when `tombstones > tombstone_fraction * live_rows`.
    pub tombstone_fraction: f64,
    /// …and at least this many tombstones have accumulated (keeps tiny
    /// paper-trace tables byte-stable).
    pub min_tombstones: usize,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy {
            tombstone_fraction: 0.5,
            min_tombstones: 64,
        }
    }
}

impl CompactionPolicy {
    /// A policy that never triggers automatic compaction.
    pub fn disabled() -> Self {
        CompactionPolicy {
            tombstone_fraction: f64::INFINITY,
            min_tombstones: usize::MAX,
        }
    }
}

/// The extensional state of a functional database instance.
///
/// Tables and the NC store sit behind [`Arc`]s so cloning a store is
/// O(#functions) pointer bumps, not O(#facts) — the basis of the MVCC
/// snapshot read path (see [`crate::snapshot::Snapshot`]). Mutators go
/// through [`Arc::make_mut`], which copies a table only on the *first*
/// write after a snapshot was taken (copy-on-write at per-function
/// granularity). The `Arc`s serialize transparently as their contents,
/// so the JSON snapshot format is unchanged.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Store {
    tables: Vec<Arc<Table>>,
    ncs: Arc<NcStore>,
    nulls: NullGen,
    /// Monotone mutation counter: bumped by every state-changing
    /// operation — including a transaction rollback, which restores the
    /// logical state but is itself a mutation event — so caches
    /// (materialised extensions, see `fdb-core`) can detect staleness
    /// cheaply. Deliberately *not* serialized: snapshots compare logical
    /// state, and counters must stay monotone across a rollback that
    /// makes the logical state byte-identical to an earlier one (a
    /// restored counter could alias a future counter value and let a
    /// cache serve uncommitted data).
    #[serde(skip)]
    version: u64,
    /// Per-function mutation counters: `fn_versions[f]` is bumped whenever
    /// the *observable extension* of `f` may have changed — a row
    /// inserted, deleted or rewritten, or an NC over one of `f`'s rows
    /// created or dismantled, or a rollback undoing any of those. Derived-
    /// result caches compare only the counters of a derivation's support
    /// set, so writes to unrelated functions do not invalidate them.
    /// Skipped by serde for the same monotonicity reason as `version`.
    #[serde(skip)]
    fn_versions: Vec<u64>,
    #[serde(default)]
    compaction: CompactionPolicy,
    /// Undo journal of the open transaction, if one is active. Never
    /// serialized: open transactions do not survive snapshots (the
    /// durability layer defers checkpoints while one is open) — crash
    /// atomicity comes from the WAL's transaction frames instead.
    #[serde(skip)]
    journal: Option<UndoJournal>,
}

impl Store {
    /// Creates an empty store with `n_functions` (initially empty) tables.
    pub fn new(n_functions: usize) -> Self {
        Store {
            tables: (0..n_functions).map(|_| Arc::new(Table::new())).collect(),
            ncs: Arc::new(NcStore::new()),
            nulls: NullGen::new(),
            version: 0,
            fn_versions: Vec::new(),
            compaction: CompactionPolicy::default(),
            journal: None,
        }
    }

    /// Rebuilds all table indexes (after deserialisation).
    pub fn rebuild_index(&mut self) {
        for t in &mut self.tables {
            Arc::make_mut(t).rebuild_index();
        }
    }

    /// Grows the table vector so `f` has a table (used when functions are
    /// declared after the store was created).
    pub fn ensure_table(&mut self, f: FunctionId) {
        while self.tables.len() <= f.index() {
            self.tables.push(Arc::new(Table::new()));
        }
    }

    /// Copy-on-write access to the table at raw index `i`: clones the
    /// table iff a snapshot still shares it.
    fn tab(&mut self, i: usize) -> &mut Table {
        Arc::make_mut(&mut self.tables[i])
    }

    /// Copy-on-write access to the NC store.
    fn ncs_cow(&mut self) -> &mut NcStore {
        Arc::make_mut(&mut self.ncs)
    }

    /// Number of allocated tables (declared functions may trail behind
    /// [`Store::ensure_table`] growth).
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Drops trailing *empty* tables beyond `n`. Transaction rollback uses
    /// this to undo the table growth of `DECLARE`s made inside the rolled-
    /// back scope: the undo journal has already emptied such tables, so
    /// popping them restores the exact pre-transaction serialized layout.
    /// A trailing table still holding rows (live or tombstoned) stops the
    /// truncation — it predates the transaction.
    pub fn truncate_tables(&mut self, n: usize) {
        while self.tables.len() > n
            && self
                .tables
                .last()
                .is_some_and(|t| t.is_empty() && t.tombstones() == 0)
        {
            self.tables.pop();
        }
    }

    /// The table of `f`.
    ///
    /// # Panics
    /// Panics if `f` has no table; call [`Store::ensure_table`] first.
    pub fn table(&self, f: FunctionId) -> &Table {
        &self.tables[f.index()]
    }

    /// Mutable access to the table of `f` (copy-on-write: detaches the
    /// table from any live snapshot before handing out the reference).
    pub fn table_mut(&mut self, f: FunctionId) -> &mut Table {
        self.ensure_table(f);
        Arc::make_mut(&mut self.tables[f.index()])
    }

    /// The NC store.
    pub fn ncs(&self) -> &NcStore {
        &self.ncs
    }

    /// The null generator.
    pub fn nulls(&self) -> &NullGen {
        &self.nulls
    }

    /// Draws a fresh null value.
    pub fn fresh_null(&mut self) -> Value {
        self.version += 1;
        if let Some(j) = self.journal.as_mut() {
            j.push(UndoOp::NullDrawn {
                watermark: self.nulls.watermark(),
            });
        }
        self.nulls.fresh()
    }

    /// Monotone mutation counter (see the field's documentation).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Per-function mutation counter of `f` (0 if `f` was never touched).
    pub fn function_version(&self, f: FunctionId) -> u64 {
        self.fn_versions.get(f.index()).copied().unwrap_or(0)
    }

    fn bump_fn(&mut self, f: FunctionId) {
        if self.fn_versions.len() <= f.index() {
            self.fn_versions.resize(f.index() + 1, 0);
        }
        self.fn_versions[f.index()] += 1;
    }

    /// The automatic compaction policy.
    pub fn compaction_policy(&self) -> CompactionPolicy {
        self.compaction
    }

    /// Replaces the automatic compaction policy.
    pub fn set_compaction_policy(&mut self, policy: CompactionPolicy) {
        self.compaction = policy;
    }

    fn maybe_compact(&mut self, f: FunctionId) {
        // Compaction invalidates the row indices the undo journal records,
        // so it is suspended while a transaction is open and re-checked at
        // commit (a rollback restores the pre-transaction tombstone layout
        // exactly, so nothing is re-checked on abort).
        if let Some(j) = self.journal.as_mut() {
            j.deferred_compaction.insert(f.index() as u32);
            return;
        }
        let Some(table) = self.tables.get(f.index()) else {
            return;
        };
        let dead = table.tombstones();
        if dead >= self.compaction.min_tombstones
            && dead as f64 > self.compaction.tombstone_fraction * table.len() as f64
        {
            self.tab(f.index()).compact();
        }
    }

    /// Truth flag of a base fact: the row's flag if stored, otherwise
    /// [`Truth::False`] ("those not existing in the database are false").
    pub fn base_truth(&self, fact: &Fact) -> Truth {
        match self.tables.get(fact.function.index()) {
            Some(t) => t.truth_of(&fact.x, &fact.y),
            None => Truth::False,
        }
    }

    /// §4.1 `create-NC(Conj-list)`: registers the NC, flags every conjunct
    /// ambiguous and links it into the conjunct's NCL.
    ///
    /// Conjuncts must be stored facts (they come from chains of existing
    /// rows); unknown conjuncts are ignored defensively after a debug
    /// assertion.
    pub fn create_nc(&mut self, conjuncts: Vec<Fact>) -> NcId {
        fdb_obs::registry().storage_ncs_created.inc();
        self.version += 1;
        let id = self.ncs_cow().create(conjuncts.clone());
        if let Some(j) = self.journal.as_mut() {
            j.push(UndoOp::NcCreated { id });
        }
        for fact in &conjuncts {
            self.bump_fn(fact.function);
            self.ensure_table(fact.function);
            let table = &self.tables[fact.function.index()];
            match table.position(&fact.x, &fact.y) {
                Some(i) => {
                    let undo = table.row(i).map(|r| (r.truth, !r.ncl.contains(&id)));
                    if let (Some(j), Some((prior, newly))) = (self.journal.as_mut(), undo) {
                        j.push(UndoOp::NcAttached {
                            f: fact.function,
                            index: i,
                            id,
                            prior,
                            newly,
                        });
                    }
                    self.tab(fact.function.index()).attach_nc(i, id);
                }
                None => debug_assert!(false, "create-NC on unstored fact {fact}"),
            }
        }
        id
    }

    /// §4.1 `dismantle-NC(d)`: unlinks every conjunct's NCL entry and
    /// removes the NC. Flags are *not* reset — the conjuncts stay
    /// ambiguous ("each element of NC(d) is ambiguous, while their
    /// conjunction is not false").
    pub fn dismantle_nc(&mut self, id: NcId) {
        fdb_obs::registry().storage_ncs_dismantled.inc();
        self.version += 1;
        let conjuncts = self.ncs_cow().dismantle(id);
        if let Some(j) = self.journal.as_mut() {
            j.push(UndoOp::NcDismantled {
                id,
                conjuncts: conjuncts.clone(),
            });
        }
        for fact in conjuncts {
            self.bump_fn(fact.function);
            let journaling = self.journal.is_some();
            if let Some(t) = self
                .tables
                .get_mut(fact.function.index())
                .map(Arc::make_mut)
            {
                if let Some(i) = t.position(&fact.x, &fact.y) {
                    let detached = t.row(i).is_some_and(|r| r.ncl.contains(&id));
                    t.detach_nc(i, id);
                    if journaling && detached {
                        if let Some(j) = self.journal.as_mut() {
                            j.push(UndoOp::NcDetached {
                                f: fact.function,
                                index: i,
                                id,
                            });
                        }
                    }
                }
            }
        }
    }

    /// §4.1 `base-insert(f, x, y)`:
    ///
    /// ```text
    /// if (<x,y> not in table of f) then add <x,y,T,nil> to table of f
    /// else { for each d in NCL of <x,y> do dismantle-NC(d);
    ///        set the truth-flag of <x,y> to T }
    /// ```
    pub fn base_insert(&mut self, f: FunctionId, x: Value, y: Value) {
        fdb_obs::registry().storage_base_inserts.inc();
        self.version += 1;
        self.bump_fn(f);
        self.ensure_table(f);
        let table = &self.tables[f.index()];
        match table.position(&x, &y) {
            None => {
                if let Some(j) = self.journal.as_mut() {
                    j.push(UndoOp::RowAppended { f });
                }
                self.tab(f.index()).insert(x, y);
            }
            Some(i) => {
                let (prior, ncl): (Truth, Vec<NcId>) = table
                    .row(i)
                    .map(|r| (r.truth, r.ncl.iter().copied().collect()))
                    .unwrap_or((Truth::True, Vec::new()));
                for d in ncl {
                    self.dismantle_nc(d);
                }
                if let Some(j) = self.journal.as_mut() {
                    j.push(UndoOp::TruthSet { f, index: i, prior });
                }
                self.tab(f.index()).set_truth(i, Truth::True);
            }
        }
    }

    /// §4.1 `base-delete(f, x, y)`:
    ///
    /// ```text
    /// if (<x,y> present in table of f) then
    ///   { for each d in NCL of <x,y> do dismantle-NC(d);
    ///     remove <x,y> from table of f }
    /// ```
    ///
    /// Returns `true` if the pair was present.
    pub fn base_delete(&mut self, f: FunctionId, x: &Value, y: &Value) -> bool {
        self.version += 1;
        self.bump_fn(f);
        self.ensure_table(f);
        let Some(i) = self.tables[f.index()].position(x, y) else {
            return false;
        };
        let ncl: Vec<NcId> = self.tables[f.index()]
            .row(i)
            .map(|r| r.ncl.iter().copied().collect())
            .unwrap_or_default();
        for d in ncl {
            self.dismantle_nc(d);
        }
        let removed = self.tab(f.index()).remove(x, y).unwrap_or_default();
        if let Some(j) = self.journal.as_mut() {
            // The dismantles above emptied the NCL, so `removed` is
            // normally empty; journal what `remove` actually took so the
            // resurrection is exact either way.
            j.push(UndoOp::RowRemoved {
                f,
                index: i,
                ncl: removed,
            });
        }
        fdb_obs::registry().storage_base_deletes.inc();
        self.maybe_compact(f);
        true
    }

    /// Substitutes the null value `from` by `to` throughout the database:
    /// every row key and NC conjunct mentioning `from` is rewritten.
    ///
    /// This is the mechanical half of the paper's §5 observation that
    /// functional dependencies resolve partial information — the logical
    /// half (discovering that a null *must* equal a value) lives in
    /// `fdb-core`'s resolution pass.
    ///
    /// If a rewritten row collides with an existing row, the rows merge:
    /// if either was true the merged fact is treated as a fresh assertion
    /// of truth (its NCs are dismantled, per `base-insert`); otherwise the
    /// NCLs are unioned and the fact stays ambiguous.
    ///
    /// # Panics
    /// Panics (debug) if `from` is not a null value.
    pub fn substitute_null(&mut self, from: &Value, to: &Value) {
        self.version += 1;
        debug_assert!(from.is_null(), "substitute_null must be given a null");
        if from == to {
            return;
        }
        fdb_obs::registry().storage_null_substitutions.inc();
        // Null substitution can rewrite rows and NC conjuncts anywhere;
        // it is rare, so be conservative and bump every function.
        for fi in 0..self.tables.len() {
            self.bump_fn(FunctionId(fi as u32));
        }
        // 1. Rewrite NC conjunct keys first so later dismantles see the
        //    post-substitution facts. Journal each affected NC's prior
        //    conjunct list so rollback can restore it verbatim.
        if self.journal.is_some() {
            let priors: Vec<(NcId, Vec<Fact>)> = self
                .ncs
                .iter()
                .filter(|(_, facts)| facts.iter().any(|f| &f.x == from || &f.y == from))
                .map(|(id, facts)| (id, facts.to_vec()))
                .collect();
            if let Some(j) = self.journal.as_mut() {
                for (id, prior) in priors {
                    j.push(UndoOp::NcRewritten { id, prior });
                }
            }
        }
        self.ncs_cow().substitute_value(from, to);

        // 2. Rewrite table rows.
        let mut reassert: Vec<Fact> = Vec::new();
        for fi in 0..self.tables.len() {
            let affected: Vec<(Value, Value)> = self.tables[fi]
                .rows()
                .filter(|r| r.x == from || r.y == from)
                .map(|r| (r.x.clone(), r.y.clone()))
                .collect();
            for (x, y) in affected {
                let function = FunctionId(fi as u32);
                let table = &self.tables[fi];
                let i = table.position(&x, &y).expect("row was just listed");
                let (truth, ncl) = {
                    let r = table.row(i).expect("row alive");
                    (r.truth, r.ncl.clone())
                };
                let removed = self.tab(fi).remove(&x, &y).unwrap_or_default();
                if let Some(j) = self.journal.as_mut() {
                    j.push(UndoOp::RowRemoved {
                        f: function,
                        index: i,
                        ncl: removed,
                    });
                }
                let nx = if x == *from { to.clone() } else { x };
                let ny = if y == *from { to.clone() } else { y };
                match self.tables[fi].position(&nx, &ny) {
                    None => {
                        if let Some(j) = self.journal.as_mut() {
                            j.push(UndoOp::RowAppended { f: function });
                        }
                        self.tab(fi).restore_row(nx, ny, truth, ncl);
                    }
                    Some(pos) => {
                        // Merge with the existing row.
                        let either_true = self.tables[fi]
                            .row(pos)
                            .map(|r| r.truth == Truth::True || truth == Truth::True)
                            .unwrap_or(false);
                        for &d in &ncl {
                            let undo = self.tables[fi]
                                .row(pos)
                                .map(|r| (r.truth, !r.ncl.contains(&d)));
                            if let (Some(j), Some((prior, newly))) = (self.journal.as_mut(), undo) {
                                j.push(UndoOp::NcAttached {
                                    f: function,
                                    index: pos,
                                    id: d,
                                    prior,
                                    newly,
                                });
                            }
                            self.tab(fi).attach_nc(pos, d);
                        }
                        if either_true {
                            reassert.push(Fact {
                                function,
                                x: nx,
                                y: ny,
                            });
                        }
                    }
                }
            }
        }
        // 3. Re-assert merged-true facts through base-insert semantics.
        for f in reassert {
            self.base_insert(f.function, f.x, f.y);
        }
        // 4. Drop NCs that became degenerate: a conjunct key may now be
        //    missing if its row merged away — the dual check keeps them
        //    aligned because merging preserved keys; nothing to do.
    }

    // ----- transactions (undo journal) ---------------------------------

    /// `true` while an undo journal is recording (a transaction is open).
    pub fn undo_active(&self) -> bool {
        self.journal.is_some()
    }

    /// Opens the undo journal: every subsequent primitive mutation is
    /// recorded until [`Store::undo_commit`] or [`Store::undo_abort`].
    /// Journaling is off (zero overhead) outside transactions. Opening a
    /// journal while one is active is a caller bug; the existing journal
    /// is kept (nested scopes use [`Store::undo_mark`] instead).
    pub fn undo_begin(&mut self) {
        debug_assert!(self.journal.is_none(), "undo journal already open");
        if self.journal.is_none() {
            self.journal = Some(UndoJournal::default());
        }
    }

    /// Current journal position — capture as a savepoint mark and pass to
    /// [`Store::undo_rollback_to`] to roll back a suffix of the
    /// transaction. Returns 0 when no journal is open.
    pub fn undo_mark(&self) -> usize {
        self.journal.as_ref().map_or(0, UndoJournal::mark)
    }

    /// Approximate in-memory size of the open journal in bytes (0 when no
    /// transaction is open). Reported through `fdb.txn.undo_log_bytes`.
    pub fn undo_bytes(&self) -> usize {
        self.journal.as_ref().map_or(0, UndoJournal::approx_bytes)
    }

    /// Rolls the store back to a previously captured [`Store::undo_mark`],
    /// keeping the journal open (savepoint rollback). The logical state
    /// becomes byte-identical to the state at the mark, while `version` /
    /// `fn_versions` advance — rollback is a mutation event, so no cache
    /// keyed on the counters can serve the rolled-back (uncommitted) data.
    pub fn undo_rollback_to(&mut self, mark: usize) {
        let ops = match self.journal.as_mut() {
            Some(j) => j.drain_to(mark),
            None => {
                debug_assert!(false, "rollback without an open undo journal");
                return;
            }
        };
        self.apply_undo(ops);
    }

    /// Commits the open transaction: drops the journal and re-checks the
    /// compaction policy of every table whose automatic compaction was
    /// deferred while the journal was open.
    pub fn undo_commit(&mut self) {
        let Some(j) = self.journal.take() else {
            debug_assert!(false, "commit without an open undo journal");
            return;
        };
        for fi in j.deferred_compaction {
            self.maybe_compact(FunctionId(fi));
        }
    }

    /// Aborts the open transaction: rolls everything back and drops the
    /// journal. Deferred compaction checks are discarded — the rollback
    /// restored the exact pre-transaction tombstone layout, which by
    /// construction had not yet crossed the compaction threshold.
    pub fn undo_abort(&mut self) {
        if self.journal.is_none() {
            debug_assert!(false, "abort without an open undo journal");
            return;
        }
        self.undo_rollback_to(0);
        self.journal = None;
    }

    /// Applies inverse ops (already in reverse execution order), then
    /// bumps the version counters of every touched function exactly once.
    fn apply_undo(&mut self, ops: Vec<UndoOp>) {
        use std::collections::BTreeSet;
        let mut touched: BTreeSet<u32> = BTreeSet::new();
        for op in ops {
            if let Some(f) = op.touched_function() {
                touched.insert(f.index() as u32);
            }
            match op {
                UndoOp::RowAppended { f } => self.tab(f.index()).undo_append(),
                UndoOp::RowRemoved { f, index, ncl } => {
                    self.tab(f.index()).resurrect(index, ncl);
                }
                UndoOp::TruthSet { f, index, prior } => {
                    self.tab(f.index()).set_truth(index, prior);
                }
                UndoOp::NcAttached {
                    f,
                    index,
                    id,
                    prior,
                    newly,
                } => {
                    let t = self.tab(f.index());
                    if newly {
                        t.detach_nc(index, id);
                    }
                    t.set_truth(index, prior);
                }
                UndoOp::NcDetached { f, index, id } => {
                    // The row was necessarily ambiguous at detach time, so
                    // attach_nc restores both the NCL entry and the flag.
                    self.tab(f.index()).attach_nc(index, id);
                }
                UndoOp::NcCreated { id } => self.ncs_cow().undo_create(id),
                UndoOp::NcDismantled { id, conjuncts } => self.ncs_cow().restore(id, conjuncts),
                UndoOp::NcRewritten { id, prior } => self.ncs_cow().rewrite(id, prior),
                UndoOp::NullDrawn { watermark } => self.nulls.rewind(watermark),
            }
        }
        // Rollback is itself a version event: every derived cache keyed on
        // these counters must miss after it.
        self.version += 1;
        for fi in touched {
            self.bump_fn(FunctionId(fi));
        }
    }

    /// Total number of live base facts across all tables.
    pub fn fact_count(&self) -> usize {
        self.tables.iter().map(|t| t.len()).sum()
    }

    /// Captures a cheap, immutable, version-stamped view of the store —
    /// see [`crate::snapshot::Snapshot`]. O(#functions), not O(#facts).
    ///
    /// # Panics
    /// Debug-asserts that no undo journal is open: a snapshot is a view of
    /// *committed* state, and callers (the shared handles in `fdb-core`)
    /// only publish at commit boundaries.
    pub fn snapshot(&self) -> crate::snapshot::Snapshot {
        debug_assert!(
            self.journal.is_none(),
            "snapshot of a store with an open undo journal"
        );
        let mut store = self.clone();
        store.journal = None;
        crate::snapshot::Snapshot::new(store)
    }

    /// `true` if the table of `f` is physically shared with `other`
    /// (same `Arc`) — used by tests and benches to prove snapshot
    /// publication is copy-on-write, not a deep copy.
    pub fn shares_table_with(&self, other: &Store, f: FunctionId) -> bool {
        match (self.tables.get(f.index()), other.tables.get(f.index())) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Number of live base facts currently flagged ambiguous.
    pub fn ambiguous_count(&self) -> usize {
        self.tables
            .iter()
            .flat_map(|t| t.rows())
            .filter(|r| r.truth == Truth::Ambiguous)
            .count()
    }

    /// Checks the NC ↔ NCL duality invariant: every NC conjunct is a
    /// stored row whose NCL contains the NC, and every NCL entry points to
    /// a live NC listing the row. Returns a description of the first
    /// violation, if any.
    pub fn check_duality(&self) -> Option<String> {
        for (id, facts) in self.ncs.iter() {
            for fact in facts {
                let Some(t) = self.tables.get(fact.function.index()) else {
                    return Some(format!("{id}: conjunct {fact} has no table"));
                };
                match t.position(&fact.x, &fact.y).and_then(|i| t.row(i)) {
                    Some(row) if row.ncl.contains(&id) => {}
                    Some(_) => return Some(format!("{id}: conjunct {fact} lacks back-pointer")),
                    None => return Some(format!("{id}: conjunct {fact} not stored")),
                }
            }
        }
        for (fi, t) in self.tables.iter().enumerate() {
            for row in t.rows() {
                for &d in row.ncl.iter() {
                    let listed = self.ncs.get(d).is_some_and(|facts| {
                        facts
                            .iter()
                            .any(|f| f.function.index() == fi && &f.x == row.x && &f.y == row.y)
                    });
                    if !listed {
                        return Some(format!(
                            "row <{}, {}> of F{} points at {} which does not list it",
                            row.x, row.y, fi, d
                        ));
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u32) -> FunctionId {
        FunctionId(i)
    }

    fn v(s: &str) -> Value {
        Value::atom(s)
    }

    #[test]
    fn base_insert_fresh_row_is_true() {
        let mut s = Store::new(2);
        s.base_insert(f(0), v("euclid"), v("math"));
        assert_eq!(
            s.base_truth(&Fact::new(f(0), "euclid", "math")),
            Truth::True
        );
        assert_eq!(s.fact_count(), 1);
    }

    #[test]
    fn base_insert_on_ambiguous_fact_resolves_it() {
        let mut s = Store::new(2);
        s.base_insert(f(0), v("euclid"), v("math"));
        s.base_insert(f(1), v("math"), v("john"));
        let nc = s.create_nc(vec![
            Fact::new(f(0), "euclid", "math"),
            Fact::new(f(1), "math", "john"),
        ]);
        assert_eq!(
            s.base_truth(&Fact::new(f(0), "euclid", "math")),
            Truth::Ambiguous
        );
        // Re-asserting one conjunct dismantles the NC and sets it true…
        s.base_insert(f(0), v("euclid"), v("math"));
        assert!(!s.ncs().contains(nc));
        assert_eq!(
            s.base_truth(&Fact::new(f(0), "euclid", "math")),
            Truth::True
        );
        // …while the other conjunct stays ambiguous (paper's u4 prelude).
        assert_eq!(
            s.base_truth(&Fact::new(f(1), "math", "john")),
            Truth::Ambiguous
        );
    }

    #[test]
    fn base_delete_dismantles_ncs() {
        let mut s = Store::new(2);
        s.base_insert(f(0), v("euclid"), v("math"));
        s.base_insert(f(1), v("math"), v("john"));
        let nc = s.create_nc(vec![
            Fact::new(f(0), "euclid", "math"),
            Fact::new(f(1), "math", "john"),
        ]);
        assert!(s.base_delete(f(0), &v("euclid"), &v("math")));
        assert!(!s.ncs().contains(nc));
        assert_eq!(
            s.base_truth(&Fact::new(f(0), "euclid", "math")),
            Truth::False
        );
        // The surviving conjunct keeps flag A with empty NCL — the
        // `math john A {}` state after u3 in the paper's trace.
        assert_eq!(
            s.base_truth(&Fact::new(f(1), "math", "john")),
            Truth::Ambiguous
        );
        assert!(s
            .table(f(1))
            .row(s.table(f(1)).position(&v("math"), &v("john")).unwrap())
            .unwrap()
            .ncl
            .is_empty());
    }

    #[test]
    fn base_delete_absent_returns_false() {
        let mut s = Store::new(1);
        assert!(!s.base_delete(f(0), &v("a"), &v("b")));
    }

    #[test]
    fn duality_invariant_holds_through_updates() {
        let mut s = Store::new(2);
        s.base_insert(f(0), v("a"), v("b"));
        s.base_insert(f(1), v("b"), v("c"));
        s.base_insert(f(1), v("b"), v("d"));
        let _nc1 = s.create_nc(vec![Fact::new(f(0), "a", "b"), Fact::new(f(1), "b", "c")]);
        let nc2 = s.create_nc(vec![Fact::new(f(0), "a", "b"), Fact::new(f(1), "b", "d")]);
        assert!(s.check_duality().is_none());
        s.dismantle_nc(nc2);
        assert!(s.check_duality().is_none());
        s.base_delete(f(0), &v("a"), &v("b"));
        assert!(s.check_duality().is_none());
        assert!(s.ncs().is_empty());
    }

    #[test]
    fn fact_in_multiple_ncs() {
        let mut s = Store::new(2);
        s.base_insert(f(0), v("a"), v("b"));
        s.base_insert(f(1), v("b"), v("c"));
        s.base_insert(f(1), v("b"), v("d"));
        let nc1 = s.create_nc(vec![Fact::new(f(0), "a", "b"), Fact::new(f(1), "b", "c")]);
        let nc2 = s.create_nc(vec![Fact::new(f(0), "a", "b"), Fact::new(f(1), "b", "d")]);
        let t = s.table(f(0));
        let i = t.position(&v("a"), &v("b")).unwrap();
        let ncl: Vec<NcId> = t.row(i).unwrap().ncl.iter().copied().collect();
        assert_eq!(ncl, vec![nc1, nc2]);
        // Inserting the shared conjunct dismantles both.
        s.base_insert(f(0), v("a"), v("b"));
        assert!(s.ncs().is_empty());
        // b→c and b→d remain ambiguous.
        assert_eq!(s.ambiguous_count(), 2);
    }

    #[test]
    fn substitute_null_rewrites_rows_and_ncs() {
        let mut s = Store::new(2);
        let n1 = s.fresh_null();
        s.base_insert(f(0), v("gauss"), n1.clone());
        s.base_insert(f(1), n1.clone(), v("bill"));
        let nc = s.create_nc(vec![Fact::new(f(0), v("gauss"), n1.clone())]);
        s.substitute_null(&n1, &v("math"));
        assert!(s.table(f(0)).contains(&v("gauss"), &v("math")));
        assert!(s.table(f(1)).contains(&v("math"), &v("bill")));
        assert!(!s.table(f(0)).contains(&v("gauss"), &n1));
        // The NC conjunct was rewritten and duality holds.
        let conj = s.ncs().get(nc).unwrap();
        assert_eq!(conj[0].y, v("math"));
        assert!(s.check_duality().is_none());
    }

    #[test]
    fn substitute_null_merges_with_existing_row() {
        let mut s = Store::new(1);
        let n1 = s.fresh_null();
        s.base_insert(f(0), v("gauss"), n1.clone());
        s.base_insert(f(0), v("gauss"), v("math"));
        let nc = s.create_nc(vec![Fact::new(f(0), v("gauss"), n1.clone())]);
        assert_eq!(s.table(f(0)).len(), 2);
        s.substitute_null(&n1, &v("math"));
        // Rows merged; the surviving row was true, so the NC over the null
        // row was dismantled by the re-assertion.
        assert_eq!(s.table(f(0)).len(), 1);
        assert_eq!(
            s.base_truth(&Fact::new(f(0), v("gauss"), v("math"))),
            Truth::True
        );
        assert!(!s.ncs().contains(nc));
        assert!(s.check_duality().is_none());
    }

    #[test]
    fn substitute_null_merge_of_two_ambiguous_rows_unions_ncls() {
        let mut s = Store::new(2);
        let n1 = s.fresh_null();
        s.base_insert(f(0), v("a"), n1.clone());
        s.base_insert(f(0), v("a"), v("b"));
        s.base_insert(f(1), v("z"), v("w"));
        let nc1 = s.create_nc(vec![
            Fact::new(f(0), v("a"), n1.clone()),
            Fact::new(f(1), v("z"), v("w")),
        ]);
        let nc2 = s.create_nc(vec![
            Fact::new(f(0), v("a"), v("b")),
            Fact::new(f(1), v("z"), v("w")),
        ]);
        s.substitute_null(&n1, &v("b"));
        assert_eq!(s.table(f(0)).len(), 1);
        let i = s.table(f(0)).position(&v("a"), &v("b")).unwrap();
        let ncl: Vec<NcId> = s.table(f(0)).row(i).unwrap().ncl.iter().copied().collect();
        assert_eq!(ncl, vec![nc1, nc2]);
        assert_eq!(
            s.base_truth(&Fact::new(f(0), v("a"), v("b"))),
            Truth::Ambiguous
        );
        assert!(s.check_duality().is_none());
    }

    #[test]
    fn per_function_versions_track_only_touched_functions() {
        let mut s = Store::new(3);
        assert_eq!(s.function_version(f(0)), 0);
        s.base_insert(f(0), v("a"), v("b"));
        assert_eq!(s.function_version(f(0)), 1);
        assert_eq!(s.function_version(f(1)), 0);
        assert_eq!(s.function_version(f(2)), 0);
        // NC creation bumps exactly the conjunct functions.
        s.base_insert(f(1), v("b"), v("c"));
        let v0 = s.function_version(f(0));
        let v2 = s.function_version(f(2));
        s.create_nc(vec![Fact::new(f(0), "a", "b"), Fact::new(f(1), "b", "c")]);
        assert!(s.function_version(f(0)) > v0);
        assert_eq!(s.function_version(f(2)), v2);
        // Deleting a conjunct bumps both f (directly) and the NC's other
        // conjunct functions (via dismantle).
        let v1 = s.function_version(f(1));
        s.base_delete(f(0), &v("a"), &v("b"));
        assert!(s.function_version(f(1)) > v1);
        assert_eq!(s.function_version(f(2)), v2);
    }

    #[test]
    fn auto_compaction_triggers_and_preserves_nc_duality() {
        let mut s = Store::new(2);
        s.set_compaction_policy(CompactionPolicy {
            tombstone_fraction: 0.5,
            min_tombstones: 4,
        });
        // Rows that stay live, drawn into an NC (so NCLs must survive).
        s.base_insert(f(0), v("keep_a"), v("keep_b"));
        s.base_insert(f(1), v("keep_b"), v("keep_c"));
        let nc = s.create_nc(vec![
            Fact::new(f(0), "keep_a", "keep_b"),
            Fact::new(f(1), "keep_b", "keep_c"),
        ]);
        // Churn enough rows that tombstones exceed the policy.
        for i in 0..8 {
            s.base_insert(f(0), v(&format!("x{i}")), v(&format!("y{i}")));
        }
        for i in 0..8 {
            s.base_delete(f(0), &v(&format!("x{i}")), &v(&format!("y{i}")));
        }
        assert_eq!(s.table(f(0)).tombstones(), 0, "compaction should have run");
        assert_eq!(s.table(f(0)).len(), 1);
        // The NC's conjuncts key by value pair, so the dual structure
        // survives the row-index reshuffle.
        assert!(s.check_duality().is_none());
        assert!(s.ncs().contains(nc));
        assert_eq!(
            s.base_truth(&Fact::new(f(0), "keep_a", "keep_b")),
            Truth::Ambiguous
        );
        // A disabled policy accumulates tombstones again.
        s.set_compaction_policy(CompactionPolicy::disabled());
        for i in 0..8 {
            s.base_insert(f(0), v(&format!("z{i}")), v(&format!("w{i}")));
        }
        for i in 0..8 {
            s.base_delete(f(0), &v(&format!("z{i}")), &v(&format!("w{i}")));
        }
        assert_eq!(s.table(f(0)).tombstones(), 8);
    }

    #[test]
    fn fresh_nulls_are_sequential() {
        let mut s = Store::new(0);
        assert_eq!(s.fresh_null().to_string(), "n1");
        assert_eq!(s.fresh_null().to_string(), "n2");
        assert_eq!(s.nulls().generated(), 2);
    }

    fn snap(s: &Store) -> String {
        serde_json::to_string(s).expect("store serializes")
    }

    #[test]
    fn undo_rollback_restores_byte_identical_state() {
        let mut s = Store::new(2);
        s.base_insert(f(0), v("euclid"), v("math"));
        s.base_insert(f(1), v("math"), v("john"));
        let nc = s.create_nc(vec![
            Fact::new(f(0), "euclid", "math"),
            Fact::new(f(1), "math", "john"),
        ]);
        assert!(s.ncs().contains(nc));
        let before = snap(&s);
        let v_before = s.version();

        s.undo_begin();
        // A representative mix: inserts, re-assertion over an NC, a fresh
        // null, NC creation + dismantling, deletion, null substitution.
        let n = s.fresh_null();
        s.base_insert(f(0), v("gauss"), n.clone());
        s.base_insert(f(0), v("gauss"), v("algebra"));
        let nc2 = s.create_nc(vec![Fact::new(f(0), v("gauss"), n.clone())]);
        s.substitute_null(&n, &v("algebra"));
        assert!(!s.ncs().contains(nc2), "merge re-asserted the true row");
        s.base_insert(f(0), v("euclid"), v("math"));
        s.base_delete(f(0), &v("euclid"), &v("math"));
        assert_ne!(snap(&s), before);

        s.undo_abort();
        assert_eq!(snap(&s), before, "rollback must be byte-identical");
        assert!(!s.undo_active());
        assert!(s.ncs().contains(nc));
        assert!(
            s.version() > v_before,
            "rollback is a version event, not a counter restore"
        );
        assert!(s.check_duality().is_none());
    }

    #[test]
    fn undo_savepoint_rollback_keeps_transaction_open() {
        let mut s = Store::new(1);
        s.base_insert(f(0), v("a"), v("b"));
        s.undo_begin();
        s.base_insert(f(0), v("c"), v("d"));
        let mark = s.undo_mark();
        let mid = snap(&s);
        s.base_insert(f(0), v("e"), v("f"));
        s.base_delete(f(0), &v("a"), &v("b"));
        s.undo_rollback_to(mark);
        assert_eq!(snap(&s), mid);
        assert!(s.undo_active());
        // Work after a savepoint rollback is still undone by a full abort.
        s.base_insert(f(0), v("g"), v("h"));
        s.undo_abort();
        assert_eq!(s.table(f(0)).len(), 1);
        assert!(s.table(f(0)).contains(&v("a"), &v("b")));
    }

    #[test]
    fn undo_commit_keeps_changes_and_runs_deferred_compaction() {
        let mut s = Store::new(1);
        s.set_compaction_policy(CompactionPolicy {
            tombstone_fraction: 0.5,
            min_tombstones: 4,
        });
        s.undo_begin();
        for i in 0..8 {
            s.base_insert(f(0), v(&format!("x{i}")), v(&format!("y{i}")));
        }
        for i in 0..8 {
            s.base_delete(f(0), &v(&format!("x{i}")), &v(&format!("y{i}")));
        }
        // Compaction is suspended while the journal is open (row indices
        // recorded in it must stay valid)…
        assert_eq!(s.table(f(0)).tombstones(), 8);
        s.undo_commit();
        // …and re-checked at commit.
        assert_eq!(s.table(f(0)).tombstones(), 0);
        assert!(!s.undo_active());
    }

    #[test]
    fn undo_restores_nc_ids_and_null_watermark() {
        let mut s = Store::new(2);
        s.base_insert(f(0), v("a"), v("b"));
        s.undo_begin();
        let n = s.fresh_null();
        s.base_insert(f(1), n.clone(), v("c"));
        let nc = s.create_nc(vec![Fact::new(f(1), n.clone(), v("c"))]);
        assert_eq!(nc, NcId(1));
        s.undo_abort();
        assert_eq!(s.nulls().generated(), 0, "null watermark rewound");
        // Fresh ids after the rollback are the same ones the transaction
        // would have used — no gap leaks the aborted work.
        assert_eq!(s.fresh_null(), Value::Null(fdb_types::NullId(1)));
        s.base_insert(f(0), v("p"), v("q"));
        let nc2 = s.create_nc(vec![Fact::new(f(0), "p", "q")]);
        assert_eq!(nc2, NcId(1));
    }

    #[test]
    fn undo_bytes_grow_and_reset() {
        let mut s = Store::new(1);
        assert_eq!(s.undo_bytes(), 0);
        s.undo_begin();
        s.base_insert(f(0), v("a"), v("b"));
        assert!(s.undo_bytes() > 0);
        s.undo_abort();
        assert_eq!(s.undo_bytes(), 0);
    }

    #[test]
    fn version_counters_are_not_serialized() {
        let mut s = Store::new(1);
        s.base_insert(f(0), v("a"), v("b"));
        let json = snap(&s);
        assert!(
            !json.contains("fn_versions"),
            "counters must not leak into snapshots"
        );
        let mut back: Store = serde_json::from_str(&json).expect("round trip");
        back.rebuild_index();
        assert_eq!(back.version(), 0);
        assert!(back.table(f(0)).contains(&v("a"), &v("b")));
    }
}
