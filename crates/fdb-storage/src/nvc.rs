//! Null-valued chains (NVC) and the derived-insert procedure (§3.2, §4.1).
//!
//! Inserting a derived fact `<f, x, y>` with `f = f₁ o … o f_k` asserts
//! that intermediate witnesses exist without naming them. The paper stores
//! a *null-valued chain*: fresh, uniquely indexed nulls `n₁ … n_{k−1}`
//! thread the chain `<x, n₁> ∈ f₁, <n₁, n₂> ∈ f₂, …, <n_{k−1}, y> ∈ f_k`.
//!
//! ```text
//! derived-insert(f, x, y):
//!   if exists-NVC(f, x, y) then clean-up-NVC(f, x, y)
//!   else create-NVC(f, x, y)
//! ```
//!
//! `clean-up-NVC` re-asserts every link with `base-insert`, which both
//! dismantles any NCs the links were drawn into and resets their flags to
//! `T` — "making an ambiguous NVC true".
//!
//! Inverse steps are handled by orientation: a step `u = inverse` stores
//! its link `(v, w)` as the pair `<w, v>` in the step's table.

use fdb_types::{Derivation, Op, Value};

use crate::fact::Fact;
use crate::store::Store;

/// Orientation helper: the stored pair for a link `from → to` of `step`.
fn oriented_pair(step: &fdb_types::Step, from: Value, to: Value) -> (Value, Value) {
    match step.op {
        Op::Identity => (from, to),
        Op::Inverse => (to, from),
    }
}

/// §4.1 `create-NVC(f, x, y)`: generates `k−1` fresh nulls and stores the
/// chain. Returns the created facts in step order.
pub fn create_nvc(store: &mut Store, derivation: &Derivation, x: Value, y: Value) -> Vec<Fact> {
    let k = derivation.len();
    let mut boundary = Vec::with_capacity(k + 1);
    boundary.push(x);
    for _ in 1..k {
        let n = store.fresh_null();
        boundary.push(n);
    }
    boundary.push(y);
    let mut created = Vec::with_capacity(k);
    for (j, step) in derivation.steps().iter().enumerate() {
        let (px, py) = oriented_pair(step, boundary[j].clone(), boundary[j + 1].clone());
        store.base_insert(step.function, px.clone(), py.clone());
        created.push(Fact {
            function: step.function,
            x: px,
            y: py,
        });
    }
    created
}

/// §4.1 `exists-NVC(f, x, y)`: looks for a stored chain
/// `<x, n₁> ∈ f₁, …, <n_{k−1}, y> ∈ f_k` whose intermediate values are all
/// null. Returns the chain's facts if found.
pub fn exists_nvc(
    store: &Store,
    derivation: &Derivation,
    x: &Value,
    y: &Value,
) -> Option<Vec<Fact>> {
    let mut facts = Vec::with_capacity(derivation.len());
    find_nvc(store, derivation, 0, x, y, &mut facts).then_some(facts)
}

fn find_nvc(
    store: &Store,
    derivation: &Derivation,
    depth: usize,
    incoming: &Value,
    goal: &Value,
    facts: &mut Vec<Fact>,
) -> bool {
    let step = &derivation.steps()[depth];
    let inverted = step.op == Op::Inverse;
    let table = store.table(step.function);
    let last = depth + 1 == derivation.len();
    let candidates: Vec<usize> = if inverted {
        table.rows_with_y(incoming).collect()
    } else {
        table.rows_with_x(incoming).collect()
    };
    for i in candidates {
        let Some(row) = table.row(i) else { continue };
        let next = if inverted { row.x } else { row.y };
        if last {
            if next == goal {
                facts.push(Fact {
                    function: step.function,
                    x: row.x.clone(),
                    y: row.y.clone(),
                });
                return true;
            }
        } else if next.is_null() {
            facts.push(Fact {
                function: step.function,
                x: row.x.clone(),
                y: row.y.clone(),
            });
            let next = next.clone();
            if find_nvc(store, derivation, depth + 1, &next, goal, facts) {
                return true;
            }
            facts.pop();
        }
    }
    false
}

/// §4.1 `clean-up-NVC(f, x, y)`: re-asserts every link of the found NVC
/// with `base-insert`, making an ambiguous NVC true. Returns `true` if an
/// NVC was found and cleaned.
pub fn cleanup_nvc(store: &mut Store, derivation: &Derivation, x: &Value, y: &Value) -> bool {
    let Some(facts) = exists_nvc(store, derivation, x, y) else {
        return false;
    };
    for fact in facts {
        store.base_insert(fact.function, fact.x, fact.y);
    }
    true
}

/// §4.1 `derived-insert(f, x, y)` for one derivation.
pub fn derived_insert(store: &mut Store, derivation: &Derivation, x: Value, y: Value) {
    if cleanup_nvc(store, derivation, &x, &y) {
        return;
    }
    create_nvc(store, derivation, x, y);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::{derived_truth, ChainLimits};
    use crate::truth::Truth;
    use fdb_types::{FunctionId, NullId, Step};

    const TEACH: FunctionId = FunctionId(0);
    const CLASS_LIST: FunctionId = FunctionId(1);

    fn pupil() -> Derivation {
        Derivation::new(vec![Step::identity(TEACH), Step::identity(CLASS_LIST)]).unwrap()
    }

    fn v(s: &str) -> Value {
        Value::atom(s)
    }

    #[test]
    fn create_nvc_threads_fresh_nulls() {
        // u2 of the trace: INS(pupil, <gauss, bill>) creates
        // <teach, gauss, n1> and <class_list, n1, bill>.
        let mut s = Store::new(2);
        let facts = create_nvc(&mut s, &pupil(), v("gauss"), v("bill"));
        assert_eq!(facts.len(), 2);
        assert_eq!(facts[0].x, v("gauss"));
        assert_eq!(facts[0].y, Value::Null(NullId(1)));
        assert_eq!(facts[1].x, Value::Null(NullId(1)));
        assert_eq!(facts[1].y, v("bill"));
        assert_eq!(
            derived_truth(
                &s,
                &[pupil()],
                &v("gauss"),
                &v("bill"),
                ChainLimits::default()
            ),
            Truth::True
        );
    }

    #[test]
    fn exists_nvc_finds_the_chain() {
        let mut s = Store::new(2);
        create_nvc(&mut s, &pupil(), v("gauss"), v("bill"));
        let found = exists_nvc(&s, &pupil(), &v("gauss"), &v("bill")).unwrap();
        assert_eq!(found.len(), 2);
        assert!(exists_nvc(&s, &pupil(), &v("gauss"), &v("john")).is_none());
    }

    #[test]
    fn exists_nvc_requires_null_intermediates() {
        // A fully concrete chain is not an NVC.
        let mut s = Store::new(2);
        s.base_insert(TEACH, v("euclid"), v("math"));
        s.base_insert(CLASS_LIST, v("math"), v("john"));
        assert!(exists_nvc(&s, &pupil(), &v("euclid"), &v("john")).is_none());
    }

    #[test]
    fn derived_insert_is_idempotent_via_cleanup() {
        let mut s = Store::new(2);
        derived_insert(&mut s, &pupil(), v("gauss"), v("bill"));
        let count = s.fact_count();
        derived_insert(&mut s, &pupil(), v("gauss"), v("bill"));
        assert_eq!(s.fact_count(), count, "second insert reuses the NVC");
        assert_eq!(s.nulls().generated(), 1);
    }

    #[test]
    fn cleanup_resolves_ambiguous_links() {
        // Insert a derived fact, delete it (NC over the NVC), insert again:
        // the clean-up must dismantle the NC and restore truth.
        let mut s = Store::new(2);
        derived_insert(&mut s, &pupil(), v("gauss"), v("bill"));
        crate::chain::derived_delete(
            &mut s,
            &[pupil()],
            &v("gauss"),
            &v("bill"),
            ChainLimits::default(),
        );
        assert_eq!(
            derived_truth(
                &s,
                &[pupil()],
                &v("gauss"),
                &v("bill"),
                ChainLimits::default()
            ),
            Truth::False
        );
        derived_insert(&mut s, &pupil(), v("gauss"), v("bill"));
        assert!(s.ncs().is_empty());
        assert_eq!(
            derived_truth(
                &s,
                &[pupil()],
                &v("gauss"),
                &v("bill"),
                ChainLimits::default()
            ),
            Truth::True
        );
        assert_eq!(s.nulls().generated(), 1, "no second chain was created");
    }

    #[test]
    fn single_step_derivation_inserts_directly() {
        // k = 1: the NVC is the fact itself; no nulls are generated.
        let mut s = Store::new(1);
        let d = Derivation::single(Step::identity(TEACH));
        derived_insert(&mut s, &d, v("euclid"), v("math"));
        assert_eq!(s.nulls().generated(), 0);
        assert!(s.table(TEACH).contains(&v("euclid"), &v("math")));
    }

    #[test]
    fn inverse_step_orientation() {
        // taught_by = teach⁻¹; INS(taught_by, <math, euclid>) stores
        // <euclid, math> in teach.
        let mut s = Store::new(1);
        let d = Derivation::single(Step::inverse(TEACH));
        derived_insert(&mut s, &d, v("math"), v("euclid"));
        assert!(s.table(TEACH).contains(&v("euclid"), &v("math")));
    }

    #[test]
    fn inverse_step_in_longer_chain() {
        // lecturer_of = class_list⁻¹ o teach⁻¹;
        // INS(lecturer_of, <john, euclid>) must store
        // <n1, john> in class_list and <euclid, n1> in teach.
        let mut s = Store::new(2);
        let d = Derivation::new(vec![Step::inverse(CLASS_LIST), Step::inverse(TEACH)]).unwrap();
        let facts = create_nvc(&mut s, &d, v("john"), v("euclid"));
        assert_eq!(facts[0].function, CLASS_LIST);
        assert_eq!(facts[0].x, Value::Null(NullId(1)));
        assert_eq!(facts[0].y, v("john"));
        assert_eq!(facts[1].function, TEACH);
        assert_eq!(facts[1].x, v("euclid"));
        assert_eq!(facts[1].y, Value::Null(NullId(1)));
        // And exists-NVC finds it back through the inverse orientation.
        assert!(exists_nvc(&s, &d, &v("john"), &v("euclid")).is_some());
    }
}
