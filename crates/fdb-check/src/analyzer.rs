//! The analysis passes.
//!
//! [`analyze_script`] walks a [`CheckStmt`] list once, front to back,
//! interleaving four kinds of checks:
//!
//! 1. **Resolution / well-formedness** — undefined or duplicate names,
//!    derivations that do not chain, wrong endpoints or functionality,
//!    self-reference, steps through derived functions, shadowed base
//!    facts (`FDB001`–`FDB008`). These mirror exactly what the engine
//!    rejects at runtime, so they are all errors.
//! 2. **Three-valued abstract interpretation** — the analyzer maintains
//!    an abstract table per base function holding the script's literal
//!    pairs tagged `True` or `Ambiguous`, replays derived inserts (null
//!    taint) and derived deletes (chain demotion, exactly the paper's
//!    "every member of a negated conjunction becomes ambiguous"), and
//!    flags reads guaranteed to return `ambiguous` (`FDB020`), derived
//!    inserts that must raise a functionality conflict (`FDB021`),
//!    derived deletes with no chain to negate (`FDB022`) and dead writes
//!    (`FDB023`). Anything that opens the world (`LOAD`, `SOURCE`)
//!    mutes these lints — "guaranteed" claims need a closed world.
//!    Transaction control is modeled precisely: `BEGIN`/`SAVEPOINT`
//!    snapshot the abstract state and `ROLLBACK`/`ROLLBACK TO` restore
//!    it, exactly the way the engine restores the database, while
//!    unbalanced statements (`FDB018`) and scripts that end with an open
//!    transaction (`FDB019`) are flagged.
//! 3. **Cost / feasibility** — the final abstract table sizes feed
//!    [`fdb_exec::estimate`] per registered derivation; an unbound
//!    enumeration whose estimated chain count exceeds the configured
//!    budget raises `FDB030`.
//! 4. **Schema design** — a final sweep reuses `fdb-graph`'s lint
//!    (`FDB009` alias pairs, `FDB010` derivable-from-rest) plus an
//!    incremental union-find that flags every `DECLARE` closing a cycle
//!    in the function graph (`FDB031`, the paper's warning that design
//!    analysis without the UFA can be exponential).

use std::collections::{BTreeMap, HashMap, HashSet};
use std::str::FromStr;

use fdb_exec::StepProfile;
use fdb_graph::{lint, PathLimits};
use fdb_types::{Functionality, Schema, Span};

use crate::diag::{sort_diagnostics, tally, Code, Diagnostic};
use crate::script::{CheckStmt, Name, StepRef, TxnOp};

/// Tunables for the analyzer.
#[derive(Clone, Debug)]
pub struct CheckConfig {
    /// `FDB030` fires when a derivation's estimated unbound chain count
    /// exceeds this.
    pub chain_budget: f64,
    /// Abstract chain evaluation gives up (returning "unknown", which
    /// mutes the three-valued lints) after this many frontier expansions.
    pub max_abstract_expansions: usize,
    /// `true` when the script is declared `-- mode: replica`: every
    /// statement a read-only replica engine refuses raises `FDB040`.
    pub replica_mode: bool,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            chain_budget: 10_000.0,
            max_abstract_expansions: 4096,
            replica_mode: false,
        }
    }
}

/// Detects the `-- mode: replica` marker in a script's leading comment
/// block. Blank lines are allowed before and between comments; the first
/// real statement ends the search, so the marker cannot be buried
/// mid-script where a reader would miss it.
pub fn detect_replica_mode(text: &str) -> bool {
    for line in text.lines() {
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        let Some(rest) = t.strip_prefix("--") else {
            return false;
        };
        let body = rest
            .to_ascii_lowercase()
            .split_whitespace()
            .collect::<Vec<_>>()
            .join(" ");
        if body == "mode: replica" || body == "mode:replica" {
            return true;
        }
    }
    false
}

/// Analyzes a whole script. Pure with respect to any database: the only
/// observable side effect is bumping the `fdb.check.*` metrics counters.
pub fn analyze_script(stmts: &[CheckStmt], config: &CheckConfig) -> Vec<Diagnostic> {
    let mut a = Analyzer::new(config);
    for s in stmts {
        a.visit(s);
    }
    let mut diags = a.finish();
    sort_diagnostics(&mut diags);
    bump_counters(&diags);
    diags
}

/// Analyzes a bare schema (no script): only the design pass runs, with
/// diagnostics anchored to no source location (`line == 0`).
pub fn analyze_schema(schema: &Schema, config: &CheckConfig) -> Vec<Diagnostic> {
    let _ = config;
    let mut diags = Vec::new();
    schema_pass(schema, &HashMap::new(), &HashSet::new(), &mut diags);
    sort_diagnostics(&mut diags);
    bump_counters(&diags);
    diags
}

fn bump_counters(diags: &[Diagnostic]) {
    let reg = fdb_obs::registry();
    reg.check_runs.inc();
    let (e, w, i) = tally(diags);
    reg.check_diags_error.add(e as u64);
    reg.check_diags_warn.add(w as u64);
    reg.check_diags_info.add(i as u64);
}

/// Abstract truth of one stored pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Abs {
    /// Literally inserted and not disturbed since.
    True,
    /// Inside some negated conjunction (demoted by a derived delete).
    Amb,
}

/// Result of abstractly evaluating a fact.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AbsTruth {
    True,
    Amb,
    False,
    /// The analyzer cannot tell (nulls, RESOLVE, caps, open world).
    Unknown,
}

/// Abstract state of one base function's table.
#[derive(Clone, Debug, Default)]
struct Table {
    /// Script-literal pairs and their abstract truth.
    pairs: BTreeMap<(String, String), Abs>,
    /// Number of null-valued chain links parked here by derived inserts.
    nulls: usize,
    /// `true` once the table may hold pairs the analyzer cannot
    /// enumerate (after `RESOLVE` rewrote nulls, for example).
    fuzzy: bool,
}

impl Table {
    fn is_sharp(&self) -> bool {
        self.nulls == 0 && !self.fuzzy
    }
}

/// A resolved derivation step over the shadow schema (base names only).
#[derive(Clone, Debug)]
struct RStep {
    function: String,
    inverse: bool,
}

/// One enumerated abstract chain: the value it ends on, whether every
/// link is exact, and the base-table links it traverses.
struct Chain {
    end: String,
    exact: bool,
    links: Vec<(String, (String, String))>,
}

/// A snapshot of the analyzer's mutable abstract state, taken at `BEGIN`
/// and at every `SAVEPOINT` and restored on rollback — the analyzer-side
/// mirror of the engine's undo journal. Read/write ordering state
/// (`seq`, `reads_seen`) deliberately stays live across rollbacks: a
/// read that happened inside a rolled-back transaction still happened.
#[derive(Clone)]
struct AbsState {
    schema: Schema,
    declare_spans: HashMap<String, Span>,
    derived: HashMap<String, Vec<Vec<RStep>>>,
    derive_sites: Vec<(String, Vec<RStep>, Span)>,
    tables: HashMap<String, Table>,
    derived_facts: HashMap<String, BTreeMap<(String, String), Abs>>,
    derived_deleted: HashMap<String, HashSet<(String, String)>>,
    dsu: HashMap<String, String>,
    pending_inserts: HashMap<(String, String, String), (Span, usize)>,
}

/// The abstract shadow of an open transaction.
struct TxnShadow {
    /// Where the `BEGIN` sits (the `FDB019` anchor).
    begin: Span,
    /// State at `BEGIN`, restored by a whole-transaction rollback.
    base: AbsState,
    /// Named savepoints in creation order (same-named replaces).
    savepoints: Vec<(String, AbsState)>,
}

struct Analyzer<'a> {
    cfg: &'a CheckConfig,
    diags: Vec<Diagnostic>,
    schema: Schema,
    declare_spans: HashMap<String, Span>,
    /// In-script derivations per derived function name.
    derived: HashMap<String, Vec<Vec<RStep>>>,
    /// Every successfully registered `DERIVE` site, for the cost pass.
    derive_sites: Vec<(String, Vec<RStep>, Span)>,
    tables: HashMap<String, Table>,
    /// Facts asserted directly on derived functions (via NVC inserts).
    derived_facts: HashMap<String, BTreeMap<(String, String), Abs>>,
    /// Derived facts explicitly deleted (definitely false until the next
    /// write).
    derived_deleted: HashMap<String, HashSet<(String, String)>>,
    /// Union-find over type names, for FDB031.
    dsu: HashMap<String, String>,
    /// Once true, the database may hold state the script does not spell
    /// out; all "guaranteed" lints are muted from here on.
    open_world: bool,
    /// Monotone statement counter for read/write ordering.
    seq: usize,
    /// Base inserts not yet read or deleted: `(f, x, y) → (span, seq)`.
    pending_inserts: HashMap<(String, String, String), (Span, usize)>,
    /// Last read touching each function (directly or via a derivation).
    reads_seen: HashMap<String, usize>,
    /// The open transaction's abstract shadow, if any.
    txn: Option<TxnShadow>,
}

impl<'a> Analyzer<'a> {
    fn new(cfg: &'a CheckConfig) -> Self {
        Analyzer {
            cfg,
            diags: Vec::new(),
            schema: Schema::new(),
            declare_spans: HashMap::new(),
            derived: HashMap::new(),
            derive_sites: Vec::new(),
            tables: HashMap::new(),
            derived_facts: HashMap::new(),
            derived_deleted: HashMap::new(),
            dsu: HashMap::new(),
            open_world: false,
            seq: 0,
            pending_inserts: HashMap::new(),
            reads_seen: HashMap::new(),
            txn: None,
        }
    }

    /// Captures the mutable abstract state (for `BEGIN` / `SAVEPOINT`).
    fn capture(&self) -> AbsState {
        AbsState {
            schema: self.schema.clone(),
            declare_spans: self.declare_spans.clone(),
            derived: self.derived.clone(),
            derive_sites: self.derive_sites.clone(),
            tables: self.tables.clone(),
            derived_facts: self.derived_facts.clone(),
            derived_deleted: self.derived_deleted.clone(),
            dsu: self.dsu.clone(),
            pending_inserts: self.pending_inserts.clone(),
        }
    }

    /// Restores a captured state (for `ROLLBACK` / `ROLLBACK TO`).
    fn restore(&mut self, s: AbsState) {
        self.schema = s.schema;
        self.declare_spans = s.declare_spans;
        self.derived = s.derived;
        self.derive_sites = s.derive_sites;
        self.tables = s.tables;
        self.derived_facts = s.derived_facts;
        self.derived_deleted = s.derived_deleted;
        self.dsu = s.dsu;
        self.pending_inserts = s.pending_inserts;
    }

    fn push(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }

    // ---- union-find over type names (FDB031) ----

    fn dsu_root(&mut self, t: &str) -> String {
        let mut cur = t.to_owned();
        loop {
            match self.dsu.get(&cur) {
                Some(p) if *p != cur => cur = p.clone(),
                _ => break,
            }
        }
        // Path compression.
        let root = cur.clone();
        let mut walk = t.to_owned();
        while let Some(p) = self.dsu.get(&walk).cloned() {
            if p == walk {
                break;
            }
            self.dsu.insert(walk.clone(), root.clone());
            walk = p;
        }
        root
    }

    /// Returns `true` if `a` and `b` were already connected.
    fn dsu_union(&mut self, a: &str, b: &str) -> bool {
        self.dsu.entry(a.to_owned()).or_insert_with(|| a.to_owned());
        self.dsu.entry(b.to_owned()).or_insert_with(|| b.to_owned());
        let ra = self.dsu_root(a);
        let rb = self.dsu_root(b);
        if ra == rb {
            return true;
        }
        self.dsu.insert(ra, rb);
        false
    }

    // ---- the visitor ----

    fn visit(&mut self, stmt: &CheckStmt) {
        // FDB040 fires independently of the abstract interpretation — a
        // replica engine refuses a write no matter what came before it,
        // so an open world does not mute this lint.
        if self.cfg.replica_mode {
            if let CheckStmt::Declare { keyword, .. }
            | CheckStmt::Derive { keyword, .. }
            | CheckStmt::Insert { keyword, .. }
            | CheckStmt::Delete { keyword, .. }
            | CheckStmt::Replace { keyword, .. }
            | CheckStmt::Resolve { keyword }
            | CheckStmt::Txn { keyword, .. } = stmt
            {
                self.diags.push(
                    Diagnostic::new(
                        Code::ReplicaWrite,
                        *keyword,
                        "write statement in a replica-mode script: a read-only \
                         replica engine refuses this at runtime",
                    )
                    .with_hint(
                        "run this script on the primary, or PROMOTE the replica \
                         before writing",
                    ),
                );
            }
        }
        if self.open_world {
            return;
        }
        self.seq += 1;
        match stmt {
            CheckStmt::Declare {
                name,
                domain,
                range,
                functionality,
                ..
            } => self.visit_declare(name, domain, range, functionality),
            CheckStmt::Derive { name, steps, .. } => self.visit_derive(name, steps),
            CheckStmt::Insert { function, x, y, .. } => self.visit_insert(function, x, y, true),
            CheckStmt::Delete { function, x, y, .. } => self.visit_delete(function, x, y, true),
            CheckStmt::Replace {
                function, old, new, ..
            } => {
                // A replace is delete-old + insert-new with the intent
                // spelled out, so the dead-write and no-chain lints stay
                // quiet; the conflict lint still applies to the insert.
                self.visit_delete(function, &old.0, &old.1, false);
                self.visit_insert(function, &new.0, &new.1, false);
            }
            CheckStmt::Query { function, x, .. } => self.visit_query(function, x),
            CheckStmt::Truth { function, x, y, .. } => self.visit_truth(function, x, y),
            CheckStmt::Inverse { function, y, .. } => self.visit_inverse(function, y),
            CheckStmt::Read { function, .. } => {
                if self.resolve(function).is_some() {
                    self.mark_read(&function.text);
                }
            }
            CheckStmt::Eval { steps, .. } => {
                for s in steps {
                    if self.resolve(&s.name).is_some() {
                        self.mark_read(&s.name.text);
                    }
                }
            }
            CheckStmt::Resolve { .. } => {
                // RESOLVE may discharge negated conjunctions and
                // substitute nulls via functional dependencies; the
                // analyzer cannot predict which, so everything ambiguous
                // becomes unknown.
                for t in self.tables.values_mut() {
                    if t.nulls > 0 || t.pairs.values().any(|a| *a == Abs::Amb) {
                        t.fuzzy = true;
                        t.nulls = 0;
                    }
                    for v in t.pairs.values_mut() {
                        if *v == Abs::Amb {
                            *v = Abs::True; // optimistic: resolved either way
                        }
                    }
                    if t.fuzzy {
                        t.pairs.retain(|_, a| *a == Abs::True);
                    }
                }
                self.derived_deleted.clear();
            }
            CheckStmt::Txn { keyword, op, name } => self.visit_txn(*keyword, *op, name.as_ref()),
            CheckStmt::Other { opens_world, .. } => {
                if *opens_world {
                    self.open_world = true;
                }
            }
        }
    }

    /// Transaction control: balance checking (`FDB018`) plus exact
    /// snapshot/restore of the abstract state, mirroring the engine.
    fn visit_txn(&mut self, keyword: Span, op: TxnOp, name: Option<&Name>) {
        match op {
            TxnOp::Begin => {
                if self.txn.is_some() {
                    self.push(
                        Diagnostic::new(
                            Code::UnbalancedTxn,
                            keyword,
                            "BEGIN inside an open transaction",
                        )
                        .with_hint("transactions do not nest; use SAVEPOINT for nested scopes"),
                    );
                    return;
                }
                self.txn = Some(TxnShadow {
                    begin: keyword,
                    base: self.capture(),
                    savepoints: Vec::new(),
                });
            }
            TxnOp::Commit => {
                if self.txn.take().is_none() {
                    self.push(
                        Diagnostic::new(
                            Code::UnbalancedTxn,
                            keyword,
                            "COMMIT without an open BEGIN",
                        )
                        .with_hint("open a transaction with BEGIN first"),
                    );
                }
            }
            TxnOp::Rollback => match self.txn.take() {
                Some(shadow) => self.restore(shadow.base),
                None => self.push(
                    Diagnostic::new(
                        Code::UnbalancedTxn,
                        keyword,
                        "ROLLBACK without an open BEGIN",
                    )
                    .with_hint("open a transaction with BEGIN first"),
                ),
            },
            TxnOp::Savepoint => {
                let state = self.capture();
                let n = name.map(|n| n.text.clone()).unwrap_or_default();
                let Some(t) = self.txn.as_mut() else {
                    self.push(
                        Diagnostic::new(
                            Code::UnbalancedTxn,
                            keyword,
                            "SAVEPOINT without an open BEGIN",
                        )
                        .with_hint("open a transaction with BEGIN first"),
                    );
                    return;
                };
                t.savepoints.retain(|(s, _)| *s != n);
                t.savepoints.push((n, state));
            }
            TxnOp::RollbackTo => {
                let target = name.map(|n| n.text.clone()).unwrap_or_default();
                let anchor = name.map_or(keyword, |n| n.span);
                let Some(t) = self.txn.as_mut() else {
                    self.push(
                        Diagnostic::new(
                            Code::UnbalancedTxn,
                            keyword,
                            "ROLLBACK TO without an open BEGIN",
                        )
                        .with_hint("open a transaction with BEGIN first"),
                    );
                    return;
                };
                let state = match t.savepoints.iter().rposition(|(s, _)| *s == target) {
                    Some(pos) => {
                        t.savepoints.truncate(pos + 1);
                        Some(t.savepoints[pos].1.clone())
                    }
                    None => None,
                };
                match state {
                    Some(s) => self.restore(s),
                    None => self.push(
                        Diagnostic::new(
                            Code::UnbalancedTxn,
                            anchor,
                            format!("ROLLBACK TO unknown savepoint `{target}`"),
                        )
                        .with_hint("set it with SAVEPOINT <name> inside the transaction first"),
                    ),
                }
            }
        }
    }

    /// Resolves a referenced function name, raising FDB001 when unknown.
    fn resolve(&mut self, name: &Name) -> Option<()> {
        if self.schema.function_by_name(&name.text).is_some() {
            return Some(());
        }
        self.push(
            Diagnostic::new(
                Code::UndefinedFunction,
                name.span,
                format!("unknown function `{}`", name.text),
            )
            .with_hint(format!("DECLARE {}: … before using it", name.text)),
        );
        None
    }

    fn visit_declare(&mut self, name: &Name, domain: &str, range: &str, functionality: &Name) {
        if self.schema.function_by_name(&name.text).is_some() {
            let first = self.declare_spans.get(&name.text).copied();
            let mut d = Diagnostic::new(
                Code::DuplicateDeclare,
                name.span,
                format!("function `{}` is already declared", name.text),
            );
            if let Some(span) = first {
                d = d.with_hint(format!("first declared at line {}", span.line));
            }
            self.push(d);
            return;
        }
        let Ok(f) = Functionality::from_str(&functionality.text) else {
            self.push(
                Diagnostic::new(
                    Code::Syntax,
                    functionality.span,
                    format!("unknown functionality `{}`", functionality.text),
                )
                .with_hint("use one-one, one-many, many-one or many-many"),
            );
            return;
        };
        if self.dsu_union(domain, range) {
            self.push(
                Diagnostic::new(
                    Code::CycleWithoutUfa,
                    name.span,
                    format!(
                        "`{}` closes a cycle in the function graph ({} and {} were already connected)",
                        name.text, domain, range
                    ),
                )
                .with_hint(
                    "without the Unique Form Assumption, cycle analysis can be exponential; \
                     run the design aid to decide which edge is derived",
                ),
            );
        }
        if self.schema.declare(&name.text, domain, range, f).is_ok() {
            self.declare_spans.insert(name.text.clone(), name.span);
            self.tables.insert(name.text.clone(), Table::default());
        }
    }

    fn visit_derive(&mut self, name: &Name, steps: &[StepRef]) {
        let Some(target) = self.schema.function_by_name(&name.text).cloned() else {
            self.push(
                Diagnostic::new(
                    Code::UndefinedFunction,
                    name.span,
                    format!("cannot derive undeclared function `{}`", name.text),
                )
                .with_hint(format!("DECLARE {}: … before the DERIVE", name.text)),
            );
            return;
        };
        // Self-reference and steps through derived functions.
        for s in steps {
            if s.name.text == name.text {
                self.push(
                    Diagnostic::new(
                        Code::SelfReferential,
                        s.name.span,
                        format!("derivation of `{}` mentions itself", name.text),
                    )
                    .with_hint("a derivation must be built from other functions"),
                );
                return;
            }
            if self.derived.contains_key(&s.name.text) {
                self.push(
                    Diagnostic::new(
                        Code::StepThroughDerived,
                        s.name.span,
                        format!(
                            "derivation step `{}` is itself a derived function",
                            s.name.text
                        ),
                    )
                    .with_hint(format!(
                        "inline the derivation of `{}` into this one",
                        s.name.text
                    )),
                );
                return;
            }
        }
        // Resolve every step.
        let mut rsteps = Vec::with_capacity(steps.len());
        for s in steps {
            if self.schema.function_by_name(&s.name.text).is_none() {
                self.push(
                    Diagnostic::new(
                        Code::UndefinedFunction,
                        s.name.span,
                        format!("unknown function `{}` in derivation", s.name.text),
                    )
                    .with_hint(format!("DECLARE {}: … before the DERIVE", s.name.text)),
                );
                return;
            }
            rsteps.push(RStep {
                function: s.name.text.clone(),
                inverse: s.inverse,
            });
        }
        // Chaining: effective range of each step must equal the effective
        // domain of the next.
        let ends = |r: &RStep| {
            let def = self.schema.function_by_name(&r.function).expect("resolved");
            if r.inverse {
                (def.range, def.domain)
            } else {
                (def.domain, def.range)
            }
        };
        let (start, mut cur) = ends(&rsteps[0]);
        for (i, r) in rsteps.iter().enumerate().skip(1) {
            let (d, rng) = ends(r);
            if d != cur {
                let msg = format!(
                    "step `{}` expects domain {} but the previous step ends at {}",
                    steps[i].name.text,
                    self.schema.type_name(d),
                    self.schema.type_name(cur)
                );
                self.push(
                    Diagnostic::new(Code::BrokenChain, steps[i].name.span, msg)
                        .with_hint("insert an inverse (^-1) or an intermediate function"),
                );
                return;
            }
            cur = rng;
        }
        if (start, cur) != (target.domain, target.range) {
            self.push(
                Diagnostic::new(
                    Code::EndpointMismatch,
                    name.span,
                    format!(
                        "derivation maps {} -> {} but `{}` is declared {} -> {}",
                        self.schema.type_name(start),
                        self.schema.type_name(cur),
                        name.text,
                        self.schema.type_name(target.domain),
                        self.schema.type_name(target.range)
                    ),
                )
                .with_hint("adjust the steps or the declaration so the endpoints agree"),
            );
            return;
        }
        // Composed functionality must equal the declared one.
        let composed = rsteps
            .iter()
            .map(|r| {
                let f = self
                    .schema
                    .function_by_name(&r.function)
                    .expect("resolved")
                    .functionality;
                if r.inverse {
                    f.inverse()
                } else {
                    f
                }
            })
            .reduce(Functionality::compose)
            .expect("derivations are non-empty");
        if composed != target.functionality {
            self.push(
                Diagnostic::new(
                    Code::FunctionalityMismatch,
                    name.span,
                    format!(
                        "derivation composes to {} but `{}` is declared {}",
                        composed, name.text, target.functionality
                    ),
                )
                .with_hint(format!("declare `{}` as ({})", name.text, composed)),
            );
            return;
        }
        // A derivation may not shadow facts already stored on the target.
        let has_facts = self
            .tables
            .get(&name.text)
            .is_some_and(|t| !t.pairs.is_empty() || t.nulls > 0 || t.fuzzy);
        if has_facts {
            self.push(
                Diagnostic::new(
                    Code::ShadowsFacts,
                    name.span,
                    format!(
                        "`{}` already holds stored facts; deriving it would shadow them",
                        name.text
                    ),
                )
                .with_hint("move the DERIVE before the INSERTs, or DELETE the facts first"),
            );
            return;
        }
        self.derived
            .entry(name.text.clone())
            .or_default()
            .push(rsteps.clone());
        self.derive_sites
            .push((name.text.clone(), rsteps, name.span));
    }

    fn visit_insert(&mut self, function: &Name, x: &str, y: &str, lint: bool) {
        if self.resolve(function).is_none() {
            return;
        }
        let fname = &function.text;
        // Any write can rebuild chains, so previously deleted derived
        // facts are no longer definitely false.
        self.derived_deleted.clear();
        if let Some(derivs) = self.derived.get(fname).cloned() {
            // Derived insert. A guaranteed functionality conflict?
            let def = self.schema.function_by_name(fname).expect("resolved");
            if lint && def.functionality.is_functional() {
                if let Some((exact, _)) = self.eval_image(fname, x) {
                    if let Some(prev) = exact.iter().find(|v| v.as_str() != y) {
                        self.push(
                            Diagnostic::new(
                                Code::GuaranteedConflict,
                                function.span,
                                format!(
                                    "insert of `{fname}({x}, {y})` must conflict: \
                                     `{fname}({x}) = {prev}` already holds and `{fname}` is {}",
                                    def.functionality
                                ),
                            )
                            .with_hint(format!(
                                "REPLACE {fname}({x}, {prev}) WITH ({x}, {y}) instead"
                            )),
                        );
                    }
                }
            }
            // Replay the engine's choice: the shortest (first-registered)
            // derivation carries the new fact.
            let d = derivs
                .iter()
                .min_by_key(|d| d.len())
                .expect("derived functions have at least one derivation");
            if d.len() == 1 {
                // Single-step derived inserts write a concrete base pair.
                let step = &d[0];
                let pair = if step.inverse {
                    (y.to_owned(), x.to_owned())
                } else {
                    (x.to_owned(), y.to_owned())
                };
                if let Some(t) = self.tables.get_mut(&step.function) {
                    t.pairs.insert(pair, Abs::True);
                }
            } else {
                // Longer chains introduce nulls in every touched table.
                for step in d {
                    if let Some(t) = self.tables.get_mut(&step.function) {
                        t.nulls += 1;
                    }
                }
                self.derived_facts
                    .entry(fname.clone())
                    .or_default()
                    .insert((x.to_owned(), y.to_owned()), Abs::True);
            }
        } else {
            if let Some(t) = self.tables.get_mut(fname) {
                t.pairs.insert((x.to_owned(), y.to_owned()), Abs::True);
            }
            if lint {
                self.pending_inserts.insert(
                    (fname.clone(), x.to_owned(), y.to_owned()),
                    (function.span, self.seq),
                );
            }
        }
    }

    fn visit_delete(&mut self, function: &Name, x: &str, y: &str, lint: bool) {
        if self.resolve(function).is_none() {
            return;
        }
        let fname = function.text.clone();
        if let Some(derivs) = self.derived.get(&fname).cloned() {
            // An NVC-inserted fact deletes directly.
            if let Some(facts) = self.derived_facts.get_mut(&fname) {
                if facts.remove(&(x.to_owned(), y.to_owned())).is_some() {
                    self.derived_deleted
                        .entry(fname)
                        .or_default()
                        .insert((x.to_owned(), y.to_owned()));
                    return;
                }
            }
            // Otherwise enumerate supporting chains and demote them.
            let mut all_links: Vec<(String, (String, String))> = Vec::new();
            let mut any_chain = false;
            let mut unknown = false;
            for d in &derivs {
                match self.chase(d, x) {
                    None => unknown = true,
                    Some(chains) => {
                        for c in chains.iter().filter(|c| c.end == y) {
                            any_chain = true;
                            all_links.extend(c.links.iter().cloned());
                        }
                    }
                }
            }
            if any_chain {
                // Every chain must be broken: each gets a negated
                // conjunction, and every member of one is ambiguous.
                for (f, pair) in all_links {
                    if let Some(t) = self.tables.get_mut(&f) {
                        if let Some(a) = t.pairs.get_mut(&pair) {
                            *a = Abs::Amb;
                        }
                    }
                }
                self.derived_deleted
                    .entry(fname)
                    .or_default()
                    .insert((x.to_owned(), y.to_owned()));
            } else if !unknown && lint {
                self.push(
                    Diagnostic::new(
                        Code::UndischargeableDelete,
                        function.span,
                        format!(
                            "derived delete of `{fname}({x}, {y})` has no supporting chain: \
                             the fact is already false and there is no negated conjunction \
                             to discharge"
                        ),
                    )
                    .with_hint("drop the DELETE, or insert the supporting facts first"),
                );
            }
        } else {
            // Base delete.
            if let Some(t) = self.tables.get_mut(&fname) {
                t.pairs.remove(&(x.to_owned(), y.to_owned()));
            }
            let key = (fname.clone(), x.to_owned(), y.to_owned());
            if let Some((ispan, iseq)) = self.pending_inserts.remove(&key) {
                let read_since = self.reads_seen.get(&fname).is_some_and(|&r| r > iseq);
                if lint && !read_since {
                    self.push(
                        Diagnostic::new(
                            Code::DeadWrite,
                            function.span,
                            format!(
                                "`{fname}({x}, {y})` was inserted at line {} and is deleted \
                                 here without ever being read",
                                ispan.line
                            ),
                        )
                        .with_hint("drop both statements, or query the fact in between"),
                    );
                }
            }
        }
    }

    fn visit_query(&mut self, function: &Name, x: &str) {
        if self.resolve(function).is_none() {
            return;
        }
        self.mark_read(&function.text);
        if let Some((exact, amb)) = self.eval_image(&function.text, x) {
            if exact.is_empty() && !amb.is_empty() {
                let fname = &function.text;
                self.push(
                    Diagnostic::new(
                        Code::GuaranteedAmbiguous,
                        function.span,
                        format!(
                            "query `{fname}({x})` is guaranteed to return only ambiguous \
                             results"
                        ),
                    )
                    .with_hint(
                        "a derived DELETE left every candidate inside a negated conjunction",
                    ),
                );
            }
        }
    }

    fn visit_truth(&mut self, function: &Name, x: &str, y: &str) {
        if self.resolve(function).is_none() {
            return;
        }
        self.mark_read(&function.text);
        if self.eval_truth(&function.text, x, y) == AbsTruth::Amb {
            let fname = &function.text;
            self.push(
                Diagnostic::new(
                    Code::GuaranteedAmbiguous,
                    function.span,
                    format!("truth of `{fname}({x}, {y})` is guaranteed ambiguous"),
                )
                .with_hint(
                    "a derived DELETE placed this fact in a negated conjunction; \
                     RESOLVE or re-INSERT to disambiguate",
                ),
            );
        }
    }

    fn visit_inverse(&mut self, function: &Name, y: &str) {
        if self.resolve(function).is_none() {
            return;
        }
        self.mark_read(&function.text);
        if let Some((exact, amb)) = self.eval_inverse_image(&function.text, y) {
            if exact.is_empty() && !amb.is_empty() {
                let fname = &function.text;
                self.push(
                    Diagnostic::new(
                        Code::GuaranteedAmbiguous,
                        function.span,
                        format!(
                            "inverse query `{fname}^-1({y})` is guaranteed to return only \
                             ambiguous results"
                        ),
                    )
                    .with_hint(
                        "a derived DELETE left every candidate inside a negated conjunction",
                    ),
                );
            }
        }
    }

    /// Marks a read of `f` (and, when derived, its support functions).
    fn mark_read(&mut self, f: &str) {
        self.reads_seen.insert(f.to_owned(), self.seq);
        if let Some(derivs) = self.derived.get(f) {
            let support: Vec<String> = derivs
                .iter()
                .flatten()
                .map(|r| r.function.clone())
                .collect();
            for s in support {
                self.reads_seen.insert(s, self.seq);
            }
        }
    }

    // ---- abstract evaluation ----

    /// Enumerates abstract chains from `x` through `steps`. `None` means
    /// the result cannot be trusted (nulls, fuzziness, caps).
    fn chase(&self, steps: &[RStep], x: &str) -> Option<Vec<Chain>> {
        for r in steps {
            if !self.tables.get(&r.function)?.is_sharp() {
                return None;
            }
        }
        let mut frontier = vec![Chain {
            end: x.to_owned(),
            exact: true,
            links: Vec::new(),
        }];
        let mut budget = self.cfg.max_abstract_expansions;
        for r in steps {
            let table = self.tables.get(&r.function)?;
            let mut next = Vec::new();
            for c in &frontier {
                for ((a, b), abs) in &table.pairs {
                    let (from, to) = if r.inverse { (b, a) } else { (a, b) };
                    if from != &c.end {
                        continue;
                    }
                    if budget == 0 {
                        return None;
                    }
                    budget -= 1;
                    let mut links = c.links.clone();
                    links.push((r.function.clone(), (a.clone(), b.clone())));
                    next.push(Chain {
                        end: to.clone(),
                        exact: c.exact && *abs == Abs::True,
                        links,
                    });
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        Some(frontier)
    }

    /// Abstract truth of `f(x, y)`.
    fn eval_truth(&self, f: &str, x: &str, y: &str) -> AbsTruth {
        let key = (x.to_owned(), y.to_owned());
        if let Some(derivs) = self.derived.get(f) {
            if self
                .derived_deleted
                .get(f)
                .is_some_and(|s| s.contains(&key))
            {
                return AbsTruth::False;
            }
            if let Some(facts) = self.derived_facts.get(f) {
                match facts.get(&key) {
                    Some(Abs::True) => return AbsTruth::True,
                    Some(Abs::Amb) => return AbsTruth::Amb,
                    None => {}
                }
            }
            let mut best = AbsTruth::False;
            for d in derivs {
                match self.chase(d, x) {
                    None => {
                        if best != AbsTruth::True {
                            best = AbsTruth::Unknown;
                        }
                    }
                    Some(chains) => {
                        for c in chains.iter().filter(|c| c.end == y) {
                            if c.exact {
                                return AbsTruth::True;
                            }
                            if best == AbsTruth::False {
                                best = AbsTruth::Amb;
                            }
                        }
                    }
                }
            }
            best
        } else {
            match self.tables.get(f) {
                None => AbsTruth::Unknown,
                Some(t) => match t.pairs.get(&key) {
                    Some(Abs::True) => AbsTruth::True,
                    Some(Abs::Amb) => AbsTruth::Amb,
                    None if t.is_sharp() => AbsTruth::False,
                    None => AbsTruth::Unknown,
                },
            }
        }
    }

    /// Abstract image of `x` under `f`: `(exact values, ambiguous-only
    /// values)`, or `None` when unknowable.
    fn eval_image(&self, f: &str, x: &str) -> Option<(Vec<String>, Vec<String>)> {
        let mut exact = HashSet::new();
        let mut amb = HashSet::new();
        if let Some(derivs) = self.derived.get(f) {
            for d in derivs {
                for c in self.chase(d, x)? {
                    if c.exact {
                        exact.insert(c.end);
                    } else {
                        amb.insert(c.end);
                    }
                }
            }
            if let Some(facts) = self.derived_facts.get(f) {
                for ((a, b), abs) in facts {
                    if a == x {
                        match abs {
                            Abs::True => exact.insert(b.clone()),
                            Abs::Amb => amb.insert(b.clone()),
                        };
                    }
                }
            }
            if let Some(deleted) = self.derived_deleted.get(f) {
                for (a, b) in deleted {
                    if a == x {
                        exact.remove(b);
                        amb.remove(b);
                    }
                }
            }
        } else {
            let t = self.tables.get(f)?;
            if !t.is_sharp() {
                return None;
            }
            for ((a, b), abs) in &t.pairs {
                if a == x {
                    match abs {
                        Abs::True => exact.insert(b.clone()),
                        Abs::Amb => amb.insert(b.clone()),
                    };
                }
            }
        }
        let amb_only: Vec<String> = amb.difference(&exact).cloned().collect();
        Some((exact.into_iter().collect(), amb_only))
    }

    /// Abstract inverse image of `y` under `f` (same contract as
    /// [`Self::eval_image`]).
    fn eval_inverse_image(&self, f: &str, y: &str) -> Option<(Vec<String>, Vec<String>)> {
        let mut exact = HashSet::new();
        let mut amb = HashSet::new();
        if let Some(derivs) = self.derived.get(f) {
            for d in derivs {
                let inverted: Vec<RStep> = d
                    .iter()
                    .rev()
                    .map(|r| RStep {
                        function: r.function.clone(),
                        inverse: !r.inverse,
                    })
                    .collect();
                for c in self.chase(&inverted, y)? {
                    if c.exact {
                        exact.insert(c.end);
                    } else {
                        amb.insert(c.end);
                    }
                }
            }
            if let Some(facts) = self.derived_facts.get(f) {
                for ((a, b), abs) in facts {
                    if b == y {
                        match abs {
                            Abs::True => exact.insert(a.clone()),
                            Abs::Amb => amb.insert(a.clone()),
                        };
                    }
                }
            }
            if let Some(deleted) = self.derived_deleted.get(f) {
                for (a, b) in deleted {
                    if b == y {
                        exact.remove(a);
                        amb.remove(a);
                    }
                }
            }
        } else {
            let t = self.tables.get(f)?;
            if !t.is_sharp() {
                return None;
            }
            for ((a, b), abs) in &t.pairs {
                if b == y {
                    match abs {
                        Abs::True => exact.insert(a.clone()),
                        Abs::Amb => amb.insert(a.clone()),
                    };
                }
            }
        }
        let amb_only: Vec<String> = amb.difference(&exact).cloned().collect();
        Some((exact.into_iter().collect(), amb_only))
    }

    // ---- final passes ----

    fn finish(mut self) -> Vec<Diagnostic> {
        if !self.open_world {
            if let Some(t) = &self.txn {
                self.diags.push(
                    Diagnostic::new(
                        Code::UnclosedTxn,
                        t.begin,
                        "the transaction opened here is never committed or rolled back",
                    )
                    .with_hint(
                        "end the script with COMMIT (or ROLLBACK); \
                         a durable store discards uncommitted updates at recovery",
                    ),
                );
            }
            self.cost_pass();
            let derived_names: HashSet<String> = self.derived.keys().cloned().collect();
            schema_pass(
                &self.schema,
                &self.declare_spans,
                &derived_names,
                &mut self.diags,
            );
        }
        self.diags
    }

    /// FDB030: estimated unbound chain count per registered derivation.
    fn cost_pass(&mut self) {
        let mut findings = Vec::new();
        for (name, rsteps, span) in &self.derive_sites {
            let stats: Vec<StepProfile> = rsteps
                .iter()
                .map(|r| {
                    let t = self.tables.get(&r.function);
                    let (pairs, nulls): (Vec<_>, usize) = match t {
                        Some(t) => (t.pairs.keys().cloned().collect(), t.nulls),
                        None => (Vec::new(), 0),
                    };
                    let rows = (pairs.len() + nulls) as f64;
                    let dx = pairs.iter().map(|(a, _)| a).collect::<HashSet<_>>().len();
                    let dy = pairs.iter().map(|(_, b)| b).collect::<HashSet<_>>().len();
                    let fan = |distinct: usize| {
                        if distinct == 0 {
                            0.0
                        } else {
                            rows / distinct as f64
                        }
                    };
                    let (fan_fwd, fan_bwd) = if r.inverse {
                        (fan(dy), fan(dx))
                    } else {
                        (fan(dx), fan(dy))
                    };
                    StepProfile {
                        rows,
                        fan_fwd,
                        fan_bwd,
                        seed_left: None,
                        seed_right: None,
                    }
                })
                .collect();
            let plan = fdb_exec::estimate(&stats);
            if plan.est_chains > self.cfg.chain_budget {
                findings.push(
                    Diagnostic::new(
                        Code::ChainBudget,
                        *span,
                        format!(
                            "enumerating `{name}` is estimated at {:.0} chains, over the \
                             budget of {:.0}",
                            plan.est_chains, self.cfg.chain_budget
                        ),
                    )
                    .with_hint(
                        "query with a bound endpoint, set a TIMEOUT, or raise --chain-budget",
                    ),
                );
            }
        }
        self.diags.extend(findings);
    }
}

/// FDB009/FDB010 over a finished schema, reusing `fdb-graph`'s lint.
fn schema_pass(
    schema: &Schema,
    declare_spans: &HashMap<String, Span>,
    derived_names: &HashSet<String>,
    diags: &mut Vec<Diagnostic>,
) {
    if schema.is_empty() {
        return;
    }
    let report = lint::diagnose(schema, PathLimits::default());
    let span_of = |name: &str| declare_spans.get(name).copied().unwrap_or_default();
    for (a, b) in &report.mutually_derivable_pairs {
        let (na, nb) = (&schema.function(*a).name, &schema.function(*b).name);
        if derived_names.contains(na) || derived_names.contains(nb) {
            continue;
        }
        // Anchor at whichever of the pair was declared later.
        let (anchor, other) = if span_of(na) >= span_of(nb) {
            (na, nb)
        } else {
            (nb, na)
        };
        diags.push(
            Diagnostic::new(
                Code::AliasPair,
                span_of(anchor),
                format!("functions `{anchor}` and `{other}` are mutually derivable aliases"),
            )
            .with_hint(format!(
                "keep one as a base function and DERIVE the other (e.g. DERIVE {anchor} = {other}^-1)"
            )),
        );
    }
    for f in &report.derivable {
        let name = &schema.function(*f).name;
        if derived_names.contains(name) {
            continue;
        }
        diags.push(
            Diagnostic::new(
                Code::Derivable,
                span_of(name),
                format!("function `{name}` is syntactically derivable from the rest of the schema"),
            )
            .with_hint(
                "under the Unique Form Assumption this function is derived; \
                 DERIVE it or drop it from the conceptual schema",
            ),
        );
    }
}
