//! `fdb-check` — whole-program static analysis for functional-database
//! schemas and FDBL scripts.
//!
//! The paper's machinery (derivation identification, generalized-
//! dependency conflicts, three-valued truth under negated conjunctions)
//! is exact enough that many runtime failures are *decidable from the
//! script text alone*. This crate analyzes a script without executing
//! anything and reports typed diagnostics:
//!
//! | range    | pass                                  | severity |
//! |----------|---------------------------------------|----------|
//! | `FDB00x` | name/type/derivation well-formedness  | error    |
//! | `FDB009`/`FDB010` | schema design (via `fdb-graph`) | info   |
//! | `FDB018`/`FDB019` | transaction structure          | error/warn |
//! | `FDB02x` | three-valued abstract interpretation  | warn     |
//! | `FDB030` | cost/feasibility (via `fdb-exec`)     | warn     |
//! | `FDB031` | cycle closed without the UFA          | info     |
//! | `FDB040` | write in a `-- mode: replica` script  | error    |
//! | `FDB05x` | data-aware discovery (via [`discover`]) | info/warn |
//!
//! Entry points: [`analyze_script`] over a [`CheckStmt`] list (the
//! spanned IR that `fdb-lang` lowers its AST into) and [`analyze_schema`]
//! over a bare [`fdb_types::Schema`]. Output renders as plain text
//! ([`render_text`]), a JSON array ([`render_json`]) or a SARIF 2.1.0
//! log ([`render_sarif`]); CI noise is managed with [`Baseline`] files.
//!
//! The analyzer is pure: it never touches a store, never mutates the
//! schema it is given, and its only observable side effect is bumping
//! the `fdb.check.*` observability counters. The [`discover`] module
//! extends the same guarantee to the *data-aware* pass: it reads a store
//! but never writes one.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod analyzer;
pub mod baseline;
pub mod diag;
pub mod discover;
pub mod sarif;
pub mod script;

pub use analyzer::{analyze_schema, analyze_script, detect_replica_mode, CheckConfig};
pub use baseline::{baseline_key, Baseline};
pub use diag::{
    render_content, render_json, render_text, sort_diagnostics, summary_line, tally, Code,
    Diagnostic, Severity,
};
pub use discover::{
    discover, discover_governed, discovery_diagnostics, discovery_to_content,
    invalidation_diagnostic, minimal_repair, render_discovery_text, CandidateDerivation,
    DiscoverConfig, DiscoveredFd, DiscoveryReport, Violation,
};
pub use sarif::{render_sarif, render_sarif_all};
pub use script::{CheckStmt, Name, StepRef, TxnOp};
