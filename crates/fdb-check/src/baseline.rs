//! Baseline files: suppressing known findings in CI.
//!
//! A baseline is a plain text file with one key per line, in the form
//! `CODE file:line` (e.g. `FDB010 scripts/university.fdb:3`). `fdb-lint
//! --baseline FILE` drops findings whose key appears in the file, so a CI
//! gate can be turned on for a repository with pre-existing findings and
//! still fail on new ones. `--write-baseline` regenerates the file from
//! the current findings. Blank lines and `#` comments are ignored.

use std::collections::BTreeSet;

use crate::diag::Diagnostic;

/// A set of suppressed finding keys.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    keys: BTreeSet<String>,
}

/// The baseline key for a finding in a given file.
pub fn baseline_key(file: &str, d: &Diagnostic) -> String {
    format!("{} {}:{}", d.code, file, d.span.line)
}

impl Baseline {
    /// Parses baseline text. Never fails: junk lines are kept verbatim as
    /// keys (they simply match nothing).
    pub fn parse(text: &str) -> Self {
        let keys = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(str::to_owned)
            .collect();
        Baseline { keys }
    }

    /// Builds a baseline covering `diags` as found in `file`.
    pub fn from_diagnostics(file: &str, diags: &[Diagnostic]) -> Self {
        let keys = diags.iter().map(|d| baseline_key(file, d)).collect();
        Baseline { keys }
    }

    /// Merges another baseline into this one (multi-file runs).
    pub fn merge(&mut self, other: Baseline) {
        self.keys.extend(other.keys);
    }

    /// Whether the finding is suppressed.
    pub fn contains(&self, file: &str, d: &Diagnostic) -> bool {
        self.keys.contains(&baseline_key(file, d))
    }

    /// Drops suppressed findings, returning the survivors.
    pub fn filter(&self, file: &str, diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
        diags
            .into_iter()
            .filter(|d| !self.contains(file, d))
            .collect()
    }

    /// Renders the baseline file (sorted, newline-terminated, with a
    /// header comment).
    pub fn render(&self) -> String {
        let mut out = String::from("# fdb-lint baseline: one `CODE file:line` key per line\n");
        for k in &self.keys {
            out.push_str(k);
            out.push('\n');
        }
        out
    }

    /// The suppressed keys, in sorted order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.keys.iter().map(String::as_str)
    }

    /// Keys that matched none of the given per-file findings — stale
    /// entries left behind after the underlying finding was fixed.
    /// `findings` pairs each linted file with its *pre-filter*
    /// diagnostics.
    pub fn stale_keys(&self, findings: &[(String, Vec<Diagnostic>)]) -> Vec<String> {
        let live: BTreeSet<String> = findings
            .iter()
            .flat_map(|(file, diags)| diags.iter().map(|d| baseline_key(file, d)))
            .collect();
        self.keys
            .iter()
            .filter(|k| !live.contains(*k))
            .cloned()
            .collect()
    }

    /// Drops the given keys (baseline pruning). Returns how many were
    /// actually removed.
    pub fn remove_keys(&mut self, keys: &[String]) -> usize {
        let before = self.keys.len();
        for k in keys {
            self.keys.remove(k);
        }
        before - self.keys.len()
    }

    /// Number of suppressed keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the baseline is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Code;
    use fdb_types::Span;

    fn d(code: Code, line: u32) -> Diagnostic {
        Diagnostic::new(code, Span::new(line, 0, 4), "m")
    }

    #[test]
    fn roundtrips_through_render_and_parse() {
        let diags = vec![d(Code::Derivable, 3), d(Code::DeadWrite, 9)];
        let b = Baseline::from_diagnostics("a.fdb", &diags);
        let again = Baseline::parse(&b.render());
        assert_eq!(b, again);
        assert_eq!(again.len(), 2);
    }

    #[test]
    fn filter_drops_only_matching_file_and_line() {
        let b = Baseline::parse("FDB010 a.fdb:3\n");
        let keep = b.filter("a.fdb", vec![d(Code::Derivable, 3), d(Code::Derivable, 4)]);
        assert_eq!(keep.len(), 1);
        assert_eq!(keep[0].span.line, 4);
        // Same finding in another file is not suppressed.
        let keep = b.filter("b.fdb", vec![d(Code::Derivable, 3)]);
        assert_eq!(keep.len(), 1);
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let b = Baseline::parse("# header\n\n  FDB023 x.fdb:1  \n");
        assert_eq!(b.len(), 1);
        assert!(b.contains("x.fdb", &d(Code::DeadWrite, 1)));
    }

    #[test]
    fn stale_keys_and_pruning() {
        let mut b = Baseline::parse("FDB010 a.fdb:3\nFDB023 gone.fdb:7\n");
        let findings = vec![("a.fdb".to_owned(), vec![d(Code::Derivable, 3)])];
        let stale = b.stale_keys(&findings);
        assert_eq!(stale, vec!["FDB023 gone.fdb:7".to_owned()]);
        assert_eq!(b.remove_keys(&stale), 1);
        assert_eq!(b.len(), 1);
        assert!(b.stale_keys(&findings).is_empty());
        // Keys iterate in sorted order (render is deduplicated by the
        // BTreeSet itself).
        assert_eq!(b.keys().collect::<Vec<_>>(), vec!["FDB010 a.fdb:3"]);
    }
}
