//! Data-aware discovery: mining stored extensions for incidental
//! functionality, candidate derivations, and minimal cardinality repairs.
//!
//! The paper's Method 2.1 is a designer-interaction loop: the system
//! *proposes* candidate derived functions and functionality constraints
//! and the designer confirms or repairs them. The static passes in this
//! crate look only at the schema and the script text; this module closes
//! the loop by looking at the *data*. For every base function's stored
//! table it mines three kinds of findings:
//!
//! * **Incidental functionality** (FDB050): the extension is
//!   single-valued in a direction the declaration does not guarantee —
//!   a *non-genuine* FD, true today, invalidated by the next violating
//!   write. These feed the AMS advisory pass
//!   ([`fdb_graph::minimal_schema_with_advisory`]) and the planner's
//!   [`fdb_exec::AssumptionSet`].
//! * **Declared-functionality violations** (FDB051): facts the update
//!   machinery would never have admitted (e.g. loaded through a bulk
//!   path) that break a declared constraint. Each violation carries a
//!   *minimal cardinality repair* — the smallest fact set whose deletion
//!   restores the constraint, per Livshits/Kimelfeld: exact on small
//!   conflict components (complement of a maximum independent set),
//!   greedy beyond [`DiscoverConfig::exact_repair_limit`].
//! * **Candidate derivations** (FDB052): the extension of `g` is
//!   reproduced point-for-point by a derivation over the *other* base
//!   functions (alias, inverse, or two-step composition), evaluated
//!   through the real chain machinery in `fdb-exec` — a Method 2.1
//!   designer proposal.
//!
//! The whole pass is **read-only** (it never mutates the store — the
//! purity test in `tests/check_data.rs` pins this with mutation-counter
//! deltas) and **deterministic**: for a fixed store the report renders
//! byte-identically (golden test). Like every other analysis in this
//! workspace it runs under a [`fdb_governor::Governor`]; a stopped run
//! returns a typed partial with the findings mined so far.

use std::collections::BTreeMap;

use fdb_governor::{Governance, Governor, Outcome, StopReason, Ungoverned};
use fdb_storage::{ChainLimits, Store, Truth};
use fdb_types::{Derivation, FunctionId, Functionality, Schema, Span, Step, Value};

use serde::Content;

use crate::diag::{Code, Diagnostic};

/// Tuning knobs for the discovery pass.
#[derive(Clone, Copy, Debug)]
pub struct DiscoverConfig {
    /// Minimum live rows before a table's shape is worth reporting
    /// (single-row tables satisfy every FD vacuously).
    pub min_support: usize,
    /// Conflict components up to this size get an exact minimum repair
    /// (maximum-independent-set complement, `O(2^n)`); larger components
    /// fall back to greedy max-degree deletion. Clamped to 16.
    pub exact_repair_limit: usize,
    /// Cap on accepted candidate derivations per function.
    pub max_candidates: usize,
    /// Chain limits for candidate-derivation truth evaluation.
    pub limits: ChainLimits,
}

impl Default for DiscoverConfig {
    fn default() -> Self {
        DiscoverConfig {
            min_support: 2,
            exact_repair_limit: 12,
            max_candidates: 8,
            limits: ChainLimits::default(),
        }
    }
}

/// An incidental (non-genuine) FD: the extension is tighter than the
/// declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiscoveredFd {
    /// The function whose table was mined.
    pub function: FunctionId,
    /// Its declared functionality.
    pub declared: Functionality,
    /// The strictly tighter functionality the extension satisfies.
    pub observed: Functionality,
    /// Live rows supporting the observation.
    pub rows: usize,
    /// `Store::function_version` at observation time — the key under
    /// which planner assumptions and cached plans must be registered.
    pub function_version: u64,
}

/// A declared functionality violated by stored facts, with its minimal
/// cardinality repair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The violated function.
    pub function: FunctionId,
    /// Its declared functionality (the constraint being violated).
    pub declared: Functionality,
    /// Number of connected conflict components.
    pub conflict_groups: usize,
    /// Facts whose deletion restores the constraint, sorted by value.
    pub repair: Vec<(Value, Value)>,
    /// `true` if every component was solved exactly (the repair is a
    /// provable minimum); `false` if any fell back to greedy.
    pub repair_exact: bool,
}

/// A candidate derivation reproducing a base function's extension.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CandidateDerivation {
    /// The function whose extension is reproduced.
    pub function: FunctionId,
    /// The derivation over other base functions.
    pub derivation: Derivation,
    /// Number of live `True` pairs the derivation reproduced.
    pub matched: usize,
}

/// Everything one discovery pass found, in deterministic order.
#[derive(Clone, Debug, Default)]
pub struct DiscoveryReport {
    /// `Store::version` of the scanned store.
    pub store_version: u64,
    /// Number of base-function tables scanned.
    pub scanned: usize,
    /// Incidental FDs, in function-declaration order.
    pub fds: Vec<DiscoveredFd>,
    /// Declared-functionality violations, in declaration order.
    pub violations: Vec<Violation>,
    /// Candidate derivations, in declaration order of the target.
    pub candidates: Vec<CandidateDerivation>,
    /// Functions AMS classifies derived only when the discovered FDs are
    /// added as advisory edges (never under the declared schema alone).
    pub advisory_derived: Vec<FunctionId>,
}

impl DiscoveryReport {
    /// `true` if nothing was found.
    pub fn is_empty(&self) -> bool {
        self.fds.is_empty() && self.violations.is_empty() && self.candidates.is_empty()
    }
}

/// Runs the discovery pass over `store`.
///
/// `derived` maps the functions that are *registered derived* (their
/// derivations, as held by the engine); their tables are skipped — the
/// pass mines base extensions only.
pub fn discover(
    store: &Store,
    schema: &Schema,
    derived: &BTreeMap<FunctionId, Vec<Derivation>>,
    config: &DiscoverConfig,
) -> DiscoveryReport {
    discover_impl(store, schema, derived, config, &Ungoverned).value()
}

/// [`discover`] under a [`Governor`]: a stopped pass returns the findings
/// mined so far (functions are scanned in declaration order, so a partial
/// report is a prefix plus possibly a truncated candidate list).
pub fn discover_governed(
    store: &Store,
    schema: &Schema,
    derived: &BTreeMap<FunctionId, Vec<Derivation>>,
    config: &DiscoverConfig,
    governor: &Governor,
) -> Outcome<DiscoveryReport> {
    discover_impl(store, schema, derived, config, governor)
}

fn discover_impl<G: Governance>(
    store: &Store,
    schema: &Schema,
    derived: &BTreeMap<FunctionId, Vec<Derivation>>,
    config: &DiscoverConfig,
    governor: &G,
) -> Outcome<DiscoveryReport> {
    fdb_obs::registry().check_discover_runs.inc();
    let mut report = DiscoveryReport {
        store_version: store.version(),
        ..DiscoveryReport::default()
    };
    let mut stop: Option<StopReason> = None;
    let exact_limit = config.exact_repair_limit.min(16);

    'functions: for def in schema.functions() {
        if let Err(r) = governor.check() {
            stop = Some(r);
            break;
        }
        if derived.contains_key(&def.id) || def.id.index() >= store.table_count() {
            continue;
        }
        let table = store.table(def.id);
        let rows: Vec<(&Value, &Value)> = table.rows().map(|r| (r.x, r.y)).collect();
        if rows.is_empty() {
            continue;
        }
        report.scanned += 1;
        let (functional, injective) = table.single_valuedness();
        let viol_functional = def.functionality.is_functional() && !functional;
        let viol_injective = def.functionality.is_injective() && !injective;

        // Incidental functionality: tighter than declared, enough rows to
        // be more than vacuous. A violated table never reports one — its
        // extension contradicts the declaration, so "observed" would mix a
        // genuine direction with a broken one; the violation (below) is
        // the finding, and the FD can be re-mined after the repair.
        if !(viol_functional || viol_injective) && rows.len() >= config.min_support {
            let observed = Functionality::from_parts(functional, injective);
            if observed != def.functionality {
                report.fds.push(DiscoveredFd {
                    function: def.id,
                    declared: def.functionality,
                    observed,
                    rows: rows.len(),
                    function_version: store.function_version(def.id),
                });
            }
        }

        // Declared functionality violated: compute the minimal repair.
        if viol_functional || viol_injective {
            let owned: Vec<(Value, Value)> =
                rows.iter().map(|&(x, y)| (x.clone(), y.clone())).collect();
            // Repair work scales with the table; charge one unit per row.
            if let Err(r) = governor.charge(owned.len() as u64) {
                stop = Some(r);
                break;
            }
            let (repair, exact, groups) = minimal_repair(
                &owned,
                def.functionality.is_functional(),
                def.functionality.is_injective(),
                exact_limit,
            );
            report.violations.push(Violation {
                function: def.id,
                declared: def.functionality,
                conflict_groups: groups,
                repair,
                repair_exact: exact,
            });
        }

        // Candidate derivations: only for consistent extensions with
        // support (proposing a derivation for a violated table would bake
        // the violation into the schema).
        if viol_functional || viol_injective || rows.len() < config.min_support {
            continue;
        }
        let true_pairs: Vec<(&Value, &Value)> = table
            .rows()
            .filter(|r| r.truth == Truth::True)
            .map(|r| (r.x, r.y))
            .collect();
        if true_pairs.len() < config.min_support {
            continue;
        }
        let mut accepted = 0usize;
        for cand in candidate_shapes(schema, def.id, derived) {
            if accepted >= config.max_candidates {
                break;
            }
            if let Err(r) = governor.check() {
                stop = Some(r);
                break 'functions;
            }
            // One truth evaluation per covered pair.
            if let Err(r) = governor.charge(true_pairs.len() as u64) {
                stop = Some(r);
                break 'functions;
            }
            let all_reproduced = true_pairs.iter().all(|&(x, y)| {
                fdb_exec::derived_truth(store, std::slice::from_ref(&cand), x, y, config.limits)
                    == Truth::True
            });
            if all_reproduced {
                report.candidates.push(CandidateDerivation {
                    function: def.id,
                    derivation: cand,
                    matched: true_pairs.len(),
                });
                accepted += 1;
            }
        }
    }

    // Advisory AMS: which functions become derivable only once the
    // discovered FDs tighten the graph?
    if !report.fds.is_empty() && stop.is_none() {
        let advisory: Vec<(FunctionId, Functionality)> = report
            .fds
            .iter()
            .map(|fd| (fd.function, fd.observed))
            .collect();
        let plain = fdb_graph::minimal_schema(schema);
        let tightened = fdb_graph::minimal_schema_with_advisory(
            schema,
            &advisory,
            fdb_graph::PathLimits::default(),
        );
        report.advisory_derived = schema
            .functions()
            .iter()
            .map(|d| d.id)
            .filter(|&f| plain.is_base(f) && !tightened.is_base(f))
            .collect();
    }

    Outcome::new(report, stop)
}

/// Enumerates the type-compatible candidate derivations for `target`:
/// single-step aliases and inverses over other base functions, then all
/// two-step identity/inverse compositions, in declaration order.
fn candidate_shapes(
    schema: &Schema,
    target: FunctionId,
    derived: &BTreeMap<FunctionId, Vec<Derivation>>,
) -> Vec<Derivation> {
    let def = schema.function(target);
    let base: Vec<_> = schema
        .functions()
        .iter()
        .filter(|d| d.id != target && !derived.contains_key(&d.id))
        .collect();
    let mut out: Vec<Derivation> = Vec::new();
    // Length 1: alias (same orientation) and inverse.
    for f in &base {
        if f.domain == def.domain && f.range == def.range {
            out.push(Derivation::single(Step::identity(f.id)));
        }
        if f.domain == def.range && f.range == def.domain {
            out.push(Derivation::single(Step::inverse(f.id)));
        }
    }
    // Length 2: every orientation pair that chains domain → mid → range.
    for f in &base {
        for g in &base {
            for (sf, f_from, f_to) in orientations(f.id, f.domain, f.range) {
                if f_from != def.domain {
                    continue;
                }
                for (sg, g_from, g_to) in orientations(g.id, g.domain, g.range) {
                    if g_from == f_to && g_to == def.range {
                        if let Ok(d) = Derivation::new(vec![sf, sg]) {
                            out.push(d);
                        }
                    }
                }
            }
        }
    }
    out
}

/// The two traversal orientations of a function edge, as `(step, from,
/// to)` triples.
fn orientations(
    f: FunctionId,
    domain: fdb_types::TypeId,
    range: fdb_types::TypeId,
) -> [(Step, fdb_types::TypeId, fdb_types::TypeId); 2] {
    [
        (Step::identity(f), domain, range),
        (Step::inverse(f), range, domain),
    ]
}

/// Computes a minimal cardinality repair of `pairs` under the declared
/// single-valuedness directions: the smallest index set whose deletion
/// leaves no two remaining pairs in conflict (same `x`, different `y`
/// when `functional`; same `y`, different `x` when `injective`).
///
/// Returns `(deleted pairs sorted by value, exact, conflict components)`.
/// Components of size ≤ `exact_limit` are solved exactly as the
/// complement of a maximum independent set of the component's conflict
/// graph (deterministic: the lexicographically-first optimum by ascending
/// bitmask); larger components are repaired greedily by repeated
/// max-conflict-degree deletion (lowest index wins ties) and flip the
/// `exact` flag to `false`.
pub fn minimal_repair(
    pairs: &[(Value, Value)],
    functional: bool,
    injective: bool,
    exact_limit: usize,
) -> (Vec<(Value, Value)>, bool, usize) {
    let n = pairs.len();
    let conflicts = |i: usize, j: usize| -> bool {
        let (xi, yi) = &pairs[i];
        let (xj, yj) = &pairs[j];
        (functional && xi == xj && yi != yj) || (injective && yi == yj && xi != xj)
    };

    // Connected components of the conflict graph via union-find over the
    // shared-x / shared-y groups (O(n²) edge scan is fine at table scale;
    // the exact solver below dominates anyway).
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], i: usize) -> usize {
        let mut r = i;
        while parent[r] != r {
            r = parent[r];
        }
        let mut c = i;
        while parent[c] != r {
            let next = parent[c];
            parent[c] = r;
            c = next;
        }
        r
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if conflicts(i, j) {
                let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                if a != b {
                    parent[a.max(b)] = a.min(b);
                }
            }
        }
    }
    let mut components: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for i in 0..n {
        let root = find(&mut parent, i);
        components.entry(root).or_default().push(i);
    }

    let mut deleted: Vec<usize> = Vec::new();
    let mut exact = true;
    let mut groups = 0usize;
    for comp in components.values() {
        let has_conflict = comp
            .iter()
            .enumerate()
            .any(|(a, &i)| comp[a + 1..].iter().any(|&j| conflicts(i, j)));
        if !has_conflict {
            continue;
        }
        groups += 1;
        let k = comp.len();
        if k <= exact_limit {
            // Exact: maximum independent set by exhaustive bitmask. The
            // first best mask in ascending order is kept, which makes the
            // repair deterministic.
            let mut edges: Vec<u32> = vec![0; k];
            for a in 0..k {
                for b in (a + 1)..k {
                    if conflicts(comp[a], comp[b]) {
                        edges[a] |= 1 << b;
                        edges[b] |= 1 << a;
                    }
                }
            }
            let mut best_mask: u32 = 0;
            let mut best_size: u32 = 0;
            for mask in 0u32..(1 << k) {
                if mask.count_ones() <= best_size {
                    continue;
                }
                let independent = (0..k).all(|a| mask & (1 << a) == 0 || mask & edges[a] == 0);
                if independent {
                    best_mask = mask;
                    best_size = mask.count_ones();
                }
            }
            for (a, &i) in comp.iter().enumerate() {
                if best_mask & (1 << a) == 0 {
                    deleted.push(i);
                }
            }
        } else {
            // Greedy: delete the max-conflict-degree vertex until the
            // component is conflict-free.
            exact = false;
            let mut alive: Vec<usize> = comp.clone();
            loop {
                let mut degrees: Vec<usize> = alive
                    .iter()
                    .map(|&i| alive.iter().filter(|&&j| j != i && conflicts(i, j)).count())
                    .collect();
                let Some((pos, &max_deg)) = degrees
                    .iter()
                    .enumerate()
                    .max_by_key(|&(pos, &d)| (d, std::cmp::Reverse(pos)))
                else {
                    break;
                };
                if max_deg == 0 {
                    break;
                }
                deleted.push(alive.remove(pos));
                degrees.clear();
            }
        }
    }

    let mut out: Vec<(Value, Value)> = deleted.into_iter().map(|i| pairs[i].clone()).collect();
    out.sort();
    (out, exact, groups)
}

/// Converts a report into FDB05x diagnostics (line-0 spans: discovery
/// findings anchor to the store, not to script text), bumping the
/// `fdb.check.diags_*` counters like every other pass.
pub fn discovery_diagnostics(report: &DiscoveryReport, schema: &Schema) -> Vec<Diagnostic> {
    let span = Span::new(0, 0, 0);
    let name = |f: FunctionId| schema.function(f).name.as_str();
    let mut out: Vec<Diagnostic> = Vec::new();
    for fd in &report.fds {
        let mut d = Diagnostic::new(
            Code::IncidentalFunctionality,
            span,
            format!(
                "`{}` is declared {} but its {} stored rows are {} (non-genuine)",
                name(fd.function),
                fd.declared,
                fd.rows,
                fd.observed
            ),
        );
        if report.advisory_derived.contains(&fd.function) {
            d = d.with_hint(format!(
                "declaring it {} would let AMS classify it derived",
                fd.observed
            ));
        }
        out.push(d);
    }
    for v in &report.violations {
        let facts: Vec<String> = v
            .repair
            .iter()
            .map(|(x, y)| format!("{}({x}, {y})", name(v.function)))
            .collect();
        let method = if v.repair_exact { "minimal" } else { "greedy" };
        out.push(
            Diagnostic::new(
                Code::FunctionalityViolated,
                span,
                format!(
                    "`{}` is declared {} but {} conflict group(s) of stored facts violate it",
                    name(v.function),
                    v.declared,
                    v.conflict_groups
                ),
            )
            .with_hint(format!("{} repair: delete {}", method, facts.join(", "))),
        );
    }
    for c in &report.candidates {
        out.push(
            Diagnostic::new(
                Code::CandidateDerivation,
                span,
                format!(
                    "the {} stored pairs of `{}` match the derivation `{}`",
                    c.matched,
                    name(c.function),
                    c.derivation.render(schema)
                ),
            )
            .with_hint(format!(
                "DERIVE {} = {}",
                name(c.function),
                c.derivation.render(schema)
            )),
        );
    }
    let reg = fdb_obs::registry();
    for d in &out {
        match d.severity() {
            crate::diag::Severity::Error => reg.check_diags_error.inc(),
            crate::diag::Severity::Warn => reg.check_diags_warn.inc(),
            crate::diag::Severity::Info => reg.check_diags_info.inc(),
        }
    }
    out
}

/// Builds the FDB053 diagnostic for one invalidated planner assumption.
pub fn invalidation_diagnostic(
    schema: &Schema,
    function: FunctionId,
    kind: &str,
    observed_version: u64,
) -> Diagnostic {
    fdb_obs::registry().check_diags_info.inc();
    Diagnostic::new(
        Code::NonGenuineInvalidated,
        Span::new(0, 0, 0),
        format!(
            "non-genuine assumption `{} is {}` (observed at v{}) was invalidated by a base write",
            schema.function(function).name,
            kind,
            observed_version
        ),
    )
    .with_hint("plans and cached results compiled against it were discarded")
}

/// Renders the report as byte-stable plain text (the `DISCOVER` output
/// and the golden-test format).
pub fn render_discovery_text(report: &DiscoveryReport, schema: &Schema) -> String {
    let name = |f: FunctionId| schema.function(f).name.as_str();
    let mut out = format!(
        "discover: store v{}, {} function(s) scanned\n",
        report.store_version, report.scanned
    );
    for fd in &report.fds {
        out.push_str(&format!(
            "fd {}: observed {} (declared {}), {} rows, v{}\n",
            name(fd.function),
            fd.observed,
            fd.declared,
            fd.rows,
            fd.function_version
        ));
    }
    for v in &report.violations {
        out.push_str(&format!(
            "violation {}: declared {}, {} conflict group(s), repair {} fact(s) [{}]\n",
            name(v.function),
            v.declared,
            v.conflict_groups,
            v.repair.len(),
            if v.repair_exact { "exact" } else { "greedy" }
        ));
        for (x, y) in &v.repair {
            out.push_str(&format!("  delete {}({x}, {y})\n", name(v.function)));
        }
    }
    for c in &report.candidates {
        out.push_str(&format!(
            "candidate {} = {} ({} pairs)\n",
            name(c.function),
            c.derivation.render(schema),
            c.matched
        ));
    }
    if !report.advisory_derived.is_empty() {
        let names: Vec<&str> = report.advisory_derived.iter().map(|&f| name(f)).collect();
        out.push_str(&format!("advisory-derived: {}\n", names.join(", ")));
    }
    out.push_str(&format!(
        "discover: {} fd(s), {} violation(s), {} candidate(s)\n",
        report.fds.len(),
        report.violations.len(),
        report.candidates.len()
    ));
    out
}

/// The report as a JSON-ready content tree (the `DISCOVER JSON` output).
pub fn discovery_to_content(report: &DiscoveryReport, schema: &Schema) -> Content {
    let name = |f: FunctionId| Content::Str(schema.function(f).name.clone());
    let fds = report
        .fds
        .iter()
        .map(|fd| {
            Content::Map(vec![
                (Content::Str("function".into()), name(fd.function)),
                (
                    Content::Str("declared".into()),
                    Content::Str(fd.declared.to_string()),
                ),
                (
                    Content::Str("observed".into()),
                    Content::Str(fd.observed.to_string()),
                ),
                (Content::Str("rows".into()), Content::U64(fd.rows as u64)),
                (
                    Content::Str("function_version".into()),
                    Content::U64(fd.function_version),
                ),
            ])
        })
        .collect();
    let violations = report
        .violations
        .iter()
        .map(|v| {
            let repair = v
                .repair
                .iter()
                .map(|(x, y)| {
                    Content::Seq(vec![
                        Content::Str(x.to_string()),
                        Content::Str(y.to_string()),
                    ])
                })
                .collect();
            Content::Map(vec![
                (Content::Str("function".into()), name(v.function)),
                (
                    Content::Str("declared".into()),
                    Content::Str(v.declared.to_string()),
                ),
                (
                    Content::Str("conflict_groups".into()),
                    Content::U64(v.conflict_groups as u64),
                ),
                (Content::Str("repair".into()), Content::Seq(repair)),
                (
                    Content::Str("repair_exact".into()),
                    Content::Bool(v.repair_exact),
                ),
            ])
        })
        .collect();
    let candidates = report
        .candidates
        .iter()
        .map(|c| {
            Content::Map(vec![
                (Content::Str("function".into()), name(c.function)),
                (
                    Content::Str("derivation".into()),
                    Content::Str(c.derivation.render(schema)),
                ),
                (
                    Content::Str("matched".into()),
                    Content::U64(c.matched as u64),
                ),
            ])
        })
        .collect();
    Content::Map(vec![
        (
            Content::Str("store_version".into()),
            Content::U64(report.store_version),
        ),
        (
            Content::Str("scanned".into()),
            Content::U64(report.scanned as u64),
        ),
        (Content::Str("fds".into()), Content::Seq(fds)),
        (Content::Str("violations".into()), Content::Seq(violations)),
        (Content::Str("candidates".into()), Content::Seq(candidates)),
        (
            Content::Str("advisory_derived".into()),
            Content::Seq(report.advisory_derived.iter().map(|&f| name(f)).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_types::schema_s1;

    fn v(s: &str) -> Value {
        Value::atom(s)
    }

    fn no_derived() -> BTreeMap<FunctionId, Vec<Derivation>> {
        BTreeMap::new()
    }

    /// S1 store where teach's extension happens to be one-one and
    /// taught_by mirrors it exactly.
    fn s1_store(schema: &Schema) -> Store {
        let mut store = Store::new(schema.len());
        let teach = schema.resolve("teach").unwrap();
        let taught_by = schema.resolve("taught_by").unwrap();
        for (f, c) in [("smith", "cs101"), ("jones", "ma201"), ("lee", "ph301")] {
            store.base_insert(teach, v(f), v(c));
            store.base_insert(taught_by, v(c), v(f));
        }
        store
    }

    #[test]
    fn incidental_fd_detected_on_many_many_table() {
        let schema = schema_s1();
        let store = s1_store(&schema);
        let report = discover(&store, &schema, &no_derived(), &DiscoverConfig::default());
        let teach = schema.resolve("teach").unwrap();
        let fd = report
            .fds
            .iter()
            .find(|fd| fd.function == teach)
            .expect("teach FD discovered");
        assert_eq!(fd.declared, Functionality::ManyMany);
        assert_eq!(fd.observed, Functionality::OneOne);
        assert_eq!(fd.rows, 3);
        assert!(report.violations.is_empty());
    }

    #[test]
    fn candidate_inverse_derivation_detected() {
        let schema = schema_s1();
        let store = s1_store(&schema);
        let report = discover(&store, &schema, &no_derived(), &DiscoverConfig::default());
        let taught_by = schema.resolve("taught_by").unwrap();
        assert!(
            report
                .candidates
                .iter()
                .any(|c| c.function == taught_by && c.derivation.render(&schema) == "teach^-1"),
            "taught_by = teach^-1 not proposed: {:?}",
            report
                .candidates
                .iter()
                .map(|c| c.derivation.render(&schema))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn violation_gets_minimal_repair() {
        let schema = schema_s1();
        let mut store = Store::new(schema.len());
        let cutoff = schema.resolve("cutoff").unwrap();
        // cutoff is declared many-one; 90 → both A and B violates it.
        store.base_insert(cutoff, v("90"), v("A"));
        store.base_insert(cutoff, v("90"), v("B"));
        store.base_insert(cutoff, v("80"), v("B"));
        let report = discover(&store, &schema, &no_derived(), &DiscoverConfig::default());
        let viol = report
            .violations
            .iter()
            .find(|x| x.function == cutoff)
            .expect("cutoff violation");
        assert!(viol.repair_exact);
        assert_eq!(viol.conflict_groups, 1);
        // Deleting either of the two 90-rows restores the FD; one fact.
        assert_eq!(viol.repair.len(), 1);
        assert_eq!(viol.repair[0].0, v("90"));
        // A violated table proposes no candidate derivations.
        assert!(!report.candidates.iter().any(|c| c.function == cutoff));
    }

    #[test]
    fn minimal_repair_handles_both_directions() {
        // x-clique of 3 (a→1, a→2, a→3): delete 2 to keep 1.
        let pairs: Vec<(Value, Value)> = vec![(v("a"), v("1")), (v("a"), v("2")), (v("a"), v("3"))];
        let (repair, exact, groups) = minimal_repair(&pairs, true, false, 16);
        assert!(exact);
        assert_eq!(groups, 1);
        assert_eq!(repair.len(), 2);

        // Injective-only violation: 1←a, 1←b.
        let pairs: Vec<(Value, Value)> = vec![(v("a"), v("1")), (v("b"), v("1"))];
        let (repair, exact, _) = minimal_repair(&pairs, false, true, 16);
        assert!(exact);
        assert_eq!(repair.len(), 1);

        // No declared direction → nothing to repair.
        let (repair, exact, groups) = minimal_repair(&pairs, false, false, 16);
        assert!(repair.is_empty() && exact && groups == 0);
    }

    #[test]
    fn greedy_fallback_still_repairs() {
        // A star of 9 conflicting facts with exact_limit 4 forces greedy.
        let pairs: Vec<(Value, Value)> = (0..9).map(|i| (v("hub"), v(&format!("y{i}")))).collect();
        let (repair, exact, groups) = minimal_repair(&pairs, true, false, 4);
        assert!(!exact);
        assert_eq!(groups, 1);
        assert_eq!(repair.len(), 8, "greedy must still fully repair");
    }

    #[test]
    fn advisory_derived_surfaces_graph_consequences() {
        // g: a→b many-one, f: a→b many-many with a single-valued
        // extension: with the advisory FD on f, g becomes derivable.
        let schema = Schema::builder()
            .function("g", "a", "b", "many-one")
            .function("f", "a", "b", "many-many")
            .build()
            .unwrap();
        let g = schema.resolve("g").unwrap();
        let f = schema.resolve("f").unwrap();
        let mut store = Store::new(2);
        for i in 0..3 {
            store.base_insert(g, v(&format!("x{i}")), v(&format!("y{i}")));
            store.base_insert(f, v(&format!("x{i}")), v(&format!("y{i}")));
        }
        let report = discover(&store, &schema, &no_derived(), &DiscoverConfig::default());
        assert!(report.fds.iter().any(|fd| fd.function == f));
        assert!(report.advisory_derived.contains(&g));
    }

    #[test]
    fn report_renders_deterministically() {
        let schema = schema_s1();
        let store = s1_store(&schema);
        let cfg = DiscoverConfig::default();
        let a = render_discovery_text(&discover(&store, &schema, &no_derived(), &cfg), &schema);
        let b = render_discovery_text(&discover(&store, &schema, &no_derived(), &cfg), &schema);
        assert_eq!(a, b);
        assert!(a.starts_with("discover: store v"));
        assert!(a.ends_with("candidate(s)\n"));
    }

    #[test]
    fn governed_discovery_returns_typed_partial() {
        use fdb_governor::Budget;
        let schema = schema_s1();
        let store = s1_store(&schema);
        let governor = Governor::new(Budget::unbounded().with_max_memory_units(1));
        let out = discover_governed(
            &store,
            &schema,
            &no_derived(),
            &DiscoverConfig::default(),
            &governor,
        );
        assert!(!out.is_complete());
    }

    #[test]
    fn derived_functions_are_skipped() {
        let schema = schema_s1();
        let store = s1_store(&schema);
        let teach = schema.resolve("teach").unwrap();
        let taught_by = schema.resolve("taught_by").unwrap();
        let mut derived = BTreeMap::new();
        derived.insert(taught_by, vec![Derivation::single(Step::inverse(teach))]);
        let report = discover(&store, &schema, &derived, &DiscoverConfig::default());
        assert!(!report.fds.iter().any(|fd| fd.function == taught_by));
        assert!(!report.candidates.iter().any(|c| c.function == taught_by));
    }

    #[test]
    fn empty_store_reports_nothing() {
        let schema = schema_s1();
        let store = Store::new(schema.len());
        let report = discover(&store, &schema, &no_derived(), &DiscoverConfig::default());
        assert!(report.is_empty());
        assert_eq!(report.scanned, 0);
    }
}
