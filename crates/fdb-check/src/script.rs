//! The analyzer's input IR: a flat, spanned statement list.
//!
//! `fdb-check` deliberately does not depend on `fdb-lang`'s AST — the
//! language crate depends on *this* crate (so the engine can pre-flight
//! scripts), and the CLI converts parsed statements into [`CheckStmt`]s.
//! The IR keeps only what the analysis passes need: function names with
//! their spans, literal values, and derivation step lists.

use fdb_types::Span;

/// A name occurrence in the source: the text plus where it sits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Name {
    /// The identifier text.
    pub text: String,
    /// Its source span.
    pub span: Span,
}

impl Name {
    /// Builds a name occurrence.
    pub fn new(text: impl Into<String>, span: Span) -> Self {
        Name {
            text: text.into(),
            span,
        }
    }
}

/// One derivation step reference: `f` or `f^-1`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StepRef {
    /// The referenced function.
    pub name: Name,
    /// `true` for `f^-1`.
    pub inverse: bool,
}

/// Which transaction-control statement a [`CheckStmt::Txn`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxnOp {
    /// `BEGIN`.
    Begin,
    /// `COMMIT`.
    Commit,
    /// `ABORT` / bare `ROLLBACK` — whole-transaction rollback.
    Rollback,
    /// `SAVEPOINT <name>`.
    Savepoint,
    /// `ROLLBACK TO <name>`.
    RollbackTo,
}

/// One analyzed statement. Statements the analysis does not model map to
/// [`CheckStmt::Other`]; statements that replace the database wholesale
/// (`LOAD`, `SOURCE`) map to `Other` with `opens_world` set, which tells
/// the abstract interpreter that facts may exist beyond the script's
/// literals (suppressing the closed-world lints from that point on).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckStmt {
    /// `DECLARE name: domain -> range (functionality)`.
    Declare {
        /// Statement keyword span.
        keyword: Span,
        /// The declared function.
        name: Name,
        /// Domain type name (compound in brackets).
        domain: String,
        /// Range type name.
        range: String,
        /// Functionality text (`many-one`, …) with its span.
        functionality: Name,
    },
    /// `DERIVE name = f o g^-1 o …`.
    Derive {
        /// Statement keyword span.
        keyword: Span,
        /// The derived function.
        name: Name,
        /// The derivation steps, first applied first.
        steps: Vec<StepRef>,
    },
    /// `INSERT f(x, y)`.
    Insert {
        /// Statement keyword span.
        keyword: Span,
        /// Target function.
        function: Name,
        /// Domain value literal.
        x: String,
        /// Range value literal.
        y: String,
    },
    /// `DELETE f(x, y)`.
    Delete {
        /// Statement keyword span.
        keyword: Span,
        /// Target function.
        function: Name,
        /// Domain value literal.
        x: String,
        /// Range value literal.
        y: String,
    },
    /// `REPLACE f(x1, y1) WITH (x2, y2)`.
    Replace {
        /// Statement keyword span.
        keyword: Span,
        /// Target function.
        function: Name,
        /// Pair removed.
        old: (String, String),
        /// Pair added.
        new: (String, String),
    },
    /// `QUERY f(x)`.
    Query {
        /// Statement keyword span.
        keyword: Span,
        /// Queried function.
        function: Name,
        /// Domain value literal.
        x: String,
    },
    /// `TRUTH f(x, y)`.
    Truth {
        /// Statement keyword span.
        keyword: Span,
        /// Queried function.
        function: Name,
        /// Domain value literal.
        x: String,
        /// Range value literal.
        y: String,
    },
    /// `INVERSE f(y)`.
    Inverse {
        /// Statement keyword span.
        keyword: Span,
        /// Queried function.
        function: Name,
        /// Range value literal.
        y: String,
    },
    /// `SHOW f` / `EXPLAIN f(x, y)` / `DERIVATIONS f` — a read that
    /// touches the whole function.
    Read {
        /// Statement keyword span.
        keyword: Span,
        /// The read function.
        function: Name,
    },
    /// `EVAL x : f o g^-1 o …` — an ad-hoc path query.
    Eval {
        /// Statement keyword span.
        keyword: Span,
        /// Steps of the path expression.
        steps: Vec<StepRef>,
    },
    /// `RESOLVE` — the FD-based ambiguity-resolution pass.
    Resolve {
        /// Statement keyword span.
        keyword: Span,
    },
    /// `BEGIN` / `COMMIT` / `ABORT` / `SAVEPOINT n` / `ROLLBACK [TO n]` —
    /// transaction control. The analyzer checks balance (`FDB018`,
    /// `FDB019`) and rolls its abstract state back exactly the way the
    /// engine does.
    Txn {
        /// Statement keyword span.
        keyword: Span,
        /// Which transaction-control statement this is.
        op: TxnOp,
        /// The savepoint name (`Savepoint` / `RollbackTo` only).
        name: Option<Name>,
    },
    /// Any other statement.
    Other {
        /// Statement keyword span.
        keyword: Span,
        /// `true` when the statement may introduce facts the script does
        /// not spell out (`LOAD`, `SOURCE`).
        opens_world: bool,
    },
}

impl CheckStmt {
    /// The statement's keyword span (its anchor of last resort).
    pub fn keyword(&self) -> Span {
        match self {
            CheckStmt::Declare { keyword, .. }
            | CheckStmt::Derive { keyword, .. }
            | CheckStmt::Insert { keyword, .. }
            | CheckStmt::Delete { keyword, .. }
            | CheckStmt::Replace { keyword, .. }
            | CheckStmt::Query { keyword, .. }
            | CheckStmt::Truth { keyword, .. }
            | CheckStmt::Inverse { keyword, .. }
            | CheckStmt::Read { keyword, .. }
            | CheckStmt::Eval { keyword, .. }
            | CheckStmt::Resolve { keyword }
            | CheckStmt::Txn { keyword, .. }
            | CheckStmt::Other { keyword, .. } => *keyword,
        }
    }
}
