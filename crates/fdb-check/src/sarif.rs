//! SARIF 2.1.0 output.
//!
//! Builds a structurally valid [SARIF] log as a hand-constructed content
//! tree (the vendored serde has no derive attributes, so the shape is
//! spelled out explicitly): one run, one tool driver carrying every
//! `FDB0xx` rule, one `result` per diagnostic with a physical location.
//!
//! [SARIF]: https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html

use serde::Content;

use crate::diag::{Code, Diagnostic, RawContent};

const SARIF_VERSION: &str = "2.1.0";
const SARIF_SCHEMA: &str =
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json";

fn s(text: &str) -> Content {
    Content::Str(text.to_owned())
}

fn map(entries: Vec<(&str, Content)>) -> Content {
    Content::Map(entries.into_iter().map(|(k, v)| (s(k), v)).collect())
}

fn rule(code: Code) -> Content {
    map(vec![
        ("id", s(code.as_str())),
        ("shortDescription", map(vec![("text", s(code.title()))])),
        (
            "defaultConfiguration",
            map(vec![("level", s(code.severity().sarif_level()))]),
        ),
    ])
}

fn result(artifact: &str, d: &Diagnostic) -> Content {
    let region = map(vec![
        ("startLine", Content::U64(u64::from(d.span.line.max(1)))),
        ("startColumn", Content::U64(u64::from(d.span.col()))),
        ("endColumn", Content::U64(u64::from(d.span.end_col()))),
    ]);
    let location = map(vec![(
        "physicalLocation",
        map(vec![
            ("artifactLocation", map(vec![("uri", s(artifact))])),
            ("region", region),
        ]),
    )]);
    let mut text = d.message.clone();
    if let Some(hint) = &d.hint {
        text.push_str(" (hint: ");
        text.push_str(hint);
        text.push(')');
    }
    map(vec![
        ("ruleId", s(d.code.as_str())),
        ("level", s(d.severity().sarif_level())),
        ("message", map(vec![("text", Content::Str(text))])),
        ("locations", Content::Seq(vec![location])),
    ])
}

/// Renders a SARIF 2.1.0 log for one analyzed artifact (script path as it
/// should appear in `artifactLocation.uri`).
pub fn render_sarif(artifact: &str, diags: &[Diagnostic]) -> String {
    render_sarif_all(&[(artifact.to_owned(), diags.to_vec())])
}

/// Renders one SARIF 2.1.0 log covering several artifacts (one run, one
/// result per finding, locations pointing into each file).
pub fn render_sarif_all(entries: &[(String, Vec<Diagnostic>)]) -> String {
    let driver = map(vec![
        ("name", s("fdb-lint")),
        ("informationUri", s("https://example.invalid/fdb")),
        (
            "rules",
            Content::Seq(Code::ALL.iter().map(|c| rule(*c)).collect()),
        ),
    ]);
    let results: Vec<Content> = entries
        .iter()
        .flat_map(|(file, diags)| diags.iter().map(|d| result(file, d)))
        .collect();
    let run = map(vec![
        ("tool", map(vec![("driver", driver)])),
        ("results", Content::Seq(results)),
    ]);
    let log = map(vec![
        ("$schema", s(SARIF_SCHEMA)),
        ("version", s(SARIF_VERSION)),
        ("runs", Content::Seq(vec![run])),
    ]);
    serde_json::to_string(&RawContent(log)).unwrap_or_else(|_| "{}".into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_types::Span;
    use serde::map_get;

    fn get<'a>(c: &'a Content, key: &str) -> &'a Content {
        map_get(c.as_map().expect("object"), key).unwrap_or_else(|| panic!("missing key {key}"))
    }

    #[test]
    fn sarif_log_is_structurally_valid() {
        let diags = vec![
            Diagnostic::new(
                Code::UndefinedFunction,
                Span::new(3, 7, 12),
                "unknown function `teach`",
            )
            .with_hint("DECLARE teach first"),
            Diagnostic::new(Code::Derivable, Span::new(1, 8, 13), "derivable"),
        ];
        let text = render_sarif("scripts/demo.fdb", &diags);
        let log = serde_json::parse(&text).expect("SARIF output is valid JSON");

        assert_eq!(get(&log, "version").as_str(), Some(SARIF_VERSION));
        assert_eq!(get(&log, "$schema").as_str(), Some(SARIF_SCHEMA));

        let runs = get(&log, "runs").as_seq().expect("runs array");
        assert_eq!(runs.len(), 1);
        let driver = get(get(&runs[0], "tool"), "driver");
        assert_eq!(get(driver, "name").as_str(), Some("fdb-lint"));

        let rules = get(driver, "rules").as_seq().expect("rules array");
        assert_eq!(rules.len(), Code::ALL.len());
        let ids: Vec<&str> = rules
            .iter()
            .map(|r| get(r, "id").as_str().expect("rule id"))
            .collect();
        assert!(ids.contains(&"FDB001"));
        assert!(ids.contains(&"FDB018"));
        assert!(ids.contains(&"FDB019"));
        assert!(ids.contains(&"FDB031"));

        let results = get(&runs[0], "results").as_seq().expect("results array");
        assert_eq!(results.len(), 2);
        let r0 = &results[0];
        assert_eq!(get(r0, "ruleId").as_str(), Some("FDB001"));
        assert_eq!(get(r0, "level").as_str(), Some("error"));
        let msg = get(get(r0, "message"), "text").as_str().expect("message");
        assert!(msg.contains("unknown function"));
        assert!(msg.contains("hint"));

        let locs = get(r0, "locations").as_seq().expect("locations");
        let phys = get(&locs[0], "physicalLocation");
        assert_eq!(
            get(get(phys, "artifactLocation"), "uri").as_str(),
            Some("scripts/demo.fdb")
        );
        let region = get(phys, "region");
        assert_eq!(get(region, "startLine"), &Content::U64(3));
        assert_eq!(get(region, "startColumn"), &Content::U64(8));
        assert_eq!(get(region, "endColumn"), &Content::U64(13));
    }

    #[test]
    fn empty_diagnostics_still_produce_a_run() {
        let text = render_sarif("x.fdb", &[]);
        let log = serde_json::parse(&text).expect("valid JSON");
        let runs = get(&log, "runs").as_seq().expect("runs");
        assert_eq!(runs.len(), 1);
        let results = get(&runs[0], "results").as_seq().expect("results");
        assert!(results.is_empty());
    }
}
