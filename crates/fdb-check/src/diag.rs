//! Typed diagnostics: stable codes, severities, spans and fix hints.
//!
//! Every finding the analyzer can produce has a stable `FDB0xx` code so
//! that baselines, CI gates and editors can match on it across releases.
//! The code, not the message text, is the contract.

use std::fmt;

use fdb_types::Span;
use serde::Content;

/// Severity of a diagnostic, ordered `Info < Warn < Error`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory: schema-design observations (alias pairs, derivability).
    Info,
    /// The script will run but do something the author probably did not
    /// intend (guaranteed-ambiguous reads, dead writes, blow-up risk).
    Warn,
    /// The engine is guaranteed to reject the statement at runtime.
    Error,
}

impl Severity {
    /// Lower-case name used in text output (`error`, `warn`, `info`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }

    /// The SARIF `level` for this severity.
    pub fn sarif_level(self) -> &'static str {
        match self {
            Severity::Info => "note",
            Severity::Warn => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Stable diagnostic codes. `FDB00x` = resolution/well-formedness errors,
/// `FDB01x` = transaction-structure lints, `FDB02x` = three-valued-logic
/// lints, `FDB03x` = cost/feasibility lints, `FDB04x` = deployment-mode
/// lints (replica scripts), `FDB05x` = data-aware discovery findings
/// (non-genuine: they describe the *current extension*, not the schema).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// FDB000 — the line does not parse at all (CLI front end only).
    Syntax,
    /// FDB001 — a statement references a function that is not declared.
    UndefinedFunction,
    /// FDB002 — `DECLARE` of a name that is already declared.
    DuplicateDeclare,
    /// FDB003 — consecutive derivation steps do not chain (range of one
    /// step is not the domain of the next).
    BrokenChain,
    /// FDB004 — a derivation chains but its endpoints do not match the
    /// target function's declared domain/range.
    EndpointMismatch,
    /// FDB005 — a derivation's composed functionality differs from the
    /// target's declared functionality.
    FunctionalityMismatch,
    /// FDB006 — a derivation mentions the function it derives.
    SelfReferential,
    /// FDB007 — a derivation steps through another *derived* function.
    StepThroughDerived,
    /// FDB008 — `DERIVE` targets a function that already holds base facts.
    ShadowsFacts,
    /// FDB009 — two base functions are mutually derivable aliases.
    AliasPair,
    /// FDB010 — a base function is derivable from the rest of the schema.
    Derivable,
    /// FDB018 — an unbalanced transaction statement: `COMMIT`, `ROLLBACK`
    /// or `SAVEPOINT` without an open `BEGIN`, `BEGIN` inside an open
    /// transaction, or `ROLLBACK TO` an unknown savepoint.
    UnbalancedTxn,
    /// FDB019 — the script ends with a transaction still open: its
    /// updates never commit (a durable store discards them at recovery).
    UnclosedTxn,
    /// FDB020 — a read is guaranteed to yield only `ambiguous` results.
    GuaranteedAmbiguous,
    /// FDB021 — a derived insert must raise a functionality (GD) conflict.
    GuaranteedConflict,
    /// FDB022 — a derived delete has no supporting chain: there is no
    /// negated conjunction to discharge, the fact is already false.
    UndischargeableDelete,
    /// FDB023 — a fact is inserted and later deleted without ever being
    /// read in between.
    DeadWrite,
    /// FDB030 — a derivation's estimated chain count exceeds the budget.
    ChainBudget,
    /// FDB031 — a `DECLARE` closes a cycle in the function graph; without
    /// the Unique Form Assumption, design analysis over cycles can be
    /// exponential.
    CycleWithoutUfa,
    /// FDB040 — a write statement in a script declared `-- mode: replica`:
    /// a read-only replica engine refuses it at runtime.
    ReplicaWrite,
    /// FDB050 — a stored function's extension is single-valued in a
    /// direction its declaration does not guarantee (incidental,
    /// non-genuine functionality).
    IncidentalFunctionality,
    /// FDB051 — a stored function's extension violates its *declared*
    /// functionality; the message carries a minimal cardinality repair
    /// (the smallest fact set whose deletion restores the constraint).
    FunctionalityViolated,
    /// FDB052 — a stored function's extension is reproduced by a
    /// derivation over other base functions (candidate derived function,
    /// Method 2.1 designer proposal).
    CandidateDerivation,
    /// FDB053 — a non-genuine assumption the planner was using was
    /// invalidated by a base write.
    NonGenuineInvalidated,
}

impl Code {
    /// Every code, in numeric order.
    pub const ALL: [Code; 24] = [
        Code::Syntax,
        Code::UndefinedFunction,
        Code::DuplicateDeclare,
        Code::BrokenChain,
        Code::EndpointMismatch,
        Code::FunctionalityMismatch,
        Code::SelfReferential,
        Code::StepThroughDerived,
        Code::ShadowsFacts,
        Code::AliasPair,
        Code::Derivable,
        Code::UnbalancedTxn,
        Code::UnclosedTxn,
        Code::GuaranteedAmbiguous,
        Code::GuaranteedConflict,
        Code::UndischargeableDelete,
        Code::DeadWrite,
        Code::ChainBudget,
        Code::CycleWithoutUfa,
        Code::ReplicaWrite,
        Code::IncidentalFunctionality,
        Code::FunctionalityViolated,
        Code::CandidateDerivation,
        Code::NonGenuineInvalidated,
    ];

    /// The stable code string, e.g. `FDB001`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::Syntax => "FDB000",
            Code::UndefinedFunction => "FDB001",
            Code::DuplicateDeclare => "FDB002",
            Code::BrokenChain => "FDB003",
            Code::EndpointMismatch => "FDB004",
            Code::FunctionalityMismatch => "FDB005",
            Code::SelfReferential => "FDB006",
            Code::StepThroughDerived => "FDB007",
            Code::ShadowsFacts => "FDB008",
            Code::AliasPair => "FDB009",
            Code::Derivable => "FDB010",
            Code::UnbalancedTxn => "FDB018",
            Code::UnclosedTxn => "FDB019",
            Code::GuaranteedAmbiguous => "FDB020",
            Code::GuaranteedConflict => "FDB021",
            Code::UndischargeableDelete => "FDB022",
            Code::DeadWrite => "FDB023",
            Code::ChainBudget => "FDB030",
            Code::CycleWithoutUfa => "FDB031",
            Code::ReplicaWrite => "FDB040",
            Code::IncidentalFunctionality => "FDB050",
            Code::FunctionalityViolated => "FDB051",
            Code::CandidateDerivation => "FDB052",
            Code::NonGenuineInvalidated => "FDB053",
        }
    }

    /// Fixed severity of the code.
    pub fn severity(self) -> Severity {
        match self {
            Code::Syntax
            | Code::UndefinedFunction
            | Code::DuplicateDeclare
            | Code::BrokenChain
            | Code::EndpointMismatch
            | Code::FunctionalityMismatch
            | Code::SelfReferential
            | Code::StepThroughDerived
            | Code::ShadowsFacts
            | Code::UnbalancedTxn
            | Code::ReplicaWrite => Severity::Error,
            Code::UnclosedTxn
            | Code::GuaranteedAmbiguous
            | Code::GuaranteedConflict
            | Code::UndischargeableDelete
            | Code::DeadWrite
            | Code::ChainBudget
            | Code::FunctionalityViolated => Severity::Warn,
            Code::AliasPair
            | Code::Derivable
            | Code::CycleWithoutUfa
            | Code::IncidentalFunctionality
            | Code::CandidateDerivation
            | Code::NonGenuineInvalidated => Severity::Info,
        }
    }

    /// Short rule name (SARIF `shortDescription`).
    pub fn title(self) -> &'static str {
        match self {
            Code::Syntax => "syntax error",
            Code::UndefinedFunction => "undefined function",
            Code::DuplicateDeclare => "duplicate declaration",
            Code::BrokenChain => "derivation steps do not chain",
            Code::EndpointMismatch => "derivation endpoints mismatch",
            Code::FunctionalityMismatch => "derivation functionality mismatch",
            Code::SelfReferential => "self-referential derivation",
            Code::StepThroughDerived => "derivation through derived function",
            Code::ShadowsFacts => "derivation shadows stored facts",
            Code::AliasPair => "mutually derivable alias pair",
            Code::Derivable => "function derivable from rest of schema",
            Code::UnbalancedTxn => "unbalanced transaction statement",
            Code::UnclosedTxn => "script ends with unclosed transaction",
            Code::GuaranteedAmbiguous => "read guaranteed ambiguous",
            Code::GuaranteedConflict => "derived insert guaranteed to conflict",
            Code::UndischargeableDelete => "derived delete with no supporting chain",
            Code::DeadWrite => "fact inserted and deleted without a read",
            Code::ChainBudget => "estimated chain count exceeds budget",
            Code::CycleWithoutUfa => "declaration closes a function-graph cycle",
            Code::ReplicaWrite => "write statement in replica-mode script",
            Code::IncidentalFunctionality => "incidental functionality not declared",
            Code::FunctionalityViolated => "declared functionality violated by stored facts",
            Code::CandidateDerivation => "stored extension matches a candidate derivation",
            Code::NonGenuineInvalidated => "non-genuine assumption invalidated by a write",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: a code anchored to a source span, with a message and an
/// optional fix hint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: Code,
    /// Where in the script the finding anchors. `line == 0` means "no
    /// source location" (schema-only analysis).
    pub span: Span,
    /// Human-readable statement of the finding.
    pub message: String,
    /// Optional suggestion for fixing it.
    pub hint: Option<String>,
}

impl Diagnostic {
    /// Builds a diagnostic without a hint.
    pub fn new(code: Code, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            span,
            message: message.into(),
            hint: None,
        }
    }

    /// Attaches a fix hint.
    pub fn with_hint(mut self, hint: impl Into<String>) -> Self {
        self.hint = Some(hint.into());
        self
    }

    /// The code's severity.
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }

    /// Renders the one-line text form:
    /// `FDB001 error 3:8: unknown function \`teach\``, followed by an
    /// indented `hint:` line when one is present. Spans on line 0 (no
    /// source location) render without the `line:col` anchor.
    pub fn render(&self) -> String {
        let mut out = if self.span.line == 0 {
            format!("{} {}: {}", self.code, self.severity(), self.message)
        } else {
            format!(
                "{} {} {}:{}: {}",
                self.code,
                self.severity(),
                self.span.line,
                self.span.col(),
                self.message
            )
        };
        if let Some(hint) = &self.hint {
            out.push_str("\n  hint: ");
            out.push_str(hint);
        }
        out
    }

    /// The diagnostic as a JSON-ready content tree.
    pub fn to_content(&self) -> Content {
        let mut entries = vec![
            (
                Content::Str("code".into()),
                Content::Str(self.code.as_str().into()),
            ),
            (
                Content::Str("severity".into()),
                Content::Str(self.severity().as_str().into()),
            ),
            (
                Content::Str("line".into()),
                Content::U64(u64::from(self.span.line)),
            ),
            (
                Content::Str("col".into()),
                Content::U64(u64::from(self.span.col())),
            ),
            (
                Content::Str("end_col".into()),
                Content::U64(u64::from(self.span.end_col())),
            ),
            (
                Content::Str("message".into()),
                Content::Str(self.message.clone()),
            ),
        ];
        if let Some(hint) = &self.hint {
            entries.push((Content::Str("hint".into()), Content::Str(hint.clone())));
        }
        Content::Map(entries)
    }
}

/// Orders diagnostics by (line, column, code) for deterministic output.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.span.line, a.span.start, a.code, &a.message).cmp(&(
            b.span.line,
            b.span.start,
            b.code,
            &b.message,
        ))
    });
}

/// Counts findings per severity: `(errors, warnings, infos)`.
pub fn tally(diags: &[Diagnostic]) -> (usize, usize, usize) {
    let mut e = 0;
    let mut w = 0;
    let mut i = 0;
    for d in diags {
        match d.severity() {
            Severity::Error => e += 1,
            Severity::Warn => w += 1,
            Severity::Info => i += 1,
        }
    }
    (e, w, i)
}

/// The fixed-form summary line: `check: 1 errors, 0 warnings, 2 infos`.
pub fn summary_line(diags: &[Diagnostic]) -> String {
    let (e, w, i) = tally(diags);
    format!("check: {e} errors, {w} warnings, {i} infos")
}

/// Renders findings as text: one [`Diagnostic::render`] block per finding
/// followed by the summary line. Always ends with a newline.
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.render());
        out.push('\n');
    }
    out.push_str(&summary_line(diags));
    out.push('\n');
    out
}

/// Renders findings as a JSON array (compact, one line).
pub fn render_json(diags: &[Diagnostic]) -> String {
    let tree = Content::Seq(diags.iter().map(Diagnostic::to_content).collect());
    let raw = RawContent(tree);
    serde_json::to_string(&raw).unwrap_or_else(|_| "[]".into())
}

/// Renders any hand-built [`Content`] tree as compact JSON (the CLI uses
/// this to assemble multi-file reports).
pub fn render_content(tree: &Content) -> String {
    serde_json::to_string(&RawContent(tree.clone())).unwrap_or_else(|_| "null".into())
}

/// Wrapper granting a hand-built [`Content`] tree a `Serialize` impl so
/// the vendored `serde_json` can render it.
pub(crate) struct RawContent(pub Content);

impl serde::Serialize for RawContent {
    fn to_content(&self) -> Content {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for c in Code::ALL {
            assert!(seen.insert(c.as_str()), "duplicate code {c}");
            assert!(c.as_str().starts_with("FDB"));
            assert_eq!(c.as_str().len(), 6);
        }
        assert_eq!(Code::ALL.len(), 24);
    }

    #[test]
    fn code_registry_is_ordered_and_contiguous_where_claimed() {
        // `Code::ALL` must list codes in strictly ascending numeric order,
        // so a new family can't silently collide with or shadow an
        // existing code.
        let nums: Vec<u32> = Code::ALL
            .iter()
            .map(|c| c.as_str()[3..].parse().expect("numeric suffix"))
            .collect();
        for w in nums.windows(2) {
            assert!(w[0] < w[1], "Code::ALL not ascending at FDB{:03}", w[1]);
        }

        // Each family block documented as contiguous must be exactly that:
        // no gaps inside the claimed range, nothing outside it.
        let family = |lo: u32, hi: u32| -> Vec<u32> {
            nums.iter()
                .copied()
                .filter(|&n| n >= lo && n <= hi)
                .collect()
        };
        assert_eq!(family(0, 10), (0..=10).collect::<Vec<_>>(), "FDB00x block");
        assert_eq!(
            family(18, 23),
            (18..=23).collect::<Vec<_>>(),
            "txn/3VL block"
        );
        assert_eq!(family(30, 31), vec![30, 31], "cost block");
        assert_eq!(family(40, 40), vec![40], "deployment block");
        assert_eq!(
            family(50, 53),
            (50..=53).collect::<Vec<_>>(),
            "FDB05x block"
        );
        assert_eq!(
            nums.len(),
            family(0, 10).len()
                + family(18, 23).len()
                + family(30, 31).len()
                + family(40, 40).len()
                + family(50, 53).len(),
            "a code lies outside every documented family block"
        );

        // Severity and title are total over the registry and stable: a
        // newly added code must pick a severity and a non-empty title.
        let mut titles = std::collections::HashSet::new();
        for c in Code::ALL {
            let _ = c.severity();
            assert!(!c.title().is_empty(), "{c} has an empty title");
            assert!(titles.insert(c.title()), "{c} reuses another code's title");
        }
        // Spot-check the FDB05x severities the docs promise: only the
        // declared-constraint violation warns, discovery facts are info.
        assert_eq!(Code::IncidentalFunctionality.severity(), Severity::Info);
        assert_eq!(Code::FunctionalityViolated.severity(), Severity::Warn);
        assert_eq!(Code::CandidateDerivation.severity(), Severity::Info);
        assert_eq!(Code::NonGenuineInvalidated.severity(), Severity::Info);
    }

    #[test]
    fn severity_orders_info_warn_error() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
    }

    #[test]
    fn render_includes_code_severity_and_position() {
        let d = Diagnostic::new(
            Code::UndefinedFunction,
            Span::new(3, 7, 12),
            "unknown function `teach`",
        );
        assert_eq!(d.render(), "FDB001 error 3:8: unknown function `teach`");
        let d = d.with_hint("DECLARE it first");
        assert!(d.render().ends_with("\n  hint: DECLARE it first"));
    }

    #[test]
    fn render_text_ends_with_summary() {
        let diags = vec![
            Diagnostic::new(Code::Derivable, Span::new(1, 0, 4), "a"),
            Diagnostic::new(Code::DeadWrite, Span::new(2, 0, 4), "b"),
        ];
        let text = render_text(&diags);
        assert!(text.ends_with("check: 0 errors, 1 warnings, 1 infos\n"));
    }

    #[test]
    fn json_roundtrips_through_parser() {
        let diags = vec![Diagnostic::new(
            Code::GuaranteedAmbiguous,
            Span::new(9, 6, 11),
            "truth of `teach(a, b)` is guaranteed ambiguous",
        )
        .with_hint("RESOLVE first")];
        let json = render_json(&diags);
        let tree = serde_json::parse(&json).expect("valid JSON");
        let seq = tree.as_seq().expect("array");
        assert_eq!(seq.len(), 1);
        let map = seq[0].as_map().expect("object");
        assert_eq!(
            serde::map_get(map, "code").and_then(Content::as_str),
            Some("FDB020")
        );
        assert_eq!(
            serde::map_get(map, "severity").and_then(Content::as_str),
            Some("warn")
        );
        assert_eq!(serde::map_get(map, "line"), Some(&Content::U64(9)));
        assert_eq!(serde::map_get(map, "col"), Some(&Content::U64(7)));
    }

    #[test]
    fn sort_is_by_position_then_code() {
        let mut diags = vec![
            Diagnostic::new(Code::DeadWrite, Span::new(5, 2, 3), "later"),
            Diagnostic::new(Code::Syntax, Span::new(1, 0, 1), "first"),
            Diagnostic::new(Code::UndefinedFunction, Span::new(1, 0, 1), "second"),
        ];
        sort_diagnostics(&mut diags);
        assert_eq!(diags[0].message, "first");
        assert_eq!(diags[1].message, "second");
        assert_eq!(diags[2].message, "later");
    }
}
