//! Schema topologies with controlled cycle structure.
//!
//! The complexity benches need function graphs whose shape is a knob:
//! Lemma 3's `O(n²)` bound is exercised on acyclic shapes of growing `n`,
//! and the "exponential number of cycles" caveat of §2.2 on shapes whose
//! simple-path count grows combinatorially (parallel ladders).

use fdb_types::{Functionality, Schema};

/// A family of schema shapes, parameterised by function count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topology {
    /// `t0 → t1 → … → tn`: one function per edge of a path.
    Path,
    /// All functions share the domain `hub`.
    Star,
    /// A balanced binary tree of types, functions pointing to children.
    Tree,
    /// A √n × √n grid: functions along rows and columns — cyclic, with a
    /// polynomial number of short cycles per added edge.
    Grid,
    /// A ladder of `width`-way parallel edge bundles: between consecutive
    /// types t_i, t_{i+1} there are `width` parallel functions. The number
    /// of simple paths from t_0 to t_m is `width^m` — the exponential
    /// blow-up case.
    Ladder {
        /// Parallel functions per rung.
        width: usize,
    },
    /// A [`Topology::Ladder`] closed into a loop by one `back` function
    /// from the last type to the first: every end-to-end simple path
    /// becomes a cycle through `back`, so cycle analysis of that edge
    /// faces `width^rungs` cycles. This is the adversarial input for
    /// resource-governed graph search — ungoverned enumeration would
    /// effectively never return.
    CycleBomb {
        /// Parallel functions per rung.
        width: usize,
    },
}

impl Topology {
    /// Builds a schema with (at least) `n` functions in this shape.
    ///
    /// All functions are declared many-many so every parallel/cyclic path
    /// is type-functionally equivalent — the adversarial case for cycle
    /// analysis.
    pub fn build(self, n: usize) -> Schema {
        let mut schema = Schema::new();
        let mm = Functionality::ManyMany;
        match self {
            Topology::Path => {
                for i in 0..n {
                    schema
                        .declare(
                            &format!("f{i}"),
                            &format!("t{i}"),
                            &format!("t{}", i + 1),
                            mm,
                        )
                        .unwrap();
                }
            }
            Topology::Star => {
                for i in 0..n {
                    schema
                        .declare(&format!("f{i}"), "hub", &format!("leaf{i}"), mm)
                        .unwrap();
                }
            }
            Topology::Tree => {
                for i in 0..n {
                    let child = i + 1;
                    let parent = i / 2;
                    schema
                        .declare(
                            &format!("f{i}"),
                            &format!("t{parent}"),
                            &format!("t{child}"),
                            mm,
                        )
                        .unwrap();
                }
            }
            Topology::Grid => {
                let side = (n as f64).sqrt().ceil() as usize;
                let side = side.max(2);
                let mut declared = 0;
                'outer: for r in 0..side {
                    for c in 0..side {
                        if c + 1 < side {
                            schema
                                .declare(
                                    &format!("h{r}_{c}"),
                                    &format!("g{r}_{c}"),
                                    &format!("g{r}_{}", c + 1),
                                    mm,
                                )
                                .unwrap();
                            declared += 1;
                            if declared >= n {
                                break 'outer;
                            }
                        }
                        if r + 1 < side {
                            schema
                                .declare(
                                    &format!("v{r}_{c}"),
                                    &format!("g{r}_{c}"),
                                    &format!("g{}_{c}", r + 1),
                                    mm,
                                )
                                .unwrap();
                            declared += 1;
                            if declared >= n {
                                break 'outer;
                            }
                        }
                    }
                }
            }
            Topology::Ladder { width } => {
                let width = width.max(1);
                let rungs = n.div_ceil(width).max(1);
                let mut declared = 0;
                'outer: for r in 0..rungs {
                    for w in 0..width {
                        schema
                            .declare(
                                &format!("f{r}_{w}"),
                                &format!("t{r}"),
                                &format!("t{}", r + 1),
                                mm,
                            )
                            .unwrap();
                        declared += 1;
                        if declared >= n {
                            break 'outer;
                        }
                    }
                }
            }
            Topology::CycleBomb { width } => {
                let width = width.max(1);
                // Reserve one declaration for the closing edge.
                let ladder = n.saturating_sub(1).max(1);
                let rungs = ladder.div_ceil(width).max(1);
                let mut declared = 0;
                let mut last = 0;
                'outer: for r in 0..rungs {
                    for w in 0..width {
                        schema
                            .declare(
                                &format!("f{r}_{w}"),
                                &format!("t{r}"),
                                &format!("t{}", r + 1),
                                mm,
                            )
                            .unwrap();
                        last = r + 1;
                        declared += 1;
                        if declared >= ladder {
                            break 'outer;
                        }
                    }
                }
                schema
                    .declare("back", &format!("t{last}"), "t0", mm)
                    .unwrap();
            }
        }
        schema
    }

    /// The number of simple cycles through the `back` edge of a
    /// [`Topology::CycleBomb`] built with `n` functions — `width^rungs`.
    /// Useful for sizing budgets in tests: a harness can pick budgets
    /// well below this count and assert truncation happened.
    pub fn cycle_bomb_cycle_count(width: usize, n: usize) -> u64 {
        let width = width.max(1);
        let ladder = n.saturating_sub(1).max(1);
        let rungs = ladder.div_ceil(width).max(1) as u32;
        (width as u64).saturating_pow(rungs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_graph::{cycles_through_edge, FunctionGraph, PathLimits};

    #[test]
    fn shapes_have_requested_size() {
        for topo in [
            Topology::Path,
            Topology::Star,
            Topology::Tree,
            Topology::Grid,
            Topology::Ladder { width: 3 },
        ] {
            let s = topo.build(12);
            assert_eq!(s.len(), 12, "{topo:?}");
        }
    }

    #[test]
    fn path_star_tree_are_acyclic() {
        for topo in [Topology::Path, Topology::Star, Topology::Tree] {
            let s = topo.build(16);
            let g = FunctionGraph::from_schema(&s);
            for def in s.functions() {
                let e = g.edge_of(def.id).unwrap().id;
                assert!(
                    cycles_through_edge(&g, e, PathLimits::default()).is_empty(),
                    "{topo:?} produced a cycle"
                );
            }
        }
    }

    #[test]
    fn ladder_path_count_is_exponential() {
        // width w, m rungs → w^m simple paths end to end.
        let s = Topology::Ladder { width: 2 }.build(8); // 4 rungs of 2
        let g = FunctionGraph::from_schema(&s);
        let t0 = s.types().lookup("t0").unwrap();
        let t4 = s.types().lookup("t4").unwrap();
        let paths = fdb_graph::all_simple_paths(
            &g,
            t0,
            t4,
            &std::collections::HashSet::new(),
            PathLimits::unbounded_for_benchmarks(),
        );
        assert_eq!(paths.len(), 16); // 2^4
    }

    #[test]
    fn cycle_bomb_explodes_through_back_edge() {
        use fdb_graph::{cycles_through_edge_governed, Governor};

        // 2 wide, 4 rungs + back edge = 9 functions, 2^4 = 16 cycles.
        let s = Topology::CycleBomb { width: 2 }.build(9);
        let g = FunctionGraph::from_schema(&s);
        let back = s.functions().iter().find(|d| d.name == "back").unwrap();
        let e = g.edge_of(back.id).unwrap().id;
        let cycles = cycles_through_edge(&g, e, PathLimits::unbounded_for_benchmarks());
        assert_eq!(cycles.len() as u64, Topology::cycle_bomb_cycle_count(2, 9));
        // Under a small step budget the governed search stops early and
        // reports why instead of silently truncating.
        let gov = Governor::with_max_steps(10);
        let outcome =
            cycles_through_edge_governed(&g, e, PathLimits::unbounded_for_benchmarks(), &gov);
        assert!(!outcome.is_complete());
    }

    #[test]
    fn grid_is_cyclic() {
        let s = Topology::Grid.build(12);
        let g = FunctionGraph::from_schema(&s);
        let any_cycle = s.functions().iter().any(|def| {
            let e = g.edge_of(def.id).unwrap().id;
            !cycles_through_edge(&g, e, PathLimits::default()).is_empty()
        });
        assert!(any_cycle);
    }
}
