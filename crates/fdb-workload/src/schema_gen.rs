//! Random schemas, including redundant schemas with known ground truth.
//!
//! [`redundant_schema`] builds an acyclic *base* skeleton and then adds
//! derived functions that are (by construction) compositions of base
//! paths. The ground truth — which names are derived and their unique
//! derivations — feeds the `OracleDesigner` so the design-aid benchmarks
//! can measure dialogue cost and verify that Method 2.1 recovers the
//! truth.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use fdb_graph::{FunctionGraph, PathLimits};
use fdb_types::{Derivation, Functionality, Schema};

/// Configuration for plain random schema generation.
#[derive(Clone, Copy, Debug)]
pub struct SchemaGenConfig {
    /// Number of functions.
    pub n_functions: usize,
    /// Number of object types to draw endpoints from.
    pub n_types: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SchemaGenConfig {
    /// Generates a random schema: endpoints and functionalities drawn
    /// uniformly.
    pub fn generate(&self) -> Schema {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut schema = Schema::new();
        for i in 0..self.n_functions {
            let d = rng.gen_range(0..self.n_types);
            let r = rng.gen_range(0..self.n_types);
            let f = Functionality::ALL[rng.gen_range(0..4usize)];
            schema
                .declare(&format!("f{i}"), &format!("t{d}"), &format!("t{r}"), f)
                .unwrap();
        }
        schema
    }
}

/// Ground truth attached to a generated redundant schema.
#[derive(Clone, Debug, Default)]
pub struct GroundTruth {
    /// Names of the functions constructed as derived.
    pub derived: Vec<String>,
    /// For each derived name, its constructed derivation rendered against
    /// the returned schema (e.g. `"f0 o f3"`).
    pub derivations: Vec<(String, String)>,
}

/// Builds a schema of `n_base` acyclic base functions (a random tree over
/// types) plus `n_derived` functions that are compositions of random base
/// paths of length ≥ 2, declared in shuffled order. Returns the schema and
/// the ground truth.
///
/// All functions are many-many so that candidate detection cannot lean on
/// functionality alone — the designer (oracle) is genuinely needed, as in
/// the paper's S2 discussion.
pub fn redundant_schema(seed: u64, n_base: usize, n_derived: usize) -> (Schema, GroundTruth) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_base = n_base.max(2);
    let mm = Functionality::ManyMany;

    // Base skeleton: a random tree (acyclic, connected) over n_base+1 types.
    let mut base_schema = Schema::new();
    for i in 0..n_base {
        let parent = if i == 0 { 0 } else { rng.gen_range(0..=i - 1) };
        // Function i connects t{parent} → t{i+1}; tree over t0..t{n_base}.
        base_schema
            .declare(
                &format!("b{i}"),
                &format!("t{parent}"),
                &format!("t{}", i + 1),
                mm,
            )
            .unwrap();
    }
    let graph = FunctionGraph::from_schema(&base_schema);

    // Derived functions: random simple paths of length ≥ 2 in the tree.
    let types: Vec<_> = graph.nodes();
    let mut truth = GroundTruth::default();
    let mut derived_specs: Vec<(String, String, String, Derivation)> = Vec::new();
    let mut attempts = 0;
    while derived_specs.len() < n_derived && attempts < n_derived * 50 {
        attempts += 1;
        let a = types[rng.gen_range(0..types.len())];
        let b = types[rng.gen_range(0..types.len())];
        if a == b {
            continue;
        }
        let paths = fdb_graph::all_simple_paths(
            &graph,
            a,
            b,
            &std::collections::HashSet::new(),
            PathLimits {
                max_len: 6,
                max_paths: 1,
            },
        );
        let Some(path) = paths.into_iter().next() else {
            continue;
        };
        if path.len() < 2 {
            continue;
        }
        let name = format!("d{}", derived_specs.len());
        let derivation = path.to_derivation(&graph);
        derived_specs.push((
            name,
            base_schema.type_name(a).to_owned(),
            base_schema.type_name(b).to_owned(),
            derivation,
        ));
    }

    // Final schema: base + derived declarations, shuffled so derived
    // functions arrive at arbitrary points of the design session.
    enum Decl {
        Base(usize),
        Derived(usize),
    }
    let mut order: Vec<Decl> = (0..n_base)
        .map(Decl::Base)
        .chain((0..derived_specs.len()).map(Decl::Derived))
        .collect();
    order.shuffle(&mut rng);

    let mut schema = Schema::new();
    for decl in &order {
        match decl {
            Decl::Base(i) => {
                let def = base_schema.function_by_name(&format!("b{i}")).unwrap();
                schema
                    .declare(
                        &format!("b{i}"),
                        base_schema.type_name(def.domain),
                        base_schema.type_name(def.range),
                        mm,
                    )
                    .unwrap();
            }
            Decl::Derived(i) => {
                let (name, dom, rng_ty, _) = &derived_specs[*i];
                schema.declare(name, dom, rng_ty, mm).unwrap();
            }
        }
    }
    for (name, _, _, derivation) in &derived_specs {
        truth.derived.push(name.clone());
        truth
            .derivations
            .push((name.clone(), derivation.render(&base_schema)));
    }
    (schema, truth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_graph::{DesignSession, OracleDesigner};

    #[test]
    fn generation_is_deterministic() {
        let a = SchemaGenConfig {
            n_functions: 10,
            n_types: 5,
            seed: 7,
        }
        .generate();
        let b = SchemaGenConfig {
            n_functions: 10,
            n_types: 5,
            seed: 7,
        }
        .generate();
        for (x, y) in a.functions().iter().zip(b.functions()) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.functionality, y.functionality);
        }
    }

    #[test]
    fn redundant_schema_has_requested_shape() {
        let (schema, truth) = redundant_schema(42, 10, 4);
        assert_eq!(schema.len(), 10 + truth.derived.len());
        assert!(!truth.derived.is_empty());
        for name in &truth.derived {
            assert!(schema.function_by_name(name).is_some());
        }
    }

    #[test]
    fn oracle_driven_design_recovers_ground_truth() {
        let (schema, truth) = redundant_schema(7, 8, 3);
        let mut oracle = OracleDesigner::new(truth.derived.iter().cloned());
        let mut session = DesignSession::new();
        for def in schema.functions() {
            session
                .add_function(
                    &def.name,
                    schema.type_name(def.domain),
                    schema.type_name(def.range),
                    def.functionality,
                    &mut oracle,
                )
                .unwrap();
        }
        let derived_names: Vec<String> = session
            .derived_functions()
            .into_iter()
            .map(|f| session.schema().function(f).name.clone())
            .collect();
        let mut expected = truth.derived.clone();
        expected.sort();
        let mut got = derived_names.clone();
        got.sort();
        assert_eq!(
            got, expected,
            "design aid must recover exactly the ground truth"
        );
    }
}
