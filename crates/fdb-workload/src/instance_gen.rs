//! Random instance population.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fdb_core::Database;
use fdb_types::Value;

/// Fills every base table of `db` with `facts_per_function` random pairs
/// drawn from per-type domains of `domain_size` values. Values of type `t`
/// are named `t#k` so joins across functions sharing a type actually meet.
///
/// Returns the number of facts inserted (duplicates collapse).
pub fn populate(
    db: &mut Database,
    seed: u64,
    facts_per_function: usize,
    domain_size: usize,
) -> usize {
    let mut rng = StdRng::seed_from_u64(seed);
    let domain_size = domain_size.max(1);
    let mut inserted = 0;
    for f in db.base_functions() {
        let def = db.schema().function(f).clone();
        let dname = db.schema().type_name(def.domain).to_owned();
        let rname = db.schema().type_name(def.range).to_owned();
        for _ in 0..facts_per_function {
            let x = Value::atom(format!("{dname}#{}", rng.gen_range(0..domain_size)));
            let y = Value::atom(format!("{rname}#{}", rng.gen_range(0..domain_size)));
            let before = db.store().table(f).len();
            db.insert(f, x, y)
                .expect("base insert of atoms cannot fail");
            if db.store().table(f).len() > before {
                inserted += 1;
            }
        }
    }
    inserted
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_types::Schema;

    #[test]
    fn populate_is_deterministic_and_joinable() {
        let schema = Schema::builder()
            .function("teach", "faculty", "course", "many-many")
            .function("class_list", "course", "student", "many-many")
            .build()
            .unwrap();
        let mut db1 = Database::new(schema.clone());
        let mut db2 = Database::new(schema);
        let n1 = populate(&mut db1, 5, 50, 10);
        let n2 = populate(&mut db2, 5, 50, 10);
        assert_eq!(n1, n2);
        assert!(n1 > 0);
        // Same contents.
        let t = db1.resolve("teach").unwrap();
        assert_eq!(
            db1.extension(t).unwrap().len(),
            db2.extension(t).unwrap().len()
        );
        // Values share the course domain: some course appears on both sides.
        let teach_courses: std::collections::HashSet<String> = db1
            .extension(t)
            .unwrap()
            .iter()
            .map(|p| p.y.to_string())
            .collect();
        let c = db1.resolve("class_list").unwrap();
        let class_courses: std::collections::HashSet<String> = db1
            .extension(c)
            .unwrap()
            .iter()
            .map(|p| p.x.to_string())
            .collect();
        assert!(teach_courses.intersection(&class_courses).next().is_some());
    }
}
