//! Random update streams.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fdb_core::{Database, Update};
use fdb_relational::ChainDb;
use fdb_types::{FunctionId, Value};

/// The kind mix of a generated stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateKind {
    /// Insert on a base function.
    BaseInsert,
    /// Delete on a base function.
    BaseDelete,
    /// Insert on a derived function.
    DerivedInsert,
    /// Delete on a derived function.
    DerivedDelete,
}

/// Configuration for [`update_stream`].
#[derive(Clone, Copy, Debug)]
pub struct UpdateStreamConfig {
    /// Number of updates to generate.
    pub length: usize,
    /// Values per type domain.
    pub domain_size: usize,
    /// Percentage (0–100) of updates that target derived functions.
    pub derived_pct: u8,
    /// Percentage (0–100) of updates that are deletes.
    pub delete_pct: u8,
    /// RNG seed.
    pub seed: u64,
}

/// Generates a random update stream against `db`'s schema. Updates target
/// base or derived functions per `derived_pct`; values are drawn from the
/// same `t#k` naming scheme as [`crate::populate`], so streams compose
/// with populated instances.
pub fn update_stream(db: &Database, config: UpdateStreamConfig) -> Vec<Update> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let base = db.base_functions();
    let derived: Vec<FunctionId> = db
        .derived_functions()
        .into_iter()
        .filter(|&f| !db.derivations(f).is_empty())
        .collect();
    let mut out = Vec::with_capacity(config.length);
    for _ in 0..config.length {
        let use_derived =
            !derived.is_empty() && rng.gen_range(0..100u32) < u32::from(config.derived_pct);
        let f = if use_derived {
            derived[rng.gen_range(0..derived.len())]
        } else if base.is_empty() {
            continue;
        } else {
            base[rng.gen_range(0..base.len())]
        };
        let def = db.schema().function(f);
        let x = Value::atom(format!(
            "{}#{}",
            db.schema().type_name(def.domain),
            rng.gen_range(0..config.domain_size)
        ));
        let y = Value::atom(format!(
            "{}#{}",
            db.schema().type_name(def.range),
            rng.gen_range(0..config.domain_size)
        ));
        let delete = rng.gen_range(0..100u32) < u32::from(config.delete_pct);
        out.push(if delete {
            Update::Delete { function: f, x, y }
        } else {
            Update::Insert { function: f, x, y }
        });
    }
    out
}

/// Builds a populated [`ChainDb`] of `k` relations mirroring a function
/// composition chain, for the baseline comparison benches. Values at
/// boundary `i` are `v{i}#{j}` with `j < domain_size`.
pub fn chain_db_workload(
    seed: u64,
    k: usize,
    tuples_per_relation: usize,
    domain_size: usize,
) -> ChainDb {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = ChainDb::new(k);
    for i in 0..k {
        for _ in 0..tuples_per_relation {
            let l = format!("v{i}#{}", rng.gen_range(0..domain_size));
            let r = format!("v{}#{}", i + 1, rng.gen_range(0..domain_size));
            db.insert(i, l, r);
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_types::{Derivation, Schema, Step};

    fn db() -> Database {
        let schema = Schema::builder()
            .function("teach", "faculty", "course", "many-many")
            .function("class_list", "course", "student", "many-many")
            .function("pupil", "faculty", "student", "many-many")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        let (t, c, p) = (
            db.resolve("teach").unwrap(),
            db.resolve("class_list").unwrap(),
            db.resolve("pupil").unwrap(),
        );
        db.register_derived(
            p,
            vec![Derivation::new(vec![Step::identity(t), Step::identity(c)]).unwrap()],
        )
        .unwrap();
        db
    }

    #[test]
    fn stream_is_deterministic_and_applies_cleanly() {
        let mut database = db();
        let config = UpdateStreamConfig {
            length: 200,
            domain_size: 8,
            derived_pct: 30,
            delete_pct: 40,
            seed: 11,
        };
        let s1 = update_stream(&database, config);
        let s2 = update_stream(&database, config);
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), 200);
        for u in s1 {
            database.apply(u).unwrap();
        }
        assert!(database.is_consistent());
    }

    #[test]
    fn derived_pct_controls_targeting() {
        let database = db();
        let pupil = database.resolve("pupil").unwrap();
        let all_base = update_stream(
            &database,
            UpdateStreamConfig {
                length: 100,
                domain_size: 4,
                derived_pct: 0,
                delete_pct: 50,
                seed: 3,
            },
        );
        assert!(all_base.iter().all(|u| match u {
            Update::Insert { function, .. } | Update::Delete { function, .. } => *function != pupil,
            Update::Replace { function, .. } => *function != pupil,
        }));
        let all_derived = update_stream(
            &database,
            UpdateStreamConfig {
                length: 100,
                domain_size: 4,
                derived_pct: 100,
                delete_pct: 50,
                seed: 3,
            },
        );
        assert!(all_derived.iter().all(|u| match u {
            Update::Insert { function, .. } | Update::Delete { function, .. } => *function == pupil,
            Update::Replace { function, .. } => *function == pupil,
        }));
    }

    #[test]
    fn chain_db_workload_joins() {
        let db = chain_db_workload(9, 3, 60, 6);
        assert_eq!(db.arity(), 3);
        assert!(db.fact_count() > 0);
        // With dense small domains the view is non-empty.
        assert!(!db.view().is_empty());
    }
}
