//! Seeded workload generators for the fdb benchmarks and tests.
//!
//! The paper has no benchmark suite (1989 design-aid papers rarely did),
//! so reproducing its complexity claims (Lemma 3, the Method 2.1 cost
//! analysis) and its qualitative side-effect comparison requires synthetic
//! workloads. Everything here is deterministic given a seed, so every
//! bench row and every property failure is reproducible.
//!
//! * [`topology`] — schema shapes with controlled cycle structure (paths,
//!   stars, grids, cycle bundles, parallel ladders) for the AMS and
//!   design-aid scaling benches;
//! * [`schema_gen`] — random schemas and *redundant* schemas with known
//!   ground truth (which functions are derived, and how);
//! * [`instance_gen`] — random instances over a database's base tables;
//! * [`update_gen`] — random update streams (base/derived × insert/delete)
//!   and view-update streams for the relational baselines;
//! * [`university`] — the paper's running example: the §2.3 design trace
//!   input and the §3/§4.2 instance.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod instance_gen;
pub mod schema_gen;
pub mod topology;
pub mod university;
pub mod update_gen;

pub use instance_gen::populate;
pub use schema_gen::{redundant_schema, GroundTruth, SchemaGenConfig};
pub use topology::Topology;
pub use university::{
    university_at_scale, university_database, university_declarations, UNIVERSITY_TRACE,
};
pub use update_gen::{chain_db_workload, update_stream, UpdateKind, UpdateStreamConfig};
