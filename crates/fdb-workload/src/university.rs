//! The paper's running example, as reusable fixtures.
//!
//! * [`UNIVERSITY_TRACE`] / [`university_declarations`] — the nine
//!   function declarations of the §2.3 design trace, in paper order;
//! * [`trace_designer`] — a scripted designer answering exactly as the
//!   paper's designer does (remove `taught_by`, remove `lecturer_of`,
//!   keep the attendance cycle, remove `grade`, keep the candidate-free
//!   cycle; confirm three derivations, invalidate
//!   `grade = attendance o attendance_eval`);
//! * [`design_university`] — runs the full trace and returns the database
//!   whose base/derived split is Figure 1;
//! * [`university_database`] — the §3/§4.2 three-function database
//!   (`pupil = teach o class_list`) loaded with the paper's instance.

use fdb_core::session::FunctionDecl;
use fdb_core::{design_database, Database};
use fdb_graph::{DesignConfig, ScriptedDesigner};
use fdb_types::{Derivation, Result, Schema, Step, Value};

/// The §2.3 declarations: `(name, domain, range, functionality)`.
pub const UNIVERSITY_TRACE: &[(&str, &str, &str, &str)] = &[
    ("teach", "faculty", "course", "many-many"),
    ("taught_by", "course", "faculty", "many-many"),
    ("class_list", "course", "student", "many-many"),
    ("lecturer_of", "student", "faculty", "many-many"),
    ("grade", "[student; course]", "letter_grade", "many-one"),
    (
        "attendance",
        "[student; course]",
        "attn_percentage",
        "many-one",
    ),
    (
        "attendance_eval",
        "attn_percentage",
        "letter_grade",
        "many-one",
    ),
    ("score", "[student; course]", "marks", "many-one"),
    ("cutoff", "marks", "letter_grade", "many-one"),
];

/// The trace declarations as [`FunctionDecl`]s.
pub fn university_declarations() -> Vec<FunctionDecl> {
    UNIVERSITY_TRACE
        .iter()
        .map(|(n, d, r, f)| FunctionDecl::new(n, d, r, f).expect("trace is well-formed"))
        .collect()
}

/// A designer scripted with the paper's §2.3 answers.
pub fn trace_designer() -> ScriptedDesigner {
    let mut d = ScriptedDesigner::new();
    // Cycle teach - taught_by: remove taught_by.
    d.push_decision_by_name("taught_by");
    // Cycle teach - class_list - lecturer_of: remove lecturer_of.
    d.push_decision_by_name("lecturer_of");
    // Cycle grade - attendance - attendance_eval: "the designer does not
    // agree with the system and no edge is removed".
    d.push_keep();
    // Adding cutoff creates two cycles; the first (grade - score - cutoff)
    // has candidate grade, confirmed removed; the second has no candidate
    // and is kept.
    d.push_decision_by_name("grade");
    d.push_keep();
    // Derivation confirmations, in declaration order of the derived
    // functions (taught_by, lecturer_of, grade):
    d.push_confirmation(true); // taught_by = teach^-1
    d.push_confirmation(true); // lecturer_of = class_list^-1 o teach^-1
    d.push_confirmation(false); // grade = attendance o attendance_eval (invalidated)
    d.push_confirmation(true); // grade = score o cutoff
    d
}

/// Runs the full §2.3 design trace, returning the resulting database —
/// base functions and confirmed derivations exactly as Figure 1 reports.
pub fn design_university() -> Result<Database> {
    let mut designer = trace_designer();
    design_database(
        &university_declarations(),
        &mut designer,
        DesignConfig::default(),
    )
}

/// The §3 / §4.2 schema and instance: `teach`, `class_list` base and
/// `pupil = teach o class_list` derived, loaded with
/// `teach = {<euclid, math>, <laplace, math>, <laplace, physics>}` and
/// `class_list = {<math, john>, <math, bill>}`.
pub fn university_database() -> Result<Database> {
    let schema = Schema::builder()
        .function("teach", "faculty", "course", "many-many")
        .function("class_list", "course", "student", "many-many")
        .function("pupil", "faculty", "student", "many-many")
        .build()?;
    let mut db = Database::new(schema);
    let teach = db.resolve("teach")?;
    let class_list = db.resolve("class_list")?;
    let pupil = db.resolve("pupil")?;
    db.register_derived(
        pupil,
        vec![Derivation::new(vec![
            Step::identity(teach),
            Step::identity(class_list),
        ])?],
    )?;
    db.insert(teach, Value::atom("euclid"), Value::atom("math"))?;
    db.insert(teach, Value::atom("laplace"), Value::atom("math"))?;
    db.insert(teach, Value::atom("laplace"), Value::atom("physics"))?;
    db.insert(class_list, Value::atom("math"), Value::atom("john"))?;
    db.insert(class_list, Value::atom("math"), Value::atom("bill"))?;
    Ok(db)
}

/// A scaled-up instance of the §4.2 shape: `n_faculty` professors each
/// teaching `courses_per_faculty` of `n_courses` courses, and
/// `students_per_course` of `n_students` students per course — sized
/// workloads for the E10 benches and the larger examples. Deterministic
/// in `seed`.
pub fn university_at_scale(
    seed: u64,
    n_faculty: usize,
    n_courses: usize,
    n_students: usize,
    courses_per_faculty: usize,
    students_per_course: usize,
) -> Result<Database> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = university_database()?;
    let teach = db.resolve("teach")?;
    let class_list = db.resolve("class_list")?;
    // Clear the tiny paper instance first.
    for (f, rows) in [(teach, 3), (class_list, 2)] {
        let pairs: Vec<(Value, Value)> = db
            .store()
            .table(f)
            .rows()
            .map(|r| (r.x.clone(), r.y.clone()))
            .collect();
        debug_assert_eq!(pairs.len(), rows);
        for (x, y) in pairs {
            db.delete(f, &x, &y)?;
        }
    }
    for fi in 0..n_faculty {
        for _ in 0..courses_per_faculty {
            let c = rng.gen_range(0..n_courses.max(1));
            db.insert(
                teach,
                Value::atom(format!("prof{fi}")),
                Value::atom(format!("course{c}")),
            )?;
        }
    }
    for ci in 0..n_courses {
        for _ in 0..students_per_course {
            let s = rng.gen_range(0..n_students.max(1));
            db.insert(
                class_list,
                Value::atom(format!("course{ci}")),
                Value::atom(format!("student{s}")),
            )?;
        }
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_storage::Truth;

    #[test]
    fn design_trace_reproduces_figure_1() {
        let db = design_university().unwrap();
        let names = |fs: Vec<fdb_types::FunctionId>| -> Vec<String> {
            fs.into_iter()
                .map(|f| db.schema().function(f).name.clone())
                .collect()
        };
        assert_eq!(
            names(db.base_functions()),
            vec![
                "teach",
                "class_list",
                "attendance",
                "attendance_eval",
                "score",
                "cutoff"
            ]
        );
        assert_eq!(
            names(db.derived_functions()),
            vec!["taught_by", "lecturer_of", "grade"]
        );
    }

    #[test]
    fn design_trace_confirms_paper_derivations() {
        let db = design_university().unwrap();
        let render = |name: &str| -> Vec<String> {
            let f = db.resolve(name).unwrap();
            db.derivations(f)
                .iter()
                .map(|d| d.render(db.schema()))
                .collect()
        };
        assert_eq!(render("taught_by"), vec!["teach^-1"]);
        assert_eq!(render("lecturer_of"), vec!["class_list^-1 o teach^-1"]);
        // Only score o cutoff survives designer filtering.
        assert_eq!(render("grade"), vec!["score o cutoff"]);
    }

    #[test]
    fn scaled_university_is_deterministic_and_consistent() {
        let a = university_at_scale(7, 20, 15, 100, 3, 8).unwrap();
        let b = university_at_scale(7, 20, 15, 100, 3, 8).unwrap();
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().base_facts > 100);
        assert!(a.is_consistent());
        // Derived queries work over the scaled instance.
        let pupil = a.resolve("pupil").unwrap();
        let ext = a.extension(pupil).unwrap();
        assert!(!ext.is_empty());
    }

    #[test]
    fn university_instance_matches_paper() {
        let db = university_database().unwrap();
        let pupil = db.resolve("pupil").unwrap();
        let ext = db.extension(pupil).unwrap();
        assert_eq!(ext.len(), 4);
        assert!(ext.iter().all(|p| p.truth == Truth::True));
        assert_eq!(
            db.truth_by_name("pupil", &Value::atom("euclid"), &Value::atom("john"))
                .unwrap(),
            Truth::True
        );
    }
}
