//! Robustness properties of the language front end: the lexer, parser and
//! engine must never panic, whatever bytes arrive on a REPL line.

use proptest::prelude::*;

use fdb_lang::{parse_statement, Engine};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary unicode lines never panic the parser.
    #[test]
    fn parser_never_panics(line in "\\PC{0,80}") {
        let _ = parse_statement(&line, 1);
    }

    /// Arbitrary lines never panic a fresh engine either (they may error).
    #[test]
    fn engine_never_panics(line in "\\PC{0,80}") {
        let mut engine = Engine::new();
        let _ = engine.execute_line(&line);
    }

    /// Statement-shaped fuzz: keyword + arbitrary identifier soup parses
    /// or errors, never panics, and never mutates state on parse errors.
    #[test]
    fn keyword_fuzz_is_safe(
        kw in prop::sample::select(vec![
            "DECLARE", "DERIVE", "INSERT", "DELETE", "REPLACE", "QUERY",
            "TRUTH", "SHOW", "EVAL", "INVERSE", "SOURCE", "SAVE", "LOAD",
        ]),
        tail in "[a-z0-9 ():,^>\\[\\];-]{0,60}",
    ) {
        let mut engine = Engine::new();
        engine
            .execute_line("DECLARE f: a -> b (many-one)")
            .unwrap();
        let facts_before = engine.database().stats().base_facts;
        let line = format!("{kw} {tail}");
        if kw == "SAVE" {
            // A well-formed `SAVE <ident>` would write a file named by the
            // fuzz tail into the working tree; parsing alone still covers
            // the never-panic property (SAVE cannot mutate the database).
            let _ = parse_statement(&line, 1);
            return Ok(());
        }
        match engine.execute_line(&line) {
            Ok(_) => {}
            Err(_) => {
                // Failed statements must not have half-applied (except
                // SOURCE, which applies successfully parsed prefix lines
                // by design — the generated tail is never a readable file,
                // so nothing was executed there either).
                prop_assert_eq!(engine.database().stats().base_facts, facts_before);
            }
        }
    }

    /// Round trip: a DECLARE built from structured parts parses back to
    /// the same components.
    #[test]
    fn declare_round_trips(
        name in "[a-z][a-z0-9_]{0,12}",
        dom in "[a-z][a-z0-9_]{0,12}",
        rng in "[a-z][a-z0-9_]{0,12}",
        f in prop::sample::select(vec!["one-one", "one-many", "many-one", "many-many"]),
    ) {
        let line = format!("DECLARE {name}: {dom} -> {rng} ({f})");
        let stmt = parse_statement(&line, 1).unwrap();
        match stmt {
            fdb_lang::Statement::Declare { name: n, domain, range, functionality } => {
                prop_assert_eq!(n, name);
                prop_assert_eq!(domain, dom);
                prop_assert_eq!(range, rng);
                prop_assert_eq!(functionality, f);
            }
            other => prop_assert!(false, "unexpected statement {other:?}"),
        }
    }

    /// INSERT built from structured values round trips, including values
    /// that need quoting.
    #[test]
    fn insert_round_trips(
        x in "[a-zA-Z0-9_#.]{1,16}",
        y in "[a-zA-Z0-9_#.]{1,16}",
    ) {
        let line = format!("INSERT f({x}, {y})");
        let stmt = parse_statement(&line, 1).unwrap();
        match stmt {
            fdb_lang::Statement::Insert { function, x: px, y: py } => {
                prop_assert_eq!(function, "f");
                prop_assert_eq!(px, x);
                prop_assert_eq!(py, y);
            }
            other => prop_assert!(false, "unexpected statement {other:?}"),
        }
    }
}
