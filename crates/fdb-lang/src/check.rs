//! Lowering parsed statements into the `fdb-check` analysis IR.
//!
//! The analyzer does not know this crate's AST; [`lower`] converts a
//! [`SpannedStatement`] into the spanned [`CheckStmt`] form the analyzer
//! consumes. Statements the analysis does not model become
//! [`CheckStmt::Other`]; the ones that can pull facts from outside the
//! script (`SOURCE`, `LOAD`) are marked as opening the world, which
//! mutes the analyzer's closed-world guarantees from that point on.
//! Transaction control (`BEGIN`/`COMMIT`/`ABORT`/`SAVEPOINT`/`ROLLBACK
//! TO`) lowers to typed [`CheckStmt::Txn`] statements the analyzer
//! models exactly.

use fdb_check::{CheckStmt, Name, StepRef, TxnOp};
use fdb_types::Span;

use crate::ast::{DeriveStep, Statement};
use crate::parser::{SpannedStatement, StmtSpans};

fn name(spans: &StmtSpans, text: &str) -> Name {
    Name::new(text, spans.name.unwrap_or(spans.keyword))
}

fn arg_span(spans: &StmtSpans, i: usize) -> Span {
    spans.args.get(i).copied().unwrap_or(spans.keyword)
}

fn steps(spans: &StmtSpans, steps: &[DeriveStep]) -> Vec<StepRef> {
    steps
        .iter()
        .enumerate()
        .map(|(i, s)| StepRef {
            name: Name::new(
                &s.name,
                spans.steps.get(i).copied().unwrap_or(spans.keyword),
            ),
            inverse: s.inverse,
        })
        .collect()
}

/// Lowers one parsed statement to the analysis IR. `None` for blank lines.
pub fn lower(s: &SpannedStatement) -> Option<CheckStmt> {
    let sp = &s.spans;
    let keyword = sp.keyword;
    Some(match &s.stmt {
        Statement::Empty => return None,
        Statement::Declare {
            name: n,
            domain,
            range,
            functionality,
        } => CheckStmt::Declare {
            keyword,
            name: name(sp, n),
            domain: domain.clone(),
            range: range.clone(),
            functionality: Name::new(functionality, arg_span(sp, 2)),
        },
        Statement::Derive { name: n, steps: ss } => CheckStmt::Derive {
            keyword,
            name: name(sp, n),
            steps: steps(sp, ss),
        },
        Statement::Insert { function, x, y } => CheckStmt::Insert {
            keyword,
            function: name(sp, function),
            x: x.clone(),
            y: y.clone(),
        },
        Statement::Delete { function, x, y } => CheckStmt::Delete {
            keyword,
            function: name(sp, function),
            x: x.clone(),
            y: y.clone(),
        },
        Statement::Replace { function, old, new } => CheckStmt::Replace {
            keyword,
            function: name(sp, function),
            old: old.clone(),
            new: new.clone(),
        },
        Statement::Query { function, x } => CheckStmt::Query {
            keyword,
            function: name(sp, function),
            x: x.clone(),
        },
        Statement::Truth { function, x, y } => CheckStmt::Truth {
            keyword,
            function: name(sp, function),
            x: x.clone(),
            y: y.clone(),
        },
        Statement::Inverse { function, y } => CheckStmt::Inverse {
            keyword,
            function: name(sp, function),
            y: y.clone(),
        },
        Statement::Show { function }
        | Statement::Derivations { function }
        | Statement::Explain { function, .. }
        | Statement::ExplainPlan { function, .. }
        | Statement::ExplainAnalyze { function, .. } => CheckStmt::Read {
            keyword,
            function: name(sp, function),
        },
        Statement::Eval { steps: ss, .. } => CheckStmt::Eval {
            keyword,
            steps: steps(sp, ss),
        },
        Statement::Resolve => CheckStmt::Resolve { keyword },
        // These replace database state with facts the statement list does
        // not spell out.
        // `PROMOTE` swaps in the replica's state, which the statement
        // list does not spell out — world-opening like LOAD.
        Statement::Source { .. } | Statement::Load { .. } | Statement::Promote => {
            CheckStmt::Other {
                keyword,
                opens_world: true,
            }
        }
        // Transaction control lowers to a typed statement: the analyzer
        // models rollback exactly (snapshot/restore), so `ABORT` no
        // longer needs to open the world.
        Statement::Begin => CheckStmt::Txn {
            keyword,
            op: TxnOp::Begin,
            name: None,
        },
        Statement::Commit => CheckStmt::Txn {
            keyword,
            op: TxnOp::Commit,
            name: None,
        },
        Statement::Abort => CheckStmt::Txn {
            keyword,
            op: TxnOp::Rollback,
            name: None,
        },
        Statement::Savepoint { name: n } => CheckStmt::Txn {
            keyword,
            op: TxnOp::Savepoint,
            name: Some(name(sp, n)),
        },
        Statement::RollbackTo { name: n } => CheckStmt::Txn {
            keyword,
            op: TxnOp::RollbackTo,
            name: Some(name(sp, n)),
        },
        Statement::Schema
        | Statement::Stats
        | Statement::StatsReset
        | Statement::StatsJson
        | Statement::Timeout { .. }
        | Statement::Save { .. }
        | Statement::Dump { .. }
        | Statement::Check { .. }
        | Statement::CheckData
        | Statement::Discover { .. }
        | Statement::Strict { .. }
        | Statement::Trace { .. }
        | Statement::TraceSlow { .. }
        | Statement::ShowTrace { .. }
        | Statement::ShowSlow
        | Statement::DumpTrace
        | Statement::ReplicaStatus
        | Statement::Help => CheckStmt::Other {
            keyword,
            opens_world: false,
        },
    })
}

/// Parses and lowers a whole script (for pre-flight and the lint CLI).
/// Parse failures surface as `(line_no, error)` so callers can turn them
/// into `FDB000` diagnostics without losing position.
pub fn lower_script(text: &str) -> (Vec<CheckStmt>, Vec<(u32, fdb_types::FdbError)>) {
    let mut stmts = Vec::new();
    let mut errors = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line_no = (i + 1) as u32;
        match crate::parser::parse_statement_spanned(line, line_no) {
            Ok(sp) => {
                if let Some(cs) = lower(&sp) {
                    stmts.push(cs);
                }
            }
            Err(e) => errors.push((line_no, e)),
        }
    }
    (stmts, errors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement_spanned;

    fn lower_line(line: &str) -> CheckStmt {
        lower(&parse_statement_spanned(line, 1).expect("parses")).expect("not empty")
    }

    #[test]
    fn declare_carries_name_and_functionality_spans() {
        let s = lower_line("DECLARE teach: faculty -> course (many-many)");
        match s {
            CheckStmt::Declare {
                name,
                domain,
                range,
                functionality,
                ..
            } => {
                assert_eq!(name.text, "teach");
                assert_eq!(name.span.col(), 9);
                assert_eq!(domain, "faculty");
                assert_eq!(range, "course");
                assert_eq!(functionality.text, "many-many");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn derive_steps_keep_inverse_flags_and_spans() {
        let s = lower_line("DERIVE lecturer_of = class_list^-1 o teach^-1");
        match s {
            CheckStmt::Derive { steps, .. } => {
                assert_eq!(steps.len(), 2);
                assert!(steps.iter().all(|s| s.inverse));
                assert_eq!(steps[0].name.text, "class_list");
                assert!(steps[0].name.span.start < steps[1].name.span.start);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn world_opening_statements_are_marked() {
        for line in ["SOURCE \"x.fdb\"", "LOAD \"db.json\""] {
            match lower_line(line) {
                CheckStmt::Other { opens_world, .. } => assert!(opens_world, "{line}"),
                other => panic!("unexpected {other:?}"),
            }
        }
        match lower_line("SCHEMA") {
            CheckStmt::Other { opens_world, .. } => assert!(!opens_world),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn transaction_control_lowers_to_typed_statements() {
        for (line, want) in [
            ("BEGIN", TxnOp::Begin),
            ("COMMIT", TxnOp::Commit),
            ("ABORT", TxnOp::Rollback),
            ("ROLLBACK", TxnOp::Rollback),
        ] {
            match lower_line(line) {
                CheckStmt::Txn { op, name, .. } => {
                    assert_eq!(op, want, "{line}");
                    assert!(name.is_none(), "{line}");
                }
                other => panic!("unexpected {other:?} for {line}"),
            }
        }
        match lower_line("SAVEPOINT before_loads") {
            CheckStmt::Txn { op, name, .. } => {
                assert_eq!(op, TxnOp::Savepoint);
                assert_eq!(name.expect("named").text, "before_loads");
            }
            other => panic!("unexpected {other:?}"),
        }
        match lower_line("ROLLBACK TO before_loads") {
            CheckStmt::Txn { op, name, .. } => {
                assert_eq!(op, TxnOp::RollbackTo);
                assert_eq!(name.expect("named").text, "before_loads");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn reads_cover_show_and_explain_variants() {
        for line in [
            "SHOW teach",
            "DERIVATIONS teach",
            "EXPLAIN teach(a, b)",
            "EXPLAIN PLAN teach(a, b)",
            "EXPLAIN ANALYZE teach(a, b)",
        ] {
            match lower_line(line) {
                CheckStmt::Read { function, .. } => assert_eq!(function.text, "teach", "{line}"),
                other => panic!("unexpected {other:?} for {line}"),
            }
        }
    }

    #[test]
    fn lower_script_collects_statements_and_errors() {
        let (stmts, errors) = lower_script(
            "DECLARE teach: faculty -> course (many-many)\n\
             -- comment only\n\
             NOT A STATEMENT\n\
             INSERT teach(euclid, math)\n",
        );
        assert_eq!(stmts.len(), 2);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].0, 3);
    }
}
