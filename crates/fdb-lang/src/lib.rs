//! A DAPLEX-flavoured textual front end for the fdb functional database.
//!
//! The systems the paper builds on (DAPLEX `[1]`, EFDM `[3]`) were driven
//! by textual functional-data-model languages; this crate provides the
//! equivalent for fdb so a user can exercise the whole engine from a REPL
//! or a script. One statement per line:
//!
//! ```text
//! DECLARE teach: faculty -> course (many-many)
//! DECLARE class_list: course -> student (many-many)
//! DECLARE pupil: faculty -> student (many-many)
//! DERIVE pupil = teach o class_list
//! INSERT teach(euclid, math)
//! INSERT class_list(math, john)
//! DELETE pupil(euclid, john)
//! TRUTH pupil(euclid, john)      -- prints F
//! QUERY pupil(laplace)
//! SHOW class_list                -- prints the <a, b, T/A, NCL> table
//! DERIVATIONS pupil
//! STATS
//! RESOLVE
//! CHECK
//! SCHEMA
//! ```
//!
//! Keywords are case-insensitive; `--` starts a comment; values are bare
//! identifiers or double-quoted strings. Inverse steps in `DERIVE` use
//! `^-1`, exactly the paper's notation rendered in ASCII
//! (`DERIVE lecturer_of = class_list^-1 o teach^-1`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod ast;
pub mod check;
pub mod engine;
pub mod format;
pub mod lexer;
pub mod parser;
pub mod repl;

pub use ast::{DeriveStep, Statement};
pub use check::{lower, lower_script};
pub use engine::Engine;
pub use parser::{parse_statement, parse_statement_spanned, SpannedStatement, StmtSpans};
pub use repl::run_repl;

pub use fdb_core::{CancelToken, Governor, Outcome, StopReason};
