//! Recursive-descent parser: one statement per line.

use fdb_types::{FdbError, Result};

use crate::ast::{DeriveStep, Statement};
use crate::lexer::{lex, Token};

/// Parses one line into a [`Statement`].
pub fn parse_statement(line: &str, line_no: u32) -> Result<Statement> {
    let tokens = lex(line, line_no)?;
    Parser {
        tokens,
        pos: 0,
        line: line_no,
    }
    .statement()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    line: u32,
}

impl Parser {
    fn err(&self, message: impl Into<String>) -> FdbError {
        FdbError::Parse {
            line: self.line,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: &Token, what: &str) -> Result<()> {
        match self.next() {
            Some(ref got) if got == t => Ok(()),
            Some(got) => Err(self.err(format!("expected {what}, found {got:?}"))),
            None => Err(self.err(format!("expected {what}, found end of line"))),
        }
    }

    /// An identifier or string literal used as a value or name.
    fn ident(&mut self, what: &str) -> Result<String> {
        match self.next() {
            Some(Token::Ident(s)) | Some(Token::Str(s)) => Ok(s),
            Some(got) => Err(self.err(format!("expected {what}, found {got:?}"))),
            None => Err(self.err(format!("expected {what}, found end of line"))),
        }
    }

    /// A type name: an identifier or a bracketed compound `[a; b]`.
    fn type_name(&mut self) -> Result<String> {
        match self.peek() {
            Some(Token::LBracket) => {
                self.next();
                let mut parts = vec![self.type_name()?];
                while self.peek() == Some(&Token::Semi) {
                    self.next();
                    parts.push(self.type_name()?);
                }
                self.expect(&Token::RBracket, "`]`")?;
                Ok(format!("[{}]", parts.join("; ")))
            }
            _ => self.ident("type name"),
        }
    }

    fn pair(&mut self) -> Result<(String, String)> {
        self.expect(&Token::LParen, "`(`")?;
        let x = self.ident("value")?;
        self.expect(&Token::Comma, "`,`")?;
        let y = self.ident("value")?;
        self.expect(&Token::RParen, "`)`")?;
        Ok((x, y))
    }

    fn end(&mut self) -> Result<()> {
        if let Some(t) = self.peek() {
            return Err(self.err(format!("unexpected trailing input: {t:?}")));
        }
        Ok(())
    }

    fn statement(&mut self) -> Result<Statement> {
        let Some(first) = self.next() else {
            return Ok(Statement::Empty);
        };
        let keyword = match first {
            Token::Ident(s) => s.to_ascii_uppercase(),
            other => return Err(self.err(format!("expected a keyword, found {other:?}"))),
        };
        let stmt = match keyword.as_str() {
            "DECLARE" => {
                let name = self.ident("function name")?;
                self.expect(&Token::Colon, "`:`")?;
                let domain = self.type_name()?;
                self.expect(&Token::Arrow, "`->`")?;
                let range = self.type_name()?;
                self.expect(&Token::LParen, "`(`")?;
                let functionality = self.ident("functionality")?;
                self.expect(&Token::RParen, "`)`")?;
                Statement::Declare {
                    name,
                    domain,
                    range,
                    functionality,
                }
            }
            "DERIVE" => {
                let name = self.ident("function name")?;
                self.expect(&Token::Equals, "`=`")?;
                let mut steps = vec![self.derive_step()?];
                loop {
                    match self.peek() {
                        Some(Token::Ident(o)) if o.eq_ignore_ascii_case("o") => {
                            self.next();
                            steps.push(self.derive_step()?);
                        }
                        _ => break,
                    }
                }
                Statement::Derive { name, steps }
            }
            "INSERT" | "INS" => {
                let function = self.ident("function name")?;
                let (x, y) = self.pair()?;
                Statement::Insert { function, x, y }
            }
            "DELETE" | "DEL" => {
                let function = self.ident("function name")?;
                let (x, y) = self.pair()?;
                Statement::Delete { function, x, y }
            }
            "REPLACE" | "REP" => {
                let function = self.ident("function name")?;
                let old = self.pair()?;
                let with = self.ident("`WITH`")?;
                if !with.eq_ignore_ascii_case("WITH") {
                    return Err(self.err("expected `WITH`"));
                }
                let new = self.pair()?;
                Statement::Replace { function, old, new }
            }
            "QUERY" => {
                let function = self.ident("function name")?;
                self.expect(&Token::LParen, "`(`")?;
                let x = self.ident("value")?;
                self.expect(&Token::RParen, "`)`")?;
                Statement::Query { function, x }
            }
            "TRUTH" => {
                let function = self.ident("function name")?;
                let (x, y) = self.pair()?;
                Statement::Truth { function, x, y }
            }
            "SHOW" => Statement::Show {
                function: self.ident("function name")?,
            },
            "DERIVATIONS" => Statement::Derivations {
                function: self.ident("function name")?,
            },
            "EVAL" => {
                let x = self.ident("value")?;
                self.expect(&Token::Colon, "`:`")?;
                let mut steps = vec![self.derive_step()?];
                loop {
                    match self.peek() {
                        Some(Token::Ident(o)) if o.eq_ignore_ascii_case("o") => {
                            self.next();
                            steps.push(self.derive_step()?);
                        }
                        _ => break,
                    }
                }
                Statement::Eval { x, steps }
            }
            "INVERSE" => {
                let function = self.ident("function name")?;
                self.expect(&Token::LParen, "`(`")?;
                let y = self.ident("value")?;
                self.expect(&Token::RParen, "`)`")?;
                Statement::Inverse { function, y }
            }
            "DUMP" => Statement::Dump {
                path: self.ident("file path")?,
            },
            "EXPLAIN" => {
                // `EXPLAIN PLAN f(x, y)` / `EXPLAIN ANALYZE f(x, y)` vs
                // plain `EXPLAIN f(x, y)`: PLAN/ANALYZE is only a keyword
                // when a function name follows it, so a function actually
                // called "plan" or "analyze" still works.
                let modifier =
                    |s: &str| s.eq_ignore_ascii_case("plan") || s.eq_ignore_ascii_case("analyze");
                let is_modified = matches!(self.peek(), Some(Token::Ident(s)) if modifier(s))
                    && matches!(
                        self.tokens.get(self.pos + 1),
                        Some(Token::Ident(_)) | Some(Token::Str(_))
                    );
                if is_modified {
                    let word = self.ident("PLAN or ANALYZE")?;
                    let function = self.ident("function name")?;
                    let (x, y) = self.pair()?;
                    if word.eq_ignore_ascii_case("plan") {
                        Statement::ExplainPlan { function, x, y }
                    } else {
                        Statement::ExplainAnalyze { function, x, y }
                    }
                } else {
                    let function = self.ident("function name")?;
                    let (x, y) = self.pair()?;
                    Statement::Explain { function, x, y }
                }
            }
            "SOURCE" => Statement::Source {
                path: self.ident("file path")?,
            },
            "BEGIN" => Statement::Begin,
            "COMMIT" => Statement::Commit,
            "ABORT" | "ROLLBACK" => Statement::Abort,
            "SAVE" => Statement::Save {
                path: self.ident("file path")?,
            },
            "LOAD" => Statement::Load {
                path: self.ident("file path")?,
            },
            "TIMEOUT" => {
                let arg = self.ident("milliseconds or OFF")?;
                if arg.eq_ignore_ascii_case("OFF") || arg.eq_ignore_ascii_case("NONE") {
                    Statement::Timeout { millis: None }
                } else {
                    let millis = arg.parse::<u64>().map_err(|_| {
                        self.err(format!("expected milliseconds or OFF, found `{arg}`"))
                    })?;
                    Statement::Timeout {
                        millis: Some(millis),
                    }
                }
            }
            "SCHEMA" => Statement::Schema,
            "STATS" => match self.peek() {
                Some(Token::Ident(s)) if s.eq_ignore_ascii_case("reset") => {
                    self.next();
                    Statement::StatsReset
                }
                Some(Token::Ident(s)) if s.eq_ignore_ascii_case("json") => {
                    self.next();
                    Statement::StatsJson
                }
                _ => Statement::Stats,
            },
            "RESOLVE" => Statement::Resolve,
            "CHECK" => Statement::Check,
            "HELP" => Statement::Help,
            other => return Err(self.err(format!("unknown statement `{other}`"))),
        };
        self.end()?;
        Ok(stmt)
    }

    fn derive_step(&mut self) -> Result<DeriveStep> {
        let name = self.ident("function name")?;
        let inverse = if self.peek() == Some(&Token::Inverse) {
            self.next();
            true
        } else {
            false
        };
        Ok(DeriveStep { name, inverse })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_declare_with_compound_domain() {
        let s = parse_statement(
            "DECLARE grade: [student; course] -> letter_grade (many-one)",
            1,
        )
        .unwrap();
        assert_eq!(
            s,
            Statement::Declare {
                name: "grade".into(),
                domain: "[student; course]".into(),
                range: "letter_grade".into(),
                functionality: "many-one".into(),
            }
        );
    }

    #[test]
    fn parses_derive_with_inverses() {
        let s = parse_statement("DERIVE lecturer_of = class_list^-1 o teach^-1", 1).unwrap();
        match s {
            Statement::Derive { name, steps } => {
                assert_eq!(name, "lecturer_of");
                assert_eq!(steps.len(), 2);
                assert!(steps.iter().all(|s| s.inverse));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_updates_and_queries() {
        assert_eq!(
            parse_statement("INSERT teach(euclid, math)", 1).unwrap(),
            Statement::Insert {
                function: "teach".into(),
                x: "euclid".into(),
                y: "math".into(),
            }
        );
        assert_eq!(
            parse_statement("del pupil(euclid, john)", 1).unwrap(),
            Statement::Delete {
                function: "pupil".into(),
                x: "euclid".into(),
                y: "john".into(),
            }
        );
        assert_eq!(
            parse_statement("REPLACE teach(a, b) WITH (a, c)", 1).unwrap(),
            Statement::Replace {
                function: "teach".into(),
                old: ("a".into(), "b".into()),
                new: ("a".into(), "c".into()),
            }
        );
        assert_eq!(
            parse_statement("QUERY pupil(euclid)", 1).unwrap(),
            Statement::Query {
                function: "pupil".into(),
                x: "euclid".into(),
            }
        );
        assert_eq!(
            parse_statement("TRUTH pupil(euclid, john)", 1).unwrap(),
            Statement::Truth {
                function: "pupil".into(),
                x: "euclid".into(),
                y: "john".into(),
            }
        );
    }

    #[test]
    fn parses_nullary_statements() {
        assert_eq!(parse_statement("SCHEMA", 1).unwrap(), Statement::Schema);
        assert_eq!(parse_statement("stats", 1).unwrap(), Statement::Stats);
        assert_eq!(parse_statement("Resolve", 1).unwrap(), Statement::Resolve);
        assert_eq!(parse_statement("CHECK", 1).unwrap(), Statement::Check);
        assert_eq!(parse_statement("", 1).unwrap(), Statement::Empty);
        assert_eq!(
            parse_statement("  -- nothing", 1).unwrap(),
            Statement::Empty
        );
    }

    #[test]
    fn parses_explain_analyze_and_stats_variants() {
        assert_eq!(
            parse_statement("EXPLAIN ANALYZE pupil(euclid, john)", 1).unwrap(),
            Statement::ExplainAnalyze {
                function: "pupil".into(),
                x: "euclid".into(),
                y: "john".into(),
            }
        );
        assert_eq!(
            parse_statement("STATS RESET", 1).unwrap(),
            Statement::StatsReset
        );
        assert_eq!(
            parse_statement("stats json", 1).unwrap(),
            Statement::StatsJson
        );
        // A function literally named "analyze" still explains plainly:
        // ANALYZE is only a modifier when a function name follows it.
        assert_eq!(
            parse_statement("EXPLAIN analyze(a, b)", 1).unwrap(),
            Statement::Explain {
                function: "analyze".into(),
                x: "a".into(),
                y: "b".into(),
            }
        );
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        assert!(parse_statement("SCHEMA extra", 1).is_err());
        assert!(parse_statement("INSERT teach(a, b) c", 1).is_err());
    }

    #[test]
    fn missing_with_is_an_error() {
        assert!(parse_statement("REPLACE f(a, b) (c, d)", 1).is_err());
    }

    #[test]
    fn unknown_keyword_is_an_error() {
        let err = parse_statement("FROBNICATE x", 7).unwrap_err();
        assert!(matches!(err, FdbError::Parse { line: 7, .. }));
    }

    #[test]
    fn quoted_values() {
        let s = parse_statement(r#"INSERT teach("Dr. Euclid", math)"#, 1).unwrap();
        assert_eq!(
            s,
            Statement::Insert {
                function: "teach".into(),
                x: "Dr. Euclid".into(),
                y: "math".into(),
            }
        );
    }
}
