//! Recursive-descent parser: one statement per line.
//!
//! [`parse_statement_spanned`] additionally reports where the interesting
//! pieces of each statement sit in the line ([`StmtSpans`]), which is what
//! `fdb-check` diagnostics anchor to. Parse errors carry a `col N:` prefix
//! pointing at the offending token.

use fdb_types::{FdbError, Result, Span};

use crate::ast::{DeriveStep, Statement};
use crate::lexer::{lex, Tok, Token};

/// Byte spans for the salient parts of a parsed statement.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StmtSpans {
    /// The leading keyword (`DECLARE`, `INSERT`, …). Zero-width at column 1
    /// for [`Statement::Empty`].
    pub keyword: Span,
    /// The primary function name, when the statement has one.
    pub name: Option<Span>,
    /// Value / type arguments in source order (`x`, `y`, domain, range, …).
    pub args: Vec<Span>,
    /// One span per derivation step (`f`, `g^-1`) for `DERIVE` / `EVAL`.
    pub steps: Vec<Span>,
}

/// A parsed statement together with its source spans.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpannedStatement {
    /// The statement.
    pub stmt: Statement,
    /// Where its parts sit in the source line.
    pub spans: StmtSpans,
}

/// Parses one line into a [`Statement`], discarding span information.
pub fn parse_statement(line: &str, line_no: u32) -> Result<Statement> {
    parse_statement_spanned(line, line_no).map(|s| s.stmt)
}

/// Parses one line into a [`SpannedStatement`].
pub fn parse_statement_spanned(line: &str, line_no: u32) -> Result<SpannedStatement> {
    let tokens = lex(line, line_no)?;
    Parser {
        tokens,
        pos: 0,
        line: line_no,
        spans: StmtSpans {
            keyword: Span::line_start(line_no),
            ..StmtSpans::default()
        },
    }
    .statement()
}

struct Parser {
    tokens: Vec<Tok>,
    pos: usize,
    line: u32,
    spans: StmtSpans,
}

impl Parser {
    /// Column of the token at the cursor (or just past the last token when
    /// the line ended early), for error messages.
    fn col_here(&self) -> u32 {
        match self.tokens.get(self.pos) {
            Some(t) => t.span.col(),
            None => self.tokens.last().map_or(1, |t| t.span.end_col()),
        }
    }

    fn err(&self, message: impl Into<String>) -> FdbError {
        FdbError::Parse {
            line: self.line,
            message: format!("col {}: {}", self.col_here(), message.into()),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: &Token, what: &str) -> Result<Span> {
        match self.tokens.get(self.pos) {
            Some(got) if &got.token == t => {
                let span = got.span;
                self.pos += 1;
                Ok(span)
            }
            Some(got) => Err(self.err(format!("expected {what}, found {:?}", got.token))),
            None => Err(self.err(format!("expected {what}, found end of line"))),
        }
    }

    /// An identifier or string literal used as a value or name.
    fn ident(&mut self, what: &str) -> Result<(String, Span)> {
        match self.tokens.get(self.pos) {
            Some(Tok {
                token: Token::Ident(s) | Token::Str(s),
                span,
            }) => {
                let out = (s.clone(), *span);
                self.pos += 1;
                Ok(out)
            }
            Some(got) => Err(self.err(format!("expected {what}, found {:?}", got.token))),
            None => Err(self.err(format!("expected {what}, found end of line"))),
        }
    }

    /// A type name: an identifier or a bracketed compound `[a; b]`.
    fn type_name(&mut self) -> Result<(String, Span)> {
        match self.peek() {
            Some(Token::LBracket) => {
                let open = self.expect(&Token::LBracket, "`[`")?;
                let mut parts = vec![self.type_name()?.0];
                while self.peek() == Some(&Token::Semi) {
                    self.next();
                    parts.push(self.type_name()?.0);
                }
                let close = self.expect(&Token::RBracket, "`]`")?;
                Ok((format!("[{}]", parts.join("; ")), open.merge(close)))
            }
            _ => self.ident("type name"),
        }
    }

    fn pair(&mut self) -> Result<((String, Span), (String, Span))> {
        self.expect(&Token::LParen, "`(`")?;
        let x = self.ident("value")?;
        self.expect(&Token::Comma, "`,`")?;
        let y = self.ident("value")?;
        self.expect(&Token::RParen, "`)`")?;
        Ok((x, y))
    }

    fn end(&mut self) -> Result<()> {
        if let Some(t) = self.peek() {
            return Err(self.err(format!("unexpected trailing input: {t:?}")));
        }
        Ok(())
    }

    fn name(&mut self, what: &str) -> Result<String> {
        let (s, span) = self.ident(what)?;
        self.spans.name = Some(span);
        Ok(s)
    }

    fn arg(&mut self, what: &str) -> Result<String> {
        let (s, span) = self.ident(what)?;
        self.spans.args.push(span);
        Ok(s)
    }

    fn arg_pair(&mut self) -> Result<(String, String)> {
        let ((x, xs), (y, ys)) = self.pair()?;
        self.spans.args.push(xs);
        self.spans.args.push(ys);
        Ok((x, y))
    }

    fn statement(mut self) -> Result<SpannedStatement> {
        let Some(first) = self.next() else {
            return Ok(SpannedStatement {
                stmt: Statement::Empty,
                spans: self.spans,
            });
        };
        self.spans.keyword = first.span;
        let keyword = match first.token {
            Token::Ident(s) => s.to_ascii_uppercase(),
            other => return Err(self.err(format!("expected a keyword, found {other:?}"))),
        };
        let stmt = match keyword.as_str() {
            "DECLARE" => {
                let name = self.name("function name")?;
                self.expect(&Token::Colon, "`:`")?;
                let (domain, dspan) = self.type_name()?;
                self.spans.args.push(dspan);
                self.expect(&Token::Arrow, "`->`")?;
                let (range, rspan) = self.type_name()?;
                self.spans.args.push(rspan);
                self.expect(&Token::LParen, "`(`")?;
                let functionality = self.arg("functionality")?;
                self.expect(&Token::RParen, "`)`")?;
                Statement::Declare {
                    name,
                    domain,
                    range,
                    functionality,
                }
            }
            "DERIVE" => {
                let name = self.name("function name")?;
                self.expect(&Token::Equals, "`=`")?;
                let steps = self.derive_steps()?;
                Statement::Derive { name, steps }
            }
            "INSERT" | "INS" => {
                let function = self.name("function name")?;
                let (x, y) = self.arg_pair()?;
                Statement::Insert { function, x, y }
            }
            "DELETE" | "DEL" => {
                let function = self.name("function name")?;
                let (x, y) = self.arg_pair()?;
                Statement::Delete { function, x, y }
            }
            "REPLACE" | "REP" => {
                let function = self.name("function name")?;
                let old = self.arg_pair()?;
                let (with, _) = self.ident("`WITH`")?;
                if !with.eq_ignore_ascii_case("WITH") {
                    return Err(self.err("expected `WITH`"));
                }
                let new = self.arg_pair()?;
                Statement::Replace { function, old, new }
            }
            "QUERY" => {
                let function = self.name("function name")?;
                self.expect(&Token::LParen, "`(`")?;
                let x = self.arg("value")?;
                self.expect(&Token::RParen, "`)`")?;
                Statement::Query { function, x }
            }
            "TRUTH" => {
                let function = self.name("function name")?;
                let (x, y) = self.arg_pair()?;
                Statement::Truth { function, x, y }
            }
            "SHOW" => {
                // `SHOW TRACE [JSON]` / `SHOW SLOW` vs `SHOW <fn>`:
                // like EXPLAIN's PLAN/ANALYZE, TRACE and SLOW are only
                // keywords in exactly those shapes (and `SHOW TRACE`
                // wins over a function literally named `trace`).
                let modifier = |s: &str, m: &str| s.eq_ignore_ascii_case(m);
                match self.peek() {
                    Some(Token::Ident(s)) if modifier(s, "trace") => {
                        self.next();
                        let json = matches!(
                            self.peek(),
                            Some(Token::Ident(s)) if modifier(s, "json")
                        );
                        if json {
                            self.next();
                        }
                        Statement::ShowTrace { json }
                    }
                    Some(Token::Ident(s)) if modifier(s, "slow") => {
                        self.next();
                        Statement::ShowSlow
                    }
                    _ => Statement::Show {
                        function: self.name("function name")?,
                    },
                }
            }
            "DERIVATIONS" => Statement::Derivations {
                function: self.name("function name")?,
            },
            "EVAL" => {
                let x = self.arg("value")?;
                self.expect(&Token::Colon, "`:`")?;
                let steps = self.derive_steps()?;
                Statement::Eval { x, steps }
            }
            "INVERSE" => {
                let function = self.name("function name")?;
                self.expect(&Token::LParen, "`(`")?;
                let y = self.arg("value")?;
                self.expect(&Token::RParen, "`)`")?;
                Statement::Inverse { function, y }
            }
            "DUMP" => match self.peek() {
                // `DUMP TRACE` — flight-recorder dump. Only the bare
                // ident counts; `DUMP "trace"` still writes a script to
                // the file named trace.
                Some(Token::Ident(s))
                    if s.eq_ignore_ascii_case("trace")
                        && self.tokens.get(self.pos + 1).is_none() =>
                {
                    self.next();
                    Statement::DumpTrace
                }
                _ => Statement::Dump {
                    path: self.arg("file path")?,
                },
            },
            "EXPLAIN" => {
                // `EXPLAIN PLAN f(x, y)` / `EXPLAIN ANALYZE f(x, y)` vs
                // plain `EXPLAIN f(x, y)`: PLAN/ANALYZE is only a keyword
                // when a function name follows it, so a function actually
                // called "plan" or "analyze" still works.
                let modifier =
                    |s: &str| s.eq_ignore_ascii_case("plan") || s.eq_ignore_ascii_case("analyze");
                let is_modified = matches!(self.peek(), Some(Token::Ident(s)) if modifier(s))
                    && matches!(
                        self.tokens.get(self.pos + 1).map(|t| &t.token),
                        Some(Token::Ident(_)) | Some(Token::Str(_))
                    );
                if is_modified {
                    let (word, _) = self.ident("PLAN or ANALYZE")?;
                    let function = self.name("function name")?;
                    let (x, y) = self.arg_pair()?;
                    if word.eq_ignore_ascii_case("plan") {
                        Statement::ExplainPlan { function, x, y }
                    } else {
                        Statement::ExplainAnalyze { function, x, y }
                    }
                } else {
                    let function = self.name("function name")?;
                    let (x, y) = self.arg_pair()?;
                    Statement::Explain { function, x, y }
                }
            }
            "SOURCE" => Statement::Source {
                path: self.arg("file path")?,
            },
            "BEGIN" => Statement::Begin,
            "COMMIT" => Statement::Commit,
            "ABORT" => Statement::Abort,
            "ROLLBACK" => match self.peek() {
                // `ROLLBACK TO name` — partial rollback to a savepoint.
                Some(Token::Ident(s)) if s.eq_ignore_ascii_case("to") => {
                    self.next();
                    Statement::RollbackTo {
                        name: self.name("savepoint name")?,
                    }
                }
                _ => Statement::Abort,
            },
            "SAVEPOINT" => Statement::Savepoint {
                name: self.name("savepoint name")?,
            },
            "SAVE" => Statement::Save {
                path: self.arg("file path")?,
            },
            "LOAD" => Statement::Load {
                path: self.arg("file path")?,
            },
            "TIMEOUT" => {
                let (arg, _) = self.ident("milliseconds or OFF")?;
                if arg.eq_ignore_ascii_case("OFF") || arg.eq_ignore_ascii_case("NONE") {
                    Statement::Timeout { millis: None }
                } else {
                    let millis = arg.parse::<u64>().map_err(|_| {
                        self.err(format!("expected milliseconds or OFF, found `{arg}`"))
                    })?;
                    Statement::Timeout {
                        millis: Some(millis),
                    }
                }
            }
            "SCHEMA" => Statement::Schema,
            "STATS" => match self.peek() {
                Some(Token::Ident(s)) if s.eq_ignore_ascii_case("reset") => {
                    self.next();
                    Statement::StatsReset
                }
                Some(Token::Ident(s)) if s.eq_ignore_ascii_case("json") => {
                    self.next();
                    Statement::StatsJson
                }
                _ => Statement::Stats,
            },
            "TRACE" => {
                let (arg, _) = self.ident("ON, OFF, or SLOW")?;
                if arg.eq_ignore_ascii_case("ON") {
                    let sample = match self.peek() {
                        Some(Token::Ident(s)) if s.eq_ignore_ascii_case("sample") => {
                            self.next();
                            let (n, _) = self.ident("sample rate")?;
                            let n = n.parse::<u64>().map_err(|_| {
                                self.err(format!("expected a sample rate, found `{n}`"))
                            })?;
                            if n == 0 {
                                return Err(self.err("sample rate must be at least 1"));
                            }
                            Some(n)
                        }
                        _ => None,
                    };
                    Statement::Trace { on: true, sample }
                } else if arg.eq_ignore_ascii_case("OFF") {
                    Statement::Trace {
                        on: false,
                        sample: None,
                    }
                } else if arg.eq_ignore_ascii_case("SLOW") {
                    let (t, _) = self.ident("milliseconds or OFF")?;
                    if t.eq_ignore_ascii_case("OFF") || t.eq_ignore_ascii_case("NONE") {
                        Statement::TraceSlow { millis: None }
                    } else {
                        let millis = t.parse::<u64>().map_err(|_| {
                            self.err(format!("expected milliseconds or OFF, found `{t}`"))
                        })?;
                        Statement::TraceSlow {
                            millis: Some(millis),
                        }
                    }
                } else {
                    return Err(self.err(format!("expected ON, OFF, or SLOW, found `{arg}`")));
                }
            }
            "RESOLVE" => Statement::Resolve,
            "CHECK" => match self.peek() {
                Some(Token::Ident(s)) if s.eq_ignore_ascii_case("json") => {
                    self.next();
                    Statement::Check { json: true }
                }
                Some(Token::Ident(s)) if s.eq_ignore_ascii_case("data") => {
                    self.next();
                    Statement::CheckData
                }
                _ => Statement::Check { json: false },
            },
            "DISCOVER" => match self.peek() {
                Some(Token::Ident(s)) if s.eq_ignore_ascii_case("json") => {
                    self.next();
                    Statement::Discover { json: true }
                }
                _ => Statement::Discover { json: false },
            },
            "STRICT" => {
                let (arg, _) = self.ident("ON or OFF")?;
                if arg.eq_ignore_ascii_case("ON") {
                    Statement::Strict { on: true }
                } else if arg.eq_ignore_ascii_case("OFF") {
                    Statement::Strict { on: false }
                } else {
                    return Err(self.err(format!("expected ON or OFF, found `{arg}`")));
                }
            }
            "HELP" => Statement::Help,
            "REPLICA" => {
                let (word, _) = self.ident("STATUS")?;
                if !word.eq_ignore_ascii_case("STATUS") {
                    return Err(self.err(format!("expected STATUS, found `{word}`")));
                }
                Statement::ReplicaStatus
            }
            "PROMOTE" => Statement::Promote,
            other => return Err(self.err(format!("unknown statement `{other}`"))),
        };
        self.end()?;
        Ok(SpannedStatement {
            stmt,
            spans: self.spans,
        })
    }

    fn derive_steps(&mut self) -> Result<Vec<DeriveStep>> {
        let mut steps = vec![self.derive_step()?];
        loop {
            match self.peek() {
                Some(Token::Ident(o)) if o.eq_ignore_ascii_case("o") => {
                    self.next();
                    steps.push(self.derive_step()?);
                }
                _ => break,
            }
        }
        Ok(steps)
    }

    fn derive_step(&mut self) -> Result<DeriveStep> {
        let (name, mut span) = self.ident("function name")?;
        let inverse = if self.peek() == Some(&Token::Inverse) {
            if let Some(t) = self.next() {
                span = span.merge(t.span);
            }
            true
        } else {
            false
        };
        self.spans.steps.push(span);
        Ok(DeriveStep { name, inverse })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_declare_with_compound_domain() {
        let s = parse_statement(
            "DECLARE grade: [student; course] -> letter_grade (many-one)",
            1,
        )
        .unwrap();
        assert_eq!(
            s,
            Statement::Declare {
                name: "grade".into(),
                domain: "[student; course]".into(),
                range: "letter_grade".into(),
                functionality: "many-one".into(),
            }
        );
    }

    #[test]
    fn parses_derive_with_inverses() {
        let s = parse_statement("DERIVE lecturer_of = class_list^-1 o teach^-1", 1).unwrap();
        match s {
            Statement::Derive { name, steps } => {
                assert_eq!(name, "lecturer_of");
                assert_eq!(steps.len(), 2);
                assert!(steps.iter().all(|s| s.inverse));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_updates_and_queries() {
        assert_eq!(
            parse_statement("INSERT teach(euclid, math)", 1).unwrap(),
            Statement::Insert {
                function: "teach".into(),
                x: "euclid".into(),
                y: "math".into(),
            }
        );
        assert_eq!(
            parse_statement("del pupil(euclid, john)", 1).unwrap(),
            Statement::Delete {
                function: "pupil".into(),
                x: "euclid".into(),
                y: "john".into(),
            }
        );
        assert_eq!(
            parse_statement("REPLACE teach(a, b) WITH (a, c)", 1).unwrap(),
            Statement::Replace {
                function: "teach".into(),
                old: ("a".into(), "b".into()),
                new: ("a".into(), "c".into()),
            }
        );
        assert_eq!(
            parse_statement("QUERY pupil(euclid)", 1).unwrap(),
            Statement::Query {
                function: "pupil".into(),
                x: "euclid".into(),
            }
        );
        assert_eq!(
            parse_statement("TRUTH pupil(euclid, john)", 1).unwrap(),
            Statement::Truth {
                function: "pupil".into(),
                x: "euclid".into(),
                y: "john".into(),
            }
        );
    }

    #[test]
    fn parses_nullary_statements() {
        assert_eq!(parse_statement("SCHEMA", 1).unwrap(), Statement::Schema);
        assert_eq!(parse_statement("stats", 1).unwrap(), Statement::Stats);
        assert_eq!(parse_statement("Resolve", 1).unwrap(), Statement::Resolve);
        assert_eq!(
            parse_statement("CHECK", 1).unwrap(),
            Statement::Check { json: false }
        );
        assert_eq!(
            parse_statement("CHECK JSON", 1).unwrap(),
            Statement::Check { json: true }
        );
        assert_eq!(
            parse_statement("CHECK DATA", 1).unwrap(),
            Statement::CheckData
        );
        assert_eq!(
            parse_statement("discover", 1).unwrap(),
            Statement::Discover { json: false }
        );
        assert_eq!(
            parse_statement("DISCOVER JSON", 1).unwrap(),
            Statement::Discover { json: true }
        );
        assert_eq!(parse_statement("", 1).unwrap(), Statement::Empty);
        assert_eq!(
            parse_statement("  -- nothing", 1).unwrap(),
            Statement::Empty
        );
    }

    #[test]
    fn parses_strict_toggle() {
        assert_eq!(
            parse_statement("STRICT ON", 1).unwrap(),
            Statement::Strict { on: true }
        );
        assert_eq!(
            parse_statement("strict off", 1).unwrap(),
            Statement::Strict { on: false }
        );
        assert!(parse_statement("STRICT maybe", 1).is_err());
        assert!(parse_statement("STRICT", 1).is_err());
    }

    #[test]
    fn parses_explain_analyze_and_stats_variants() {
        assert_eq!(
            parse_statement("EXPLAIN ANALYZE pupil(euclid, john)", 1).unwrap(),
            Statement::ExplainAnalyze {
                function: "pupil".into(),
                x: "euclid".into(),
                y: "john".into(),
            }
        );
        assert_eq!(
            parse_statement("STATS RESET", 1).unwrap(),
            Statement::StatsReset
        );
        assert_eq!(
            parse_statement("stats json", 1).unwrap(),
            Statement::StatsJson
        );
        // A function literally named "analyze" still explains plainly:
        // ANALYZE is only a modifier when a function name follows it.
        assert_eq!(
            parse_statement("EXPLAIN analyze(a, b)", 1).unwrap(),
            Statement::Explain {
                function: "analyze".into(),
                x: "a".into(),
                y: "b".into(),
            }
        );
    }

    #[test]
    fn parses_transaction_control() {
        assert_eq!(parse_statement("BEGIN", 1).unwrap(), Statement::Begin);
        assert_eq!(parse_statement("COMMIT", 1).unwrap(), Statement::Commit);
        assert_eq!(parse_statement("ABORT", 1).unwrap(), Statement::Abort);
        assert_eq!(parse_statement("rollback", 1).unwrap(), Statement::Abort);
        assert_eq!(
            parse_statement("SAVEPOINT before_grades", 1).unwrap(),
            Statement::Savepoint {
                name: "before_grades".into()
            }
        );
        assert_eq!(
            parse_statement("ROLLBACK TO before_grades", 1).unwrap(),
            Statement::RollbackTo {
                name: "before_grades".into()
            }
        );
        assert!(parse_statement("SAVEPOINT", 1).is_err());
        assert!(parse_statement("ROLLBACK TO", 1).is_err());
        assert!(parse_statement("ROLLBACK TO a b", 1).is_err());
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        assert!(parse_statement("SCHEMA extra", 1).is_err());
        assert!(parse_statement("INSERT teach(a, b) c", 1).is_err());
    }

    #[test]
    fn missing_with_is_an_error() {
        assert!(parse_statement("REPLACE f(a, b) (c, d)", 1).is_err());
    }

    #[test]
    fn unknown_keyword_is_an_error() {
        let err = parse_statement("FROBNICATE x", 7).unwrap_err();
        assert!(matches!(err, FdbError::Parse { line: 7, .. }));
    }

    #[test]
    fn errors_carry_columns() {
        // `(` expected at the comma's position (col 16).
        let err = parse_statement("REPLACE f(a, b) WITH", 1).unwrap_err();
        assert!(err.to_string().contains("col"), "got: {err}");
        // End-of-line errors point one past the last token.
        let err = parse_statement("INSERT teach", 1).unwrap_err();
        assert!(err.to_string().contains("col 13"), "got: {err}");
    }

    #[test]
    fn spanned_statement_reports_name_and_args() {
        let s = parse_statement_spanned("INSERT teach(euclid, math)", 3).unwrap();
        assert_eq!(s.spans.keyword, Span::new(3, 0, 6));
        assert_eq!(s.spans.name, Some(Span::new(3, 7, 12)));
        assert_eq!(
            s.spans.args,
            vec![Span::new(3, 13, 19), Span::new(3, 21, 25)]
        );
        assert!(s.spans.steps.is_empty());
    }

    #[test]
    fn spanned_derive_reports_step_spans() {
        let s = parse_statement_spanned("DERIVE p = teach o class_list", 2).unwrap();
        assert_eq!(s.spans.name, Some(Span::new(2, 7, 8)));
        assert_eq!(
            s.spans.steps,
            vec![Span::new(2, 11, 16), Span::new(2, 19, 29)]
        );
        // An inverse marker extends the step span.
        let s = parse_statement_spanned("DERIVE q = teach^-1", 2).unwrap();
        assert_eq!(s.spans.steps, vec![Span::new(2, 11, 19)]);
    }

    #[test]
    fn parses_trace_statements() {
        assert_eq!(
            parse_statement("TRACE ON", 1).unwrap(),
            Statement::Trace {
                on: true,
                sample: None
            }
        );
        assert_eq!(
            parse_statement("trace on sample 32", 1).unwrap(),
            Statement::Trace {
                on: true,
                sample: Some(32)
            }
        );
        assert_eq!(
            parse_statement("TRACE OFF", 1).unwrap(),
            Statement::Trace {
                on: false,
                sample: None
            }
        );
        assert!(parse_statement("TRACE ON SAMPLE 0", 1).is_err());
        assert_eq!(
            parse_statement("TRACE SLOW 250", 1).unwrap(),
            Statement::TraceSlow { millis: Some(250) }
        );
        assert_eq!(
            parse_statement("TRACE SLOW OFF", 1).unwrap(),
            Statement::TraceSlow { millis: None }
        );
        assert_eq!(
            parse_statement("SHOW TRACE", 1).unwrap(),
            Statement::ShowTrace { json: false }
        );
        assert_eq!(
            parse_statement("SHOW TRACE JSON", 1).unwrap(),
            Statement::ShowTrace { json: true }
        );
        assert_eq!(
            parse_statement("SHOW SLOW", 1).unwrap(),
            Statement::ShowSlow
        );
        assert_eq!(
            parse_statement("DUMP TRACE", 1).unwrap(),
            Statement::DumpTrace
        );
        // `SHOW trace` names the keyword, not a function called trace —
        // but a quoted name still reaches the file-dump statement.
        assert!(matches!(
            parse_statement("DUMP \"trace\"", 1).unwrap(),
            Statement::Dump { .. }
        ));
    }

    #[test]
    fn quoted_values() {
        let s = parse_statement(r#"INSERT teach("Dr. Euclid", math)"#, 1).unwrap();
        assert_eq!(
            s,
            Statement::Insert {
                function: "teach".into(),
                x: "Dr. Euclid".into(),
                y: "math".into(),
            }
        );
    }
}
