//! Line lexer for the fdb language.

use fdb_types::{FdbError, Result};

/// One lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword (`teach`, `INSERT`, `many-many`, `85`).
    Ident(String),
    /// Double-quoted string literal (quotes stripped, `\"` unescaped).
    Str(String),
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `,`.
    Comma,
    /// `;`.
    Semi,
    /// `:`.
    Colon,
    /// `->`.
    Arrow,
    /// `=`.
    Equals,
    /// `^-1`.
    Inverse,
}

/// Lexes one statement line. Comments (`--` to end of line) are dropped.
pub fn lex(line: &str, line_no: u32) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let mut chars = line.char_indices().peekable();
    while let Some(&(i, c)) = chars.peek() {
        match c {
            '-' if line[i..].starts_with("--") => break, // comment
            c if c.is_whitespace() => {
                chars.next();
            }
            '(' => {
                chars.next();
                out.push(Token::LParen);
            }
            ')' => {
                chars.next();
                out.push(Token::RParen);
            }
            '[' => {
                chars.next();
                out.push(Token::LBracket);
            }
            ']' => {
                chars.next();
                out.push(Token::RBracket);
            }
            ',' => {
                chars.next();
                out.push(Token::Comma);
            }
            ';' => {
                chars.next();
                out.push(Token::Semi);
            }
            ':' => {
                chars.next();
                out.push(Token::Colon);
            }
            '=' => {
                chars.next();
                out.push(Token::Equals);
            }
            '^' => {
                if line[i..].starts_with("^-1") {
                    chars.next();
                    chars.next();
                    chars.next();
                    out.push(Token::Inverse);
                } else {
                    return Err(FdbError::Parse {
                        line: line_no,
                        message: "expected `^-1`".into(),
                    });
                }
            }
            '-' if line[i..].starts_with("->") => {
                chars.next();
                chars.next();
                out.push(Token::Arrow);
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                let mut closed = false;
                while let Some((_, c)) = chars.next() {
                    match c {
                        '"' => {
                            closed = true;
                            break;
                        }
                        '\\' => {
                            if let Some((_, e)) = chars.next() {
                                s.push(e);
                            }
                        }
                        c => s.push(c),
                    }
                }
                if !closed {
                    return Err(FdbError::Parse {
                        line: line_no,
                        message: "unterminated string literal".into(),
                    });
                }
                out.push(Token::Str(s));
            }
            c if c.is_alphanumeric() || c == '_' || c == '#' || c == '.' || c == '-' => {
                // Identifiers may contain `-` (functionality names like
                // many-one) but `-` only continues an ident, it cannot
                // start one unless followed by an alphanumeric (handled by
                // the `->` case above firing first).
                let start = i;
                let mut end = i;
                while let Some(&(j, d)) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' || d == '#' || d == '.' || d == '-' {
                        // Stop identifiers before `->`.
                        if d == '-' && line[j..].starts_with("->") {
                            break;
                        }
                        if d == '-' && line[j..].starts_with("--") {
                            break;
                        }
                        end = j + d.len_utf8();
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token::Ident(line[start..end].to_owned()));
            }
            other => {
                return Err(FdbError::Parse {
                    line: line_no,
                    message: format!("unexpected character {other:?}"),
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::Token::*;
    use super::*;

    #[test]
    fn lexes_declare_statement() {
        let toks = lex(
            "DECLARE grade: [student; course] -> letter_grade (many-one)",
            1,
        )
        .unwrap();
        assert_eq!(
            toks,
            vec![
                Ident("DECLARE".into()),
                Ident("grade".into()),
                Colon,
                LBracket,
                Ident("student".into()),
                Semi,
                Ident("course".into()),
                RBracket,
                Arrow,
                Ident("letter_grade".into()),
                LParen,
                Ident("many-one".into()),
                RParen,
            ]
        );
    }

    #[test]
    fn lexes_inverse_and_composition() {
        let toks = lex("DERIVE lecturer_of = class_list^-1 o teach^-1", 1).unwrap();
        assert_eq!(
            toks,
            vec![
                Ident("DERIVE".into()),
                Ident("lecturer_of".into()),
                Equals,
                Ident("class_list".into()),
                Inverse,
                Ident("o".into()),
                Ident("teach".into()),
                Inverse,
            ]
        );
    }

    #[test]
    fn comments_are_dropped() {
        let toks = lex("STATS -- how bad is it?", 1).unwrap();
        assert_eq!(toks, vec![Ident("STATS".into())]);
        assert!(lex("-- whole line comment", 1).unwrap().is_empty());
    }

    #[test]
    fn string_literals() {
        let toks = lex(r#"INSERT teach("Dr. Euclid", math)"#, 1).unwrap();
        assert_eq!(toks[2], LParen);
        assert_eq!(toks[3], Str("Dr. Euclid".into()));
        assert!(matches!(
            lex(r#"INSERT teach("oops, math)"#, 3),
            Err(FdbError::Parse { line: 3, .. })
        ));
    }

    #[test]
    fn numeric_atoms_lex_as_idents() {
        let toks = lex("INSERT cutoff(85, A)", 1).unwrap();
        assert_eq!(toks[3], Ident("85".into()));
    }

    #[test]
    fn unexpected_character_errors() {
        assert!(lex("QUERY f(x) @", 2).is_err());
    }
}
