//! Line lexer for the fdb language.
//!
//! Every token carries its byte-offset [`Span`] within the line, so
//! parse errors and `fdb-check` diagnostics can point at `line:col`
//! instead of just naming the line.

use fdb_types::{FdbError, Result, Span};

/// One lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword (`teach`, `INSERT`, `many-many`, `85`).
    Ident(String),
    /// Double-quoted string literal (quotes stripped, `\"` unescaped).
    Str(String),
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `,`.
    Comma,
    /// `;`.
    Semi,
    /// `:`.
    Colon,
    /// `->`.
    Arrow,
    /// `=`.
    Equals,
    /// `^-1`.
    Inverse,
}

/// A token plus the byte range it occupies in the source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tok {
    /// The token.
    pub token: Token,
    /// Its byte span within the lexed line.
    pub span: Span,
}

/// Lexes one statement line. Comments (`--` to end of line) are dropped.
pub fn lex(line: &str, line_no: u32) -> Result<Vec<Tok>> {
    let mut out = Vec::new();
    let mut chars = line.char_indices().peekable();
    let mut push = |token: Token, start: usize, end: usize| {
        out.push(Tok {
            token,
            span: Span::new(line_no, start as u32, end as u32),
        });
    };
    while let Some(&(i, c)) = chars.peek() {
        match c {
            '-' if line[i..].starts_with("--") => break, // comment
            c if c.is_whitespace() => {
                chars.next();
            }
            '(' => {
                chars.next();
                push(Token::LParen, i, i + 1);
            }
            ')' => {
                chars.next();
                push(Token::RParen, i, i + 1);
            }
            '[' => {
                chars.next();
                push(Token::LBracket, i, i + 1);
            }
            ']' => {
                chars.next();
                push(Token::RBracket, i, i + 1);
            }
            ',' => {
                chars.next();
                push(Token::Comma, i, i + 1);
            }
            ';' => {
                chars.next();
                push(Token::Semi, i, i + 1);
            }
            ':' => {
                chars.next();
                push(Token::Colon, i, i + 1);
            }
            '=' => {
                chars.next();
                push(Token::Equals, i, i + 1);
            }
            '^' => {
                if line[i..].starts_with("^-1") {
                    chars.next();
                    chars.next();
                    chars.next();
                    push(Token::Inverse, i, i + 3);
                } else {
                    return Err(FdbError::Parse {
                        line: line_no,
                        message: format!("col {}: expected `^-1`", i + 1),
                    });
                }
            }
            '-' if line[i..].starts_with("->") => {
                chars.next();
                chars.next();
                push(Token::Arrow, i, i + 2);
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                let mut closed = false;
                let mut end = i + 1;
                while let Some((j, c)) = chars.next() {
                    end = j + c.len_utf8();
                    match c {
                        '"' => {
                            closed = true;
                            break;
                        }
                        '\\' => {
                            if let Some((k, e)) = chars.next() {
                                end = k + e.len_utf8();
                                s.push(e);
                            }
                        }
                        c => s.push(c),
                    }
                }
                if !closed {
                    return Err(FdbError::Parse {
                        line: line_no,
                        message: format!("col {}: unterminated string literal", i + 1),
                    });
                }
                push(Token::Str(s), i, end);
            }
            c if c.is_alphanumeric() || c == '_' || c == '#' || c == '.' || c == '-' => {
                // Identifiers may contain `-` (functionality names like
                // many-one) but `-` only continues an ident, it cannot
                // start one unless followed by an alphanumeric (handled by
                // the `->` case above firing first).
                let start = i;
                let mut end = i;
                while let Some(&(j, d)) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' || d == '#' || d == '.' || d == '-' {
                        // Stop identifiers before `->`.
                        if d == '-' && line[j..].starts_with("->") {
                            break;
                        }
                        if d == '-' && line[j..].starts_with("--") {
                            break;
                        }
                        end = j + d.len_utf8();
                        chars.next();
                    } else {
                        break;
                    }
                }
                push(Token::Ident(line[start..end].to_owned()), start, end);
            }
            other => {
                return Err(FdbError::Parse {
                    line: line_no,
                    message: format!("col {}: unexpected character {other:?}", i + 1),
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::Token::*;
    use super::*;

    fn tokens(line: &str) -> Vec<Token> {
        lex(line, 1).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn lexes_declare_statement() {
        let toks = tokens("DECLARE grade: [student; course] -> letter_grade (many-one)");
        assert_eq!(
            toks,
            vec![
                Ident("DECLARE".into()),
                Ident("grade".into()),
                Colon,
                LBracket,
                Ident("student".into()),
                Semi,
                Ident("course".into()),
                RBracket,
                Arrow,
                Ident("letter_grade".into()),
                LParen,
                Ident("many-one".into()),
                RParen,
            ]
        );
    }

    #[test]
    fn lexes_inverse_and_composition() {
        let toks = tokens("DERIVE lecturer_of = class_list^-1 o teach^-1");
        assert_eq!(
            toks,
            vec![
                Ident("DERIVE".into()),
                Ident("lecturer_of".into()),
                Equals,
                Ident("class_list".into()),
                Inverse,
                Ident("o".into()),
                Ident("teach".into()),
                Inverse,
            ]
        );
    }

    #[test]
    fn comments_are_dropped() {
        assert_eq!(
            tokens("STATS -- how bad is it?"),
            vec![Ident("STATS".into())]
        );
        assert!(lex("-- whole line comment", 1).unwrap().is_empty());
    }

    #[test]
    fn string_literals() {
        let toks = tokens(r#"INSERT teach("Dr. Euclid", math)"#);
        assert_eq!(toks[2], LParen);
        assert_eq!(toks[3], Str("Dr. Euclid".into()));
        assert!(matches!(
            lex(r#"INSERT teach("oops, math)"#, 3),
            Err(FdbError::Parse { line: 3, .. })
        ));
    }

    #[test]
    fn numeric_atoms_lex_as_idents() {
        let toks = tokens("INSERT cutoff(85, A)");
        assert_eq!(toks[3], Ident("85".into()));
    }

    #[test]
    fn unexpected_character_errors() {
        let err = lex("QUERY f(x) @", 2).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("line 2"), "got: {text}");
        assert!(text.contains("col 12"), "got: {text}");
    }

    #[test]
    fn spans_are_byte_offsets() {
        let toks = lex("INSERT teach(euclid, math)", 4).unwrap();
        // INSERT occupies [0, 6), teach [7, 12), euclid [13, 19).
        assert_eq!(toks[0].span, Span::new(4, 0, 6));
        assert_eq!(toks[1].span, Span::new(4, 7, 12));
        assert_eq!(toks[3].span, Span::new(4, 13, 19));
        // Columns are 1-based.
        assert_eq!(toks[1].span.col(), 8);
        // A string literal's span covers the quotes.
        let toks = lex(r#"SAVE "a b.json""#, 1).unwrap();
        assert_eq!(toks[1].span, Span::new(1, 5, 15));
    }

    #[test]
    fn multibyte_identifiers_span_correctly() {
        let toks = lex("QUERY später(x)", 1).unwrap();
        assert_eq!(toks[1].token, Ident("später".into()));
        // "später" is 7 bytes (ä is 2), starting at byte 6.
        assert_eq!(toks[1].span, Span::new(1, 6, 13));
    }
}
