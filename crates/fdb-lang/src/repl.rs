//! A line-oriented REPL over [`Engine`].
//!
//! Reads statements from any `BufRead`, writes results to any `Write`, so
//! the REPL is fully testable; the `quickstart` example wires it to
//! stdin/stdout.

use std::io::{BufRead, Write};

use fdb_types::Result;

use crate::engine::Engine;

/// Runs the REPL until end of input or a `QUIT`/`EXIT` line. Errors are
/// printed, not fatal. Returns the engine so callers can inspect the
/// final database state.
pub fn run_repl<R: BufRead, W: Write>(
    mut engine: Engine,
    input: R,
    mut output: W,
    prompt: bool,
) -> Result<Engine> {
    if prompt {
        let _ = write!(output, "fdb> ");
        let _ = output.flush();
    }
    for line in input.lines() {
        let Ok(line) = line else { break };
        let trimmed = line.trim();
        if trimmed.eq_ignore_ascii_case("quit") || trimmed.eq_ignore_ascii_case("exit") {
            break;
        }
        match engine.execute_line(&line) {
            Ok(text) => {
                let _ = output.write_all(text.as_bytes());
            }
            Err(e) => {
                let _ = writeln!(output, "error: {e}");
            }
        }
        if prompt {
            let _ = write!(output, "fdb> ");
            let _ = output.flush();
        }
    }
    Ok(engine)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repl_runs_script_and_reports_errors() {
        let script = "DECLARE teach: faculty -> course (many-many)\n\
                      INSERT teach(euclid, math)\n\
                      INSERT ghost(a, b)\n\
                      TRUTH teach(euclid, math)\n\
                      QUIT\n\
                      TRUTH teach(euclid, math)\n";
        let mut out = Vec::new();
        let engine = run_repl(Engine::new(), script.as_bytes(), &mut out, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("declared teach"));
        assert!(text.contains("error: unknown function \"ghost\""));
        assert!(text.contains("T\n"));
        // Input after QUIT was not executed.
        assert_eq!(text.matches("T\n").count(), 1);
        // Engine state is returned.
        assert_eq!(engine.database().stats().base_facts, 1);
    }

    #[test]
    fn repl_prompt_mode_prints_prompts() {
        let mut out = Vec::new();
        run_repl(Engine::new(), "STATS\n".as_bytes(), &mut out, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("fdb> "));
        assert_eq!(text.matches("fdb> ").count(), 2);
    }
}
