//! Statement evaluator.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use fdb_check::{analyze_script, CheckConfig, CheckStmt, DiscoverConfig, Severity, TxnOp};
use fdb_core::{resolve_ambiguities, Budget, CancelToken, Database, Governance, Governor, Outcome};
use fdb_exec::{
    Assumption, AssumptionSet, CacheProbe, CacheReport, FdKind, QuerySpec, ResultCache,
};
use fdb_repl::{Promotion, Replica};
use fdb_types::{Derivation, FdbError, Result, Schema, Step, Value};

use crate::ast::{DeriveStep, Statement};
use crate::format::render_function;
use crate::parser::parse_statement_spanned;

/// The language engine: a [`Database`] plus statement evaluation.
///
/// ```
/// use fdb_lang::Engine;
///
/// let mut engine = Engine::new();
/// for line in [
///     "DECLARE teach: faculty -> course (many-many)",
///     "DECLARE class_list: course -> student (many-many)",
///     "DECLARE pupil: faculty -> student (many-many)",
///     "DERIVE pupil = teach o class_list",
///     "INSERT teach(euclid, math)",
///     "INSERT class_list(math, john)",
/// ] {
///     engine.execute_line(line)?;
/// }
/// assert_eq!(engine.execute_line("TRUTH pupil(euclid, john)")?, "T\n");
/// # Ok::<(), fdb_types::FdbError>(())
/// ```
#[derive(Debug)]
pub struct Engine {
    db: Database,
    line: u32,
    /// Nesting depth of `SOURCE` execution (guards self-sourcing scripts).
    source_depth: u8,
    /// Per-statement deadline for derived-function queries
    /// (`TIMEOUT <ms>` / [`Engine::set_statement_deadline`]).
    deadline: Option<Duration>,
    /// Cancellation flag shared with the host (e.g. a Ctrl-C handler).
    cancel: CancelToken,
    /// Dependency-aware cache of derived truth/extension answers, keyed
    /// by the support set's per-function mutation counters. Entries
    /// survive writes outside the support set; `LOAD` clears it (a
    /// loaded store is a different lineage, so counters are not
    /// comparable). Rollback (`ABORT` / `ROLLBACK TO`) needs no clearing
    /// either, for the opposite reason: undoing *advances* the store's
    /// version counters — a rollback is a fresh version event — so every
    /// pre-rollback entry misses naturally and a post-rollback read can
    /// never be served from a stale snapshot.
    cache: ResultCache,
    /// The session's statement history in the `fdb-check` IR, replayed by
    /// `CHECK` for static diagnostics. `LOAD` clears it; `ABORT`
    /// truncates it back to the `BEGIN` mark and `ROLLBACK TO` back to
    /// the savepoint's mark, mirroring the database.
    check_log: Vec<CheckStmt>,
    /// `check_log` length at the open `BEGIN`, for `ABORT` truncation.
    check_log_mark: usize,
    /// `(name, check_log length)` per live savepoint, in creation order —
    /// the check-log mirror of the database's savepoint stack.
    savepoint_marks: Vec<(String, usize)>,
    /// `STRICT ON`: pre-flight `SOURCE`d scripts through the analyzer
    /// and refuse to run them when error-severity findings show up.
    strict: bool,
    /// An attached hot-standby replica. When present the engine is
    /// read-only: queries are answered from the replica's transaction-
    /// consistent database, write statements are refused, and `PROMOTE`
    /// fails over to a writable primary on a new term.
    replica: Option<Replica>,
    /// Non-genuine FDs `DISCOVER` observed in the stored data, keyed by
    /// the per-function mutation counter at observation. Revalidated
    /// after every successful statement; a write that breaks an assumed
    /// FD drops the assumption and clears the result cache (plans and
    /// answers compiled under the assumption are no longer trustworthy).
    nongenuine: AssumptionSet,
    /// Assumptions dropped by revalidation over the whole session, in
    /// drop order — the evidence `CHECK DATA` reports as `FDB053`.
    invalidated_log: Vec<Assumption>,
}

const HELP: &str = "\
statements (one per line; `--` starts a comment):
  DECLARE name: dom -> rng (functionality)   declare a function
  DERIVE name = f o g^-1 o ...               register a derivation
  INSERT f(x, y)    DELETE f(x, y)           updates (INS/DEL also work)
  REPLACE f(x1, y1) WITH (x2, y2)            replace a pair
  QUERY f(x)                                 image of x under f
  TRUTH f(x, y)                              T / A / F
  SHOW f                                     table or computed extension
  DERIVATIONS f                              registered derivations
  EVAL x : f o g^-1 o ...                    ad-hoc path expression
  EXPLAIN f(x, y)                            evidence for a verdict
  EXPLAIN PLAN f(x, y)                       chain plan + cost estimates
  EXPLAIN ANALYZE f(x, y)                    execute + plan/actual report
  INVERSE f(y)                               inverse image of y
  SOURCE \"file\"                              run a script file
  BEGIN / COMMIT / ABORT (or ROLLBACK)       atomic transactions
  SAVEPOINT name / ROLLBACK TO name          partial rollback points
  SAVE \"file\"    LOAD \"file\"                 snapshot persistence
  DUMP \"file\"                                re-runnable script export
  TIMEOUT <ms> | OFF                         per-statement query deadline
  STATS [RESET | JSON]                       metrics (text, zero, JSON)
  TRACE ON [SAMPLE <n>] | OFF                causal statement tracing
  TRACE SLOW <ms> | OFF                      slow-query log threshold
  SHOW TRACE [JSON]                          span ring (text / Chrome JSON)
  SHOW SLOW                                  slow-query log
  DUMP TRACE                                 write flight-<seq>.json
  CHECK [JSON]                               consistency + static analysis
  CHECK DATA                                 data-aware FDB05x diagnostics
  DISCOVER [JSON]                            mine stored FDs + derivations
  STRICT ON | OFF                            pre-flight SOURCEd scripts
  REPLICA STATUS                             replication position and lag
  PROMOTE                                    fail over: replica -> primary
  SCHEMA  RESOLVE  HELP
";

impl Engine {
    /// A fresh engine over an empty schema.
    pub fn new() -> Self {
        Engine::with_database(Database::new(Schema::new()))
    }

    /// An engine over an existing database.
    pub fn with_database(db: Database) -> Self {
        Engine {
            db,
            line: 0,
            source_depth: 0,
            deadline: None,
            cancel: CancelToken::new(),
            cache: ResultCache::new(),
            check_log: Vec::new(),
            check_log_mark: 0,
            savepoint_marks: Vec::new(),
            strict: false,
            replica: None,
            nongenuine: AssumptionSet::new(),
            invalidated_log: Vec::new(),
        }
    }

    /// An engine serving read-only queries from a hot-standby replica.
    /// The host keeps feeding batches through
    /// [`Engine::replica_mut`] → [`Replica::apply_batch`]; statements see
    /// the replica's current transaction-consistent state.
    pub fn with_replica(replica: Replica) -> Self {
        let mut e = Engine::new();
        e.replica = Some(replica);
        e
    }

    /// Attaches a replica, flipping the engine read-only (see
    /// [`Engine::with_replica`]).
    pub fn attach_replica(&mut self, replica: Replica) {
        self.replica = Some(replica);
    }

    /// Detaches and returns the replica, restoring the engine's own
    /// database as the serving surface.
    pub fn detach_replica(&mut self) -> Option<Replica> {
        self.replica.take()
    }

    /// The attached replica, if any.
    pub fn replica(&self) -> Option<&Replica> {
        self.replica.as_ref()
    }

    /// Mutable access to the attached replica — the host's handle for
    /// applying shipped batches.
    pub fn replica_mut(&mut self) -> Option<&mut Replica> {
        self.replica.as_mut()
    }

    /// The database statements read from: the replica's when one is
    /// attached, the engine's own otherwise.
    fn read_db(&self) -> &Database {
        match &self.replica {
            Some(r) => r.database(),
            None => &self.db,
        }
    }

    /// Refuses write statements while a replica is attached.
    fn replica_write_gate(&self, what: &str) -> Result<()> {
        if self.replica.is_some() {
            return Err(FdbError::TxnControl(format!(
                "read-only replica: {what} refused (PROMOTE to accept writes)"
            )));
        }
        Ok(())
    }

    /// Unified cache statistics: the engine's own derived-result cache
    /// (counters + entry counts) next to the process-wide `fdb.cache.*`
    /// registry counters, so one call reports both layers.
    pub fn cache_stats(&self) -> CacheReport {
        self.cache.report()
    }

    /// The underlying database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// A frozen copy of the database exactly as statements see it right
    /// now — the engine-level face of the MVCC snapshots in
    /// `fdb-storage`.
    ///
    /// Cheap: the store is copy-on-write at per-function granularity, so
    /// the clone is O(#functions) `Arc` bumps; later writes through the
    /// engine detach only the tables they touch. Each statement the
    /// engine executes is pinned to one such state for its whole
    /// evaluation (the engine is `&mut self` per statement, so no write
    /// can interleave), and an open transaction's statements see their
    /// own uncommitted journal overlaid — which is also what this
    /// snapshot captures if one is open. Hand the clone to other threads
    /// to answer queries while the engine keeps writing.
    pub fn snapshot(&self) -> Database {
        self.db.clone()
    }

    /// Sets (or clears) the per-statement deadline applied to queries
    /// over derived functions — the programmatic form of `TIMEOUT`.
    pub fn set_statement_deadline(&mut self, deadline: Option<Duration>) {
        self.deadline = deadline;
    }

    /// The current per-statement deadline, if any.
    pub fn statement_deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// A handle to the engine's cancellation flag. A host (REPL signal
    /// handler, supervisor thread) calls `cancel()` on it to stop the
    /// statement currently executing; the engine rearms the flag at the
    /// start of the next statement.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// A fresh per-statement governor carrying the configured deadline
    /// and the shared cancellation flag.
    fn statement_governor(&self) -> Governor {
        let mut budget = Budget::unbounded();
        if let Some(d) = self.deadline {
            budget = budget.with_deadline(d);
        }
        Governor::with_cancel(budget, &self.cancel)
    }

    /// Renders a governed outcome: complete results pass through, an
    /// exhausted one keeps its sound partial and is annotated.
    fn render_outcome<T>(outcome: Outcome<T>, render: impl FnOnce(T) -> String) -> String {
        match outcome {
            Outcome::Complete(v) => render(v),
            Outcome::Exhausted { partial, reason } => {
                let mut text = render(partial);
                if text.ends_with('\n') {
                    text.pop();
                }
                text.push_str(&format!("  -- partial: stopped by {reason}\n"));
                text
            }
        }
    }

    /// Consumes the engine, returning the database.
    pub fn into_database(self) -> Database {
        self.db
    }

    /// Parses and executes one line, returning the printable result.
    pub fn execute_line(&mut self, line: &str) -> Result<String> {
        self.line += 1;
        // Rearm the cancellation flag for each top-level statement (but
        // not per line of a SOURCEd script — Ctrl-C stops the script).
        if self.source_depth == 0 {
            self.cancel.reset();
        }
        let t0 = Instant::now();
        let _span = fdb_obs::tracer().span("fdb.lang.statement", || {
            line.split_whitespace()
                .next()
                .unwrap_or("")
                .to_ascii_uppercase()
        });
        // Mint the causal trace for this statement: root of a fresh
        // trace when the sampling draw wins, child span inside a
        // SOURCEd script's trace, inert otherwise (zero allocation).
        let mut cspan =
            fdb_obs::causal::statement_span("fdb.lang.statement", || line.trim().to_string());
        let result = parse_statement_spanned(line, self.line).and_then(|spanned| {
            let lowered = crate::check::lower(&spanned);
            let out = match self.execute(spanned.stmt) {
                // A governed stop (deadline, budget, cancellation,
                // overload) inside an open transaction may have applied a
                // prefix of the statement's work; roll back to the last
                // savepoint (or the whole transaction) and surface a
                // typed abort instead of a silent partial state.
                Err(e) if e.is_governed_stop() && self.db.txn_active() => {
                    return Err(self.governed_abort(e));
                }
                other => other?,
            };
            // Successful statements land in the check log. The engine
            // models LOAD/SOURCE itself, so `Other` entries are dropped
            // rather than muting the analyzer's closed world; rollbacks
            // and savepoints are modeled by truncating the log, so of the
            // transaction ops only BEGIN/COMMIT are recorded.
            if let Some(stmt) = lowered {
                let keep = match &stmt {
                    CheckStmt::Other { .. } => false,
                    CheckStmt::Txn { op, .. } => matches!(op, TxnOp::Begin | TxnOp::Commit),
                    _ => true,
                };
                if keep {
                    self.check_log.push(stmt);
                }
            }
            Ok(out)
        });
        let latency_ns = t0.elapsed().as_nanos() as u64;
        let reg = fdb_obs::registry();
        reg.lang_statements.inc();
        reg.statement_latency_ns.record(latency_ns);
        match &result {
            Ok(out) => reg.lang_rows_produced.add(out.lines().count() as u64),
            Err(_) => {
                reg.lang_statement_errors.inc();
                cspan.set_error();
            }
        }
        let rec = fdb_obs::causal::recorder();
        if rec.slow_threshold_ns().is_some_and(|t| latency_ns >= t) {
            let trace_id = cspan.ctx().map_or(0, |c| c.trace_id);
            let attribution = if trace_id == 0 {
                "unsampled -- TRACE ON to capture plan attribution".to_owned()
            } else {
                // The statement's own span is still open; its children
                // (plan/execute/commit spans) have completed and carry
                // the attribution.
                let mut a = String::new();
                for s in rec.trace(trace_id) {
                    a.push_str(&format!("{} {}ns {}\n", s.name, s.dur_ns, s.detail));
                }
                if a.is_empty() {
                    a.push_str("no child spans recorded\n");
                }
                a
            };
            rec.record_slow(line.trim().to_owned(), latency_ns, trace_id, attribution);
        }
        result
    }

    /// Executes a parsed statement.
    ///
    /// After every successful statement, active non-genuine assumptions
    /// (installed by `DISCOVER`) are revalidated against the store's
    /// per-function mutation counters: a write that violated an assumed
    /// FD drops the assumption, logs it for `CHECK DATA` (`FDB053`), and
    /// clears the derived-result cache — answers and plans compiled
    /// under the assumption are no longer trustworthy.
    pub fn execute(&mut self, stmt: Statement) -> Result<String> {
        let out = self.execute_inner(stmt)?;
        if !self.nongenuine.is_empty() {
            let dropped = self.nongenuine.revalidate(self.db.store());
            if !dropped.is_empty() {
                self.invalidated_log.extend(dropped);
                self.cache.clear();
            }
        }
        Ok(out)
    }

    /// The set of non-genuine planner assumptions currently active
    /// (installed by `DISCOVER`, pruned by revalidation).
    pub fn nongenuine(&self) -> &AssumptionSet {
        &self.nongenuine
    }

    /// The derivations registered on the read-side database, keyed by
    /// function — the "skip these" input of the discovery pass.
    fn registered_derivations(&self) -> BTreeMap<fdb_types::FunctionId, Vec<Derivation>> {
        let read = self.read_db();
        read.derived_functions()
            .into_iter()
            .map(|f| (f, read.derivations(f).to_vec()))
            .collect()
    }

    fn execute_inner(&mut self, stmt: Statement) -> Result<String> {
        match stmt {
            Statement::Empty => Ok(String::new()),
            Statement::Help => Ok(HELP.to_owned()),
            Statement::Declare {
                name,
                domain,
                range,
                functionality,
            } => {
                self.replica_write_gate("DECLARE")?;
                let f = functionality.parse()?;
                self.db.declare_function(&name, &domain, &range, f)?;
                Ok(format!("declared {name}: {domain} -> {range} ({f})\n"))
            }
            Statement::Derive { name, steps } => {
                self.replica_write_gate("DERIVE")?;
                let f = self.db.resolve(&name)?;
                let derivation = self.build_derivation(&steps)?;
                let rendered = derivation.render(self.db.schema());
                self.db.add_derivation(f, derivation)?;
                Ok(format!("derived {name} = {rendered}\n"))
            }
            Statement::Insert { function, x, y } => {
                self.replica_write_gate("INSERT")?;
                self.txn_write_gate()?;
                let f = self.db.resolve(&function)?;
                self.db.insert(f, Value::atom(&x), Value::atom(&y))?;
                Ok(format!("inserted {function}({x}, {y})\n"))
            }
            Statement::Delete { function, x, y } => {
                self.replica_write_gate("DELETE")?;
                self.txn_write_gate()?;
                let f = self.db.resolve(&function)?;
                self.db.delete(f, &Value::atom(&x), &Value::atom(&y))?;
                Ok(format!("deleted {function}({x}, {y})\n"))
            }
            Statement::Replace { function, old, new } => {
                self.replica_write_gate("REPLACE")?;
                self.txn_write_gate()?;
                let f = self.db.resolve(&function)?;
                self.db.replace(
                    f,
                    (Value::atom(&old.0), Value::atom(&old.1)),
                    (Value::atom(&new.0), Value::atom(&new.1)),
                )?;
                Ok(format!(
                    "replaced {function}({}, {}) with ({}, {})\n",
                    old.0, old.1, new.0, new.1
                ))
            }
            Statement::Query { function, x } => {
                let db = self.read_db();
                let f = db.resolve(&function)?;
                let gov = self.statement_governor();
                let outcome = db.image_governed(f, &Value::atom(&x), &gov)?;
                Ok(Self::render_outcome(outcome, |image| {
                    let items: Vec<String> = image
                        .into_iter()
                        .map(|(y, t)| match t {
                            fdb_storage::Truth::Ambiguous => format!("{y}*"),
                            _ => y.to_string(),
                        })
                        .collect();
                    format!("{function}({x}) = {{{}}}\n", items.join(", "))
                }))
            }
            Statement::Truth { function, x, y } => {
                // Field-split borrow: the replica (or own) database is
                // read while the cache is written.
                let read = match &self.replica {
                    Some(r) => r.database(),
                    None => &self.db,
                };
                let f = read.resolve(&function)?;
                let (vx, vy) = (Value::atom(&x), Value::atom(&y));
                // Cacheable only when ungoverned: a deadline (or tripped
                // cancel flag) must reach the governed path, and partial
                // answers are never cached.
                if read.is_derived(f) && self.deadline.is_none() && !self.cancel.is_cancelled() {
                    let support = read.support_functions(f);
                    let db = read;
                    let mut err = None;
                    let t = self
                        .cache
                        .truth_or_compute(db.store(), f, &support, &vx, &vy, || {
                            db.truth(f, &vx, &vy).unwrap_or_else(|e| {
                                err = Some(e);
                                fdb_storage::Truth::False
                            })
                        });
                    if let Some(e) = err {
                        return Err(e);
                    }
                    if t == fdb_storage::Truth::Ambiguous {
                        fdb_obs::registry().query_ambiguous_verdicts.inc();
                    }
                    return Ok(format!("{}\n", t.flag()));
                }
                let gov = self.statement_governor();
                let outcome = read.truth_governed(f, &vx, &vy, &gov)?;
                // An exhausted truth is a lower bound, not a verdict —
                // mark it so `F` under a timeout is not read as proof.
                Ok(Self::render_outcome(outcome, |t| {
                    if t == fdb_storage::Truth::Ambiguous {
                        fdb_obs::registry().query_ambiguous_verdicts.inc();
                    }
                    format!("{}\n", t.flag())
                }))
            }
            Statement::Show { function } => {
                let read = match &self.replica {
                    Some(r) => r.database(),
                    None => &self.db,
                };
                let f = read.resolve(&function)?;
                if read.is_derived(f) {
                    let support = read.support_functions(f);
                    let db = read;
                    let mut err = None;
                    let pairs = self
                        .cache
                        .extension_or_compute(db.store(), f, &support, || {
                            db.extension(f).unwrap_or_else(|e| {
                                err = Some(e);
                                Vec::new()
                            })
                        });
                    if let Some(e) = err {
                        return Err(e);
                    }
                    return Ok(crate::format::render_derived_pairs(&pairs));
                }
                render_function(read, f)
            }
            Statement::Derivations { function } => {
                let db = self.read_db();
                let f = db.resolve(&function)?;
                if !db.is_derived(f) {
                    return Ok(format!("{function} is a base function\n"));
                }
                let mut out = String::new();
                for d in db.derivations(f) {
                    out.push_str(&format!("{function} = {}\n", d.render(db.schema())));
                }
                Ok(out)
            }
            Statement::Timeout { millis } => {
                self.deadline = millis.map(Duration::from_millis);
                match millis {
                    Some(ms) => Ok(format!("statement timeout set to {ms} ms\n")),
                    None => Ok("statement timeout cleared\n".to_owned()),
                }
            }
            Statement::Schema => Ok(self.read_db().schema().to_string()),
            Statement::Stats => {
                let s = self.read_db().stats();
                let mut out = format!(
                    "base facts: {} | ambiguous: {} | NCs: {} | nulls: {} | functions: {} base + {} derived\n",
                    s.base_facts,
                    s.ambiguous_facts,
                    s.ncs,
                    s.nulls_generated,
                    s.base_functions,
                    s.derived_functions
                );
                out.push_str(&fdb_obs::render_text(fdb_obs::registry()));
                Ok(out)
            }
            Statement::StatsReset => {
                fdb_obs::registry().reset();
                fdb_obs::tracer().clear();
                // The causal ring, open-span table, and slow-query log
                // reset with the metrics: `SHOW TRACE` reads empty
                // until new statements record (this statement's own
                // span is discarded mid-flight too).
                fdb_obs::causal::recorder().clear();
                Ok("metrics reset\n".to_owned())
            }
            Statement::Trace { on, sample } => {
                fdb_obs::causal::set_tracing(on);
                if on {
                    fdb_obs::causal::set_sample_rate(sample.unwrap_or(1));
                    let rate = fdb_obs::causal::sample_rate();
                    if rate == 1 {
                        Ok("tracing on (every statement)\n".to_owned())
                    } else {
                        Ok(format!("tracing on (sampling 1 in {rate})\n"))
                    }
                } else {
                    Ok("tracing off\n".to_owned())
                }
            }
            Statement::TraceSlow { millis } => match millis {
                Some(ms) => {
                    fdb_obs::causal::recorder()
                        .set_slow_threshold_ns(Some(ms.saturating_mul(1_000_000)));
                    Ok(format!("slow-query threshold set to {ms} ms\n"))
                }
                None => {
                    fdb_obs::causal::recorder().set_slow_threshold_ns(None);
                    Ok("slow-query log disabled\n".to_owned())
                }
            },
            Statement::ShowTrace { json } => {
                let spans = fdb_obs::causal::recorder().recent();
                if json {
                    Ok(fdb_obs::causal::chrome_trace(&spans, false))
                } else {
                    Ok(fdb_obs::causal::render_spans_text(&spans))
                }
            }
            Statement::ShowSlow => Ok(fdb_obs::causal::render_slow_text(
                &fdb_obs::causal::recorder().slow_entries(),
            )),
            Statement::DumpTrace => {
                let dir =
                    fdb_obs::flight::dump_dir().unwrap_or_else(|| std::path::PathBuf::from("."));
                let path =
                    fdb_obs::flight::dump_to(&dir, "manual").map_err(|e| FdbError::Parse {
                        line: self.line,
                        message: format!("cannot write flight dump: {e}"),
                    })?;
                Ok(format!("flight dump written to {}\n", path.display()))
            }
            Statement::StatsJson => {
                let mut out = fdb_obs::render_json(fdb_obs::registry());
                out.push('\n');
                Ok(out)
            }
            Statement::Resolve => {
                self.replica_write_gate("RESOLVE")?;
                let out = resolve_ambiguities(&mut self.db);
                let mut text = format!(
                    "resolved: {} nulls unified, {} facts falsified\n",
                    out.nulls_unified, out.facts_falsified
                );
                for c in out.conflicts {
                    text.push_str(&format!("CONFLICT: {c}\n"));
                }
                Ok(text)
            }
            Statement::Check { json } => {
                let diags = analyze_script(&self.check_log, &CheckConfig::default());
                if json {
                    let mut out = fdb_check::render_json(&diags);
                    out.push('\n');
                    return Ok(out);
                }
                let violations = self.read_db().check_consistency();
                let mut text = String::new();
                if violations.is_empty() {
                    text.push_str("consistent\n");
                } else {
                    for vl in violations {
                        text.push_str(&format!("VIOLATION: {vl}\n"));
                    }
                }
                // A clean session stays exactly `consistent\n`.
                if !diags.is_empty() {
                    text.push_str(&fdb_check::render_text(&diags));
                }
                Ok(text)
            }
            Statement::Discover { json } => {
                let derived = self.registered_derivations();
                let config = DiscoverConfig::default();
                let report = {
                    let read = self.read_db();
                    fdb_check::discover(read.store(), read.schema(), &derived, &config)
                };
                // Every incidental FD becomes a planner assumption, keyed
                // by the mutation counter it was observed at.
                for fd in &report.fds {
                    if fd.observed.is_functional() && !fd.declared.is_functional() {
                        self.nongenuine.install(
                            fd.function,
                            FdKind::Functional,
                            fd.function_version,
                        );
                    }
                    if fd.observed.is_injective() && !fd.declared.is_injective() {
                        self.nongenuine.install(
                            fd.function,
                            FdKind::Injective,
                            fd.function_version,
                        );
                    }
                }
                let read = self.read_db();
                if json {
                    let tree = fdb_check::discovery_to_content(&report, read.schema());
                    let mut out = fdb_check::render_content(&tree);
                    out.push('\n');
                    Ok(out)
                } else {
                    Ok(fdb_check::render_discovery_text(&report, read.schema()))
                }
            }
            Statement::CheckData => {
                let derived = self.registered_derivations();
                let config = DiscoverConfig::default();
                let read = self.read_db();
                let report = fdb_check::discover(read.store(), read.schema(), &derived, &config);
                let mut diags = fdb_check::discovery_diagnostics(&report, read.schema());
                for a in &self.invalidated_log {
                    diags.push(fdb_check::invalidation_diagnostic(
                        read.schema(),
                        a.function,
                        a.kind.as_str(),
                        a.observed_version,
                    ));
                }
                if diags.is_empty() {
                    Ok("data-clean\n".to_owned())
                } else {
                    Ok(fdb_check::render_text(&diags))
                }
            }
            Statement::Strict { on } => {
                self.strict = on;
                Ok(format!("strict mode {}\n", if on { "on" } else { "off" }))
            }
            Statement::Eval { x, steps } => {
                let derivation = self.build_derivation(&steps)?;
                let gov = self.statement_governor();
                let outcome =
                    self.db
                        .eval_expression_governed(&derivation, &Value::atom(&x), &gov)?;
                let rendered = derivation.render(self.db.schema());
                Ok(Self::render_outcome(outcome, |ys| {
                    let items: Vec<String> = ys
                        .into_iter()
                        .map(|(y, t)| match t {
                            fdb_storage::Truth::Ambiguous => format!("{y}*"),
                            _ => y.to_string(),
                        })
                        .collect();
                    format!("{x} : {rendered} = {{{}}}\n", items.join(", "))
                }))
            }
            Statement::Inverse { function, y } => {
                let db = self.read_db();
                let f = db.resolve(&function)?;
                let gov = self.statement_governor();
                let outcome = db.inverse_image_governed(f, &Value::atom(&y), &gov)?;
                Ok(Self::render_outcome(outcome, |xs| {
                    let items: Vec<String> = xs
                        .into_iter()
                        .map(|(x, t)| match t {
                            fdb_storage::Truth::Ambiguous => format!("{x}*"),
                            _ => x.to_string(),
                        })
                        .collect();
                    format!("{function}^-1({y}) = {{{}}}\n", items.join(", "))
                }))
            }
            Statement::Dump { path } => {
                let script = crate::format::dump_script(self.read_db())?;
                std::fs::write(&path, script).map_err(|e| FdbError::Parse {
                    line: self.line,
                    message: format!("cannot write {path}: {e}"),
                })?;
                Ok(format!("dumped script to {path}\n"))
            }
            Statement::Explain { function, x, y } => {
                let db = self.read_db();
                let f = db.resolve(&function)?;
                let e = db.explain(f, &Value::atom(&x), &Value::atom(&y))?;
                Ok(fdb_core::render_explanation(db, f, &e))
            }
            Statement::ExplainPlan { function, x, y } => {
                let db = self.read_db();
                let f = db.resolve(&function)?;
                let (vx, vy) = (Value::atom(&x), Value::atom(&y));
                let reports = db.explain_plan(f, &vx, &vy)?;
                let mut out = crate::format::render_plan_reports(db, f, &x, &y, &reports);
                // What-if under the discovered (non-genuine) FDs: for each
                // derivation walking a function with an active assumption,
                // show the cost the planner would charge if the assumed
                // functionality were declared.
                if !self.nongenuine.is_empty() {
                    let spec = QuerySpec::truth(&vx, &vy, true);
                    for (i, d) in db.derivations(f).iter().enumerate() {
                        if !self.nongenuine.touches(d) {
                            continue;
                        }
                        let what_if = self.nongenuine.plan_assuming(db.store(), d, &spec);
                        let assumed: Vec<String> = self
                            .nongenuine
                            .active()
                            .filter(|a| d.mentions(a.function))
                            .map(|a| {
                                format!(
                                    "{} {}",
                                    db.schema().function(a.function).name,
                                    a.kind.as_str()
                                )
                            })
                            .collect();
                        out.push_str(&format!(
                            "  non-genuine: derivation {} assuming {} — est cost {:.1}\n",
                            i + 1,
                            assumed.join(", "),
                            what_if.est_cost,
                        ));
                    }
                }
                Ok(out)
            }
            Statement::ExplainAnalyze { function, x, y } => {
                let read = match &self.replica {
                    Some(r) => r.database(),
                    None => &self.db,
                };
                let f = read.resolve(&function)?;
                let (vx, vy) = (Value::atom(&x), Value::atom(&y));
                // Probe (not touch) the cache first, so the report says
                // what a real TRUTH would find without disturbing the
                // counters it is reporting on.
                let probe = if read.is_derived(f) {
                    self.cache.probe_truth(read.store(), f, &vx, &vy)
                } else {
                    CacheProbe::Miss
                };
                let report = read.explain_analyze(f, &vx, &vy)?;
                Ok(crate::format::render_analyze_report(
                    read, f, &x, &y, probe, &report,
                ))
            }
            Statement::Source { path } => {
                const MAX_SOURCE_DEPTH: u8 = 16;
                if self.source_depth >= MAX_SOURCE_DEPTH {
                    return Err(FdbError::Parse {
                        line: self.line,
                        message: format!(
                            "SOURCE nesting exceeds {MAX_SOURCE_DEPTH} (circular include?)"
                        ),
                    });
                }
                let text = std::fs::read_to_string(&path).map_err(|e| FdbError::Parse {
                    line: self.line,
                    message: format!("cannot read {path}: {e}"),
                })?;
                if self.strict {
                    self.preflight(&path, &text)?;
                }
                self.source_depth += 1;
                let mut out = String::new();
                let mut result = Ok(());
                for line in text.lines() {
                    match self.execute_line(line) {
                        Ok(text) => out.push_str(&text),
                        Err(e) => {
                            result = Err(e);
                            break;
                        }
                    }
                }
                self.source_depth -= 1;
                result.map(|()| out)
            }
            Statement::Begin => {
                self.replica_write_gate("BEGIN")?;
                self.db.txn_begin()?;
                self.check_log_mark = self.check_log.len();
                self.savepoint_marks.clear();
                Ok("transaction started\n".to_owned())
            }
            Statement::Commit => {
                self.replica_write_gate("COMMIT")?;
                self.db.txn_commit()?;
                self.savepoint_marks.clear();
                Ok("committed\n".to_owned())
            }
            Statement::Abort => {
                self.replica_write_gate("ABORT")?;
                self.db.txn_rollback()?;
                // The check log rolls back with the database it
                // describes.
                self.check_log.truncate(self.check_log_mark);
                self.savepoint_marks.clear();
                Ok("rolled back\n".to_owned())
            }
            Statement::Savepoint { name } => {
                self.replica_write_gate("SAVEPOINT")?;
                self.db.txn_savepoint(&name)?;
                self.savepoint_marks.retain(|(n, _)| n != &name);
                self.savepoint_marks
                    .push((name.clone(), self.check_log.len()));
                Ok(format!("savepoint {name} set\n"))
            }
            Statement::RollbackTo { name } => {
                self.replica_write_gate("ROLLBACK TO")?;
                self.db.txn_rollback_to(&name)?;
                // The database accepted the name, so the mirror stack
                // holds it; truncate the check log to the savepoint and
                // drop the savepoints set after it (keeping the target,
                // which stays live for repeated rollbacks).
                if let Some(pos) = self.savepoint_marks.iter().rposition(|(n, _)| n == &name) {
                    self.check_log.truncate(self.savepoint_marks[pos].1);
                    self.savepoint_marks.truncate(pos + 1);
                }
                Ok(format!("rolled back to {name}\n"))
            }
            Statement::Save { path } => {
                let snapshot = self.read_db().to_snapshot()?;
                std::fs::write(&path, snapshot).map_err(|e| FdbError::Parse {
                    line: self.line,
                    message: format!("cannot write {path}: {e}"),
                })?;
                Ok(format!("saved snapshot to {path}\n"))
            }
            Statement::Load { path } => {
                self.replica_write_gate("LOAD")?;
                if self.db.txn_active() {
                    return Err(FdbError::TxnControl(
                        "cannot LOAD inside an open transaction".into(),
                    ));
                }
                let text = std::fs::read_to_string(&path).map_err(|e| FdbError::Parse {
                    line: self.line,
                    message: format!("cannot read {path}: {e}"),
                })?;
                self.db = Database::from_snapshot(&text)?;
                // A loaded store is a different lineage: its mutation
                // counters are not comparable with cached snapshots, and
                // the check log no longer describes the state.
                self.cache.clear();
                self.check_log.clear();
                Ok(format!("loaded snapshot from {path}\n"))
            }
            Statement::ReplicaStatus => match &self.replica {
                Some(r) => {
                    let mut out = r.status().render();
                    out.push('\n');
                    if let Some(d) = r.divergence() {
                        out.push_str(&d.render());
                        out.push('\n');
                    }
                    Ok(out)
                }
                None => Ok("not a replica (no replication attached)\n".to_owned()),
            },
            Statement::Promote => {
                // Refuse without consuming the replica when promotion is
                // known to be impossible (divergence).
                if let Some(d) = self.replica.as_ref().and_then(Replica::divergence) {
                    return Err(FdbError::TxnControl(format!(
                        "PROMOTE refused: {}",
                        d.render()
                    )));
                }
                let replica = self.replica.take().ok_or_else(|| {
                    FdbError::TxnControl("PROMOTE: this session is not a replica".to_owned())
                })?;
                let Promotion { logged, report } = replica.promote()?;
                let term = logged.term();
                // The engine becomes the writable serving surface over
                // the promoted state; the durable log handle is returned
                // to the host's domain by the library API
                // (`Replica::promote`) when process-level durability is
                // wanted beyond this session.
                self.db = logged.into_database();
                // A different lineage takes over: cached snapshots and
                // the check log no longer describe the state.
                self.cache.clear();
                self.check_log.clear();
                Ok(format!(
                    "promoted to primary on term {term} ({} uncommitted records discarded)\n",
                    report.uncommitted_discarded
                ))
            }
        }
    }

    /// Inside an open transaction, a write consults the statement
    /// governor before executing: a tripped cancel flag or an expired
    /// deadline must not apply further updates — the resulting governed
    /// stop triggers the automatic rollback to the last savepoint.
    fn txn_write_gate(&self) -> Result<()> {
        if self.db.txn_active() {
            self.statement_governor()
                .check()
                .map_err(|r| r.into_error("transactional write"))?;
        }
        Ok(())
    }

    /// Rolls the open transaction back to its last savepoint — or aborts
    /// it entirely when none is set — after a governed stop, returning
    /// the typed [`FdbError::TxnAborted`] the statement surfaces.
    fn governed_abort(&mut self, cause: FdbError) -> FdbError {
        let savepoint = match self.savepoint_marks.last().cloned() {
            Some((name, mark)) => match self.db.txn_rollback_to(&name) {
                Ok(()) => {
                    self.check_log.truncate(mark);
                    Some(name)
                }
                Err(e) => return e,
            },
            None => match self.db.txn_rollback() {
                Ok(()) => {
                    self.check_log.truncate(self.check_log_mark);
                    None
                }
                Err(e) => return e,
            },
        };
        fdb_obs::registry().txn_governed_aborts.inc();
        FdbError::TxnAborted {
            savepoint,
            cause: Box::new(cause),
        }
    }

    /// Toggles strict mode programmatically (the `STRICT ON|OFF` form).
    pub fn set_strict(&mut self, on: bool) {
        self.strict = on;
    }

    /// Whether strict mode is on.
    pub fn strict(&self) -> bool {
        self.strict
    }

    /// Runs the static analyzer over the session's statement history —
    /// what `CHECK` prints, as structured diagnostics.
    pub fn analyze(&self) -> Vec<fdb_check::Diagnostic> {
        analyze_script(&self.check_log, &CheckConfig::default())
    }

    /// Strict-mode pre-flight: analyzes the session history plus the
    /// script about to be `SOURCE`d and refuses on any error-severity
    /// finding (or any line that does not parse).
    fn preflight(&self, path: &str, text: &str) -> Result<()> {
        let (script, parse_errors) = crate::check::lower_script(text);
        if let Some((line, e)) = parse_errors.into_iter().next() {
            return Err(FdbError::Parse {
                line: self.line,
                message: format!("strict: {path}:{line} does not parse: {e}"),
            });
        }
        let mut stmts = self.check_log.clone();
        stmts.extend(script);
        let diags = analyze_script(&stmts, &CheckConfig::default());
        let errors: Vec<String> = diags
            .iter()
            .filter(|d| d.severity() == Severity::Error)
            .map(|d| d.render().replace('\n', "\n  "))
            .collect();
        if errors.is_empty() {
            return Ok(());
        }
        Err(FdbError::Parse {
            line: self.line,
            message: format!(
                "strict: {path} rejected by pre-flight analysis:\n  {}",
                errors.join("\n  ")
            ),
        })
    }

    fn build_derivation(&self, steps: &[DeriveStep]) -> Result<Derivation> {
        let mut out = Vec::with_capacity(steps.len());
        for s in steps {
            let f = self.db.resolve(&s.name)?;
            out.push(if s.inverse {
                Step::inverse(f)
            } else {
                Step::identity(f)
            });
        }
        Derivation::new(out).map_err(|e| match e {
            FdbError::MalformedDerivation(m) => FdbError::Parse {
                line: self.line,
                message: m,
            },
            other => other,
        })
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(engine: &mut Engine, script: &str) -> Vec<Result<String>> {
        script.lines().map(|l| engine.execute_line(l)).collect()
    }

    #[test]
    fn full_university_script() {
        let mut e = Engine::new();
        let results = run(
            &mut e,
            "DECLARE teach: faculty -> course (many-many)\n\
             DECLARE class_list: course -> student (many-many)\n\
             DECLARE pupil: faculty -> student (many-many)\n\
             DERIVE pupil = teach o class_list\n\
             INSERT teach(euclid, math)\n\
             INSERT teach(laplace, math)\n\
             INSERT class_list(math, john)\n\
             INSERT class_list(math, bill)\n\
             TRUTH pupil(euclid, john)",
        );
        for r in &results[..8] {
            r.as_ref().unwrap();
        }
        assert_eq!(results[8].as_ref().unwrap(), "T\n");
    }

    #[test]
    fn explain_plan_statement_and_result_cache() {
        let mut e = Engine::new();
        run(
            &mut e,
            "DECLARE teach: faculty -> course (many-many)\n\
             DECLARE class_list: course -> student (many-many)\n\
             DECLARE pupil: faculty -> student (many-many)\n\
             DECLARE office: faculty -> room (many-one)\n\
             DERIVE pupil = teach o class_list\n\
             INSERT teach(euclid, math)\n\
             INSERT class_list(math, john)",
        )
        .into_iter()
        .for_each(|r| {
            r.unwrap();
        });
        let out = e.execute_line("EXPLAIN PLAN pupil(euclid, john)").unwrap();
        assert!(out.contains("direction:"), "got: {out}");
        assert!(out.contains("actual chains: 1"), "got: {out}");
        let out = e.execute_line("EXPLAIN PLAN teach(euclid, math)").unwrap();
        assert!(out.contains("base function"), "got: {out}");

        // Repeated TRUTH over an unchanged support set hits the cache;
        // a write outside the support set keeps it warm.
        assert_eq!(e.execute_line("TRUTH pupil(euclid, john)").unwrap(), "T\n");
        assert_eq!(e.execute_line("TRUTH pupil(euclid, john)").unwrap(), "T\n");
        assert_eq!(e.cache_stats().local.hits, 1);
        e.execute_line("INSERT office(euclid, e-101)").unwrap();
        assert_eq!(e.execute_line("TRUTH pupil(euclid, john)").unwrap(), "T\n");
        assert_eq!(e.cache_stats().local.hits, 2);
        assert_eq!(e.cache_stats().local.invalidations, 0);
        assert_eq!(e.cache_stats().truth_entries, 1);
        // The global layer has seen at least this engine's traffic.
        assert!(e.cache_stats().global.hits >= e.cache_stats().local.hits);

        // A support-set write invalidates and the answer tracks it.
        e.execute_line("DELETE class_list(math, john)").unwrap();
        assert_eq!(e.execute_line("TRUTH pupil(euclid, john)").unwrap(), "F\n");
        assert_eq!(e.cache_stats().local.invalidations, 1);
    }

    #[test]
    fn discover_installs_assumptions_and_violating_writes_invalidate() {
        let mut e = Engine::new();
        run(
            &mut e,
            "DECLARE teach: faculty -> course (many-many)\n\
             INSERT teach(euclid, math)\n\
             INSERT teach(laplace, stat)",
        )
        .into_iter()
        .for_each(|r| {
            r.unwrap();
        });
        // Two distinct x→y pairs: the extension is one-one while the
        // declaration is many-many, so DISCOVER reports an incidental FD
        // and installs both directions as planner assumptions.
        let out = e.execute_line("DISCOVER").unwrap();
        assert!(out.contains("fd teach: observed one-one"), "got: {out}");
        assert_eq!(e.nongenuine().len(), 2);
        let out = e.execute_line("CHECK DATA").unwrap();
        assert!(out.contains("FDB050"), "got: {out}");
        // Reads leave the assumptions alone.
        e.execute_line("SHOW teach").unwrap();
        assert_eq!(e.nongenuine().len(), 2);
        // A write giving euclid a second course breaks the functional
        // direction only (geom stays a unique range value).
        e.execute_line("INSERT teach(euclid, geom)").unwrap();
        assert_eq!(e.nongenuine().len(), 1);
        let out = e.execute_line("CHECK DATA").unwrap();
        assert!(out.contains("FDB053"), "got: {out}");
        assert!(out.contains("teach is functional"), "got: {out}");
    }

    #[test]
    fn discover_json_and_explain_plan_annotation() {
        let mut e = Engine::new();
        run(
            &mut e,
            "DECLARE teach: faculty -> course (many-many)\n\
             DECLARE class_list: course -> student (many-many)\n\
             DECLARE pupil: faculty -> student (many-many)\n\
             DERIVE pupil = teach o class_list\n\
             INSERT teach(euclid, math)\n\
             INSERT class_list(math, john)\n\
             INSERT class_list(math, bill)",
        )
        .into_iter()
        .for_each(|r| {
            r.unwrap();
        });
        let out = e.execute_line("DISCOVER JSON").unwrap();
        assert!(out.starts_with('{'), "got: {out}");
        assert!(out.contains("\"fds\""), "got: {out}");
        assert!(!e.nongenuine().is_empty());
        // EXPLAIN PLAN over a derivation that walks an assumed function
        // carries the what-if annotation.
        let out = e.execute_line("EXPLAIN PLAN pupil(euclid, john)").unwrap();
        // teach has a single row (below min_support); the discovered FD
        // is class_list's injectivity (john and bill are unique).
        assert!(
            out.contains("non-genuine: derivation 1 assuming"),
            "got: {out}"
        );
        assert!(out.contains("class_list injective"), "got: {out}");
    }

    #[test]
    fn explain_analyze_statement_reports_execution() {
        let mut e = Engine::new();
        run(
            &mut e,
            "DECLARE teach: faculty -> course (many-many)\n\
             DECLARE class_list: course -> student (many-many)\n\
             DECLARE pupil: faculty -> student (many-many)\n\
             DERIVE pupil = teach o class_list\n\
             INSERT teach(euclid, math)\n\
             INSERT class_list(math, john)",
        )
        .into_iter()
        .for_each(|r| {
            r.unwrap();
        });
        let out = e
            .execute_line("EXPLAIN ANALYZE pupil(euclid, john)")
            .unwrap();
        assert!(out.contains("verdict T"), "got: {out}");
        assert!(out.contains("cache miss"), "got: {out}");
        assert!(out.contains("direction:"), "got: {out}");
        assert!(out.contains("actual chains: 1"), "got: {out}");
        assert!(out.contains("exact true: 1"), "got: {out}");
        assert!(out.contains("governor steps:"), "got: {out}");
        assert!(out.contains("total time:"), "got: {out}");

        // Warm the cache, then EXPLAIN ANALYZE reports a hit without
        // disturbing the cached answer.
        assert_eq!(e.execute_line("TRUTH pupil(euclid, john)").unwrap(), "T\n");
        let out = e
            .execute_line("EXPLAIN ANALYZE pupil(euclid, john)")
            .unwrap();
        assert!(out.contains("cache hit"), "got: {out}");
        assert_eq!(e.execute_line("TRUTH pupil(euclid, john)").unwrap(), "T\n");
        assert_eq!(e.cache_stats().local.hits, 1);

        // Base functions report the probe shape, not a plan.
        let out = e
            .execute_line("EXPLAIN ANALYZE teach(euclid, math)")
            .unwrap();
        assert!(out.contains("base function"), "got: {out}");
        assert!(out.contains("verdict T"), "got: {out}");
    }

    #[test]
    fn stats_variants_reset_and_json() {
        let mut e = Engine::new();
        run(
            &mut e,
            "DECLARE teach: faculty -> course (many-many)\n\
             INSERT teach(euclid, math)\n\
             TRUTH teach(euclid, math)",
        )
        .into_iter()
        .for_each(|r| {
            r.unwrap();
        });
        let stats = e.execute_line("STATS").unwrap();
        assert!(stats.contains("fdb.lang.statements"), "got: {stats}");
        let json = e.execute_line("STATS JSON").unwrap();
        assert!(json.trim_start().starts_with('{'), "got: {json}");
        assert!(json.contains("\"fdb.lang.statements\""), "got: {json}");
        assert_eq!(e.execute_line("STATS RESET").unwrap(), "metrics reset\n");
    }

    #[test]
    fn stats_surface_mvcc_and_group_commit_metrics() {
        let mut e = Engine::new();
        // The registry is closed: every key is present in both renderings
        // whether or not this process exercised the MVCC/group paths.
        let stats = e.execute_line("STATS").unwrap();
        let json = e.execute_line("STATS JSON").unwrap();
        for key in [
            "fdb.mvcc.snapshots_published",
            "fdb.mvcc.snapshot_pins",
            "fdb.mvcc.stale_snapshot_reads",
            "fdb.commit.group_fsyncs",
            "fdb.commit.group_fsyncs_saved",
            "fdb.commit.group_failures",
            "fdb.commit.group_size_records",
        ] {
            assert!(stats.contains(key), "STATS lacks {key}: {stats}");
            assert!(
                json.contains(&format!("\"{key}")),
                "STATS JSON lacks {key}: {json}"
            );
        }
    }

    #[test]
    fn derived_delete_and_query_through_language() {
        let mut e = Engine::new();
        run(
            &mut e,
            "DECLARE teach: faculty -> course (many-many)\n\
             DECLARE class_list: course -> student (many-many)\n\
             DECLARE pupil: faculty -> student (many-many)\n\
             DERIVE pupil = teach o class_list\n\
             INSERT teach(euclid, math)\n\
             INSERT class_list(math, john)\n\
             INSERT class_list(math, bill)\n\
             DELETE pupil(euclid, john)",
        )
        .into_iter()
        .for_each(|r| {
            r.unwrap();
        });
        assert_eq!(e.execute_line("TRUTH pupil(euclid, john)").unwrap(), "F\n");
        // euclid's image: only bill remains, ambiguously.
        let q = e.execute_line("QUERY pupil(euclid)").unwrap();
        assert_eq!(q, "pupil(euclid) = {bill*}\n");
        let show = e.execute_line("SHOW teach").unwrap();
        assert!(show.contains("euclid  math  A  {g1}"));
        // CHECK: consistent store, but the analyzer flags the read that
        // came back all-ambiguous (and schema-design infos).
        let check = e.execute_line("CHECK").unwrap();
        assert!(check.starts_with("consistent\n"), "got: {check}");
        assert!(
            check.contains("FDB020 warn 10:7: query `pupil(euclid)`"),
            "got: {check}"
        );
        assert!(
            check.contains("check: 0 errors, 1 warnings, 3 infos\n"),
            "got: {check}"
        );
    }

    #[test]
    fn derive_with_inverse_through_language() {
        let mut e = Engine::new();
        run(
            &mut e,
            "DECLARE teach: faculty -> course (many-many)\n\
             DECLARE taught_by: course -> faculty (many-many)\n\
             DERIVE taught_by = teach^-1\n\
             INSERT teach(euclid, math)",
        )
        .into_iter()
        .for_each(|r| {
            r.unwrap();
        });
        assert_eq!(
            e.execute_line("TRUTH taught_by(math, euclid)").unwrap(),
            "T\n"
        );
        let ders = e.execute_line("DERIVATIONS taught_by").unwrap();
        assert_eq!(ders, "taught_by = teach^-1\n");
    }

    #[test]
    fn resolve_through_language() {
        let mut e = Engine::new();
        run(
            &mut e,
            "DECLARE score: [student; course] -> marks (many-one)\n\
             DECLARE cutoff: marks -> letter_grade (many-one)\n\
             DECLARE grade: [student; course] -> letter_grade (many-one)\n\
             DERIVE grade = score o cutoff\n\
             INSERT grade(s1, A)\n\
             INSERT score(s1, 85)",
        )
        .into_iter()
        .for_each(|r| {
            r.unwrap();
        });
        let out = e.execute_line("RESOLVE").unwrap();
        assert!(out.contains("1 nulls unified"));
        let cutoff = e.execute_line("SHOW cutoff").unwrap();
        assert!(cutoff.contains("85  A  T"));
    }

    #[test]
    fn eval_and_inverse_through_language() {
        let mut e = Engine::new();
        run(
            &mut e,
            "DECLARE teach: faculty -> course (many-many)\n\
             DECLARE class_list: course -> student (many-many)\n\
             INSERT teach(euclid, math)\n\
             INSERT teach(laplace, math)\n\
             INSERT class_list(math, john)",
        )
        .into_iter()
        .for_each(|r| {
            r.unwrap();
        });
        assert_eq!(
            e.execute_line("EVAL euclid : teach o class_list").unwrap(),
            "euclid : teach o class_list = {john}\n"
        );
        assert_eq!(
            e.execute_line("EVAL john : class_list^-1 o teach^-1")
                .unwrap(),
            "john : class_list^-1 o teach^-1 = {euclid, laplace}\n"
        );
        assert_eq!(
            e.execute_line("INVERSE teach(math)").unwrap(),
            "teach^-1(math) = {euclid, laplace}\n"
        );
    }

    #[test]
    fn explain_through_language() {
        let mut e = Engine::new();
        run(
            &mut e,
            "DECLARE teach: faculty -> course (many-many)\n\
             DECLARE class_list: course -> student (many-many)\n\
             DECLARE pupil: faculty -> student (many-many)\n\
             DERIVE pupil = teach o class_list\n\
             INSERT teach(euclid, math)\n\
             INSERT class_list(math, john)\n\
             DELETE pupil(euclid, john)",
        )
        .into_iter()
        .for_each(|r| {
            r.unwrap();
        });
        let out = e.execute_line("EXPLAIN pupil(euclid, john)").unwrap();
        assert!(out.contains("verdict: F"));
        assert!(out.contains("negated by an NC"));
        let out = e.execute_line("EXPLAIN teach(euclid, math)").unwrap();
        assert!(out.contains("verdict: A"));
        assert!(out.contains("base function"));
    }

    #[test]
    fn circular_source_is_rejected() {
        let path = std::env::temp_dir().join(format!("fdb_circular_{}.fdb", std::process::id()));
        std::fs::write(&path, format!("SOURCE \"{}\"\n", path.display())).unwrap();
        let mut e = Engine::new();
        let err = e
            .execute_line(&format!("SOURCE \"{}\"", path.display()))
            .unwrap_err();
        assert!(err.to_string().contains("nesting"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn source_runs_script_files() {
        let path = std::env::temp_dir().join(format!("fdb_source_{}.fdb", std::process::id()));
        std::fs::write(
            &path,
            "DECLARE teach: faculty -> course (many-many)\n\
             -- a comment\n\
             INSERT teach(euclid, math)\n",
        )
        .unwrap();
        let mut e = Engine::new();
        let out = e
            .execute_line(&format!("SOURCE \"{}\"", path.display()))
            .unwrap();
        assert!(out.contains("declared teach"));
        assert!(out.contains("inserted teach"));
        assert_eq!(e.execute_line("TRUTH teach(euclid, math)").unwrap(), "T\n");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn transactions_through_language() {
        let mut e = Engine::new();
        run(
            &mut e,
            "DECLARE teach: faculty -> course (many-many)\n\
             INSERT teach(euclid, math)\n\
             BEGIN\n\
             INSERT teach(gauss, algebra)\n\
             DELETE teach(euclid, math)",
        )
        .into_iter()
        .for_each(|r| {
            r.unwrap();
        });
        assert_eq!(e.database().stats().base_facts, 1);
        e.execute_line("ABORT").unwrap();
        assert_eq!(e.database().stats().base_facts, 1);
        assert_eq!(e.execute_line("TRUTH teach(euclid, math)").unwrap(), "T\n");
        assert_eq!(
            e.execute_line("TRUTH teach(gauss, algebra)").unwrap(),
            "F\n"
        );
        // COMMIT path.
        e.execute_line("BEGIN").unwrap();
        e.execute_line("INSERT teach(gauss, algebra)").unwrap();
        e.execute_line("COMMIT").unwrap();
        assert_eq!(
            e.execute_line("TRUTH teach(gauss, algebra)").unwrap(),
            "T\n"
        );
        // Errors on unbalanced transaction statements.
        assert!(e.execute_line("COMMIT").is_err());
        assert!(e.execute_line("ABORT").is_err());
        e.execute_line("BEGIN").unwrap();
        assert!(e.execute_line("BEGIN").is_err());
    }

    #[test]
    fn savepoints_through_language() {
        let mut e = Engine::new();
        run(
            &mut e,
            "DECLARE teach: faculty -> course (many-many)\n\
             BEGIN\n\
             INSERT teach(euclid, math)\n\
             SAVEPOINT one\n\
             INSERT teach(gauss, algebra)\n\
             ROLLBACK TO one",
        )
        .into_iter()
        .for_each(|r| {
            r.unwrap();
        });
        assert_eq!(e.execute_line("TRUTH teach(euclid, math)").unwrap(), "T\n");
        assert_eq!(
            e.execute_line("TRUTH teach(gauss, algebra)").unwrap(),
            "F\n"
        );
        // The savepoint stays set: roll back to it again after more work.
        e.execute_line("INSERT teach(noether, rings)").unwrap();
        e.execute_line("ROLLBACK TO one").unwrap();
        assert_eq!(
            e.execute_line("TRUTH teach(noether, rings)").unwrap(),
            "F\n"
        );
        e.execute_line("COMMIT").unwrap();
        assert_eq!(e.execute_line("TRUTH teach(euclid, math)").unwrap(), "T\n");
        // Transaction-control misuse is a typed error.
        assert!(e.execute_line("ROLLBACK TO one").is_err());
        assert!(e.execute_line("SAVEPOINT s").is_err());
        e.execute_line("BEGIN").unwrap();
        assert!(e.execute_line("ROLLBACK TO ghost").is_err());
        assert_eq!(e.execute_line("ABORT").unwrap(), "rolled back\n");
    }

    #[test]
    fn governed_stop_inside_txn_rolls_back_to_savepoint() {
        let mut e = Engine::new();
        run(
            &mut e,
            "DECLARE teach: faculty -> course (many-many)\n\
             BEGIN\n\
             INSERT teach(euclid, math)\n\
             SAVEPOINT keep\n\
             INSERT teach(gauss, algebra)",
        )
        .into_iter()
        .for_each(|r| {
            r.unwrap();
        });
        // An expired deadline trips the write gate; the engine rolls back
        // to the savepoint and surfaces the typed abort.
        e.set_statement_deadline(Some(Duration::from_millis(0)));
        std::thread::sleep(Duration::from_millis(5));
        let err = e.execute_line("INSERT teach(noether, rings)").unwrap_err();
        match &err {
            FdbError::TxnAborted { savepoint, cause } => {
                assert_eq!(savepoint.as_deref(), Some("keep"));
                assert!(cause.is_governed_stop(), "cause: {cause}");
            }
            other => panic!("expected TxnAborted, got {other}"),
        }
        e.set_statement_deadline(None);
        // Work after the savepoint is gone; the transaction stays open
        // and commits the pre-savepoint state.
        assert_eq!(
            e.execute_line("TRUTH teach(gauss, algebra)").unwrap(),
            "F\n"
        );
        e.execute_line("COMMIT").unwrap();
        assert_eq!(e.execute_line("TRUTH teach(euclid, math)").unwrap(), "T\n");

        // Without a savepoint the whole transaction aborts and closes.
        e.execute_line("BEGIN").unwrap();
        e.execute_line("INSERT teach(leibniz, calculus)").unwrap();
        e.set_statement_deadline(Some(Duration::from_millis(0)));
        std::thread::sleep(Duration::from_millis(5));
        let err = e.execute_line("DELETE teach(euclid, math)").unwrap_err();
        assert!(
            matches!(
                &err,
                FdbError::TxnAborted {
                    savepoint: None,
                    ..
                }
            ),
            "{err}"
        );
        e.set_statement_deadline(None);
        assert!(!e.database().txn_active());
        assert_eq!(
            e.execute_line("TRUTH teach(leibniz, calculus)").unwrap(),
            "F\n"
        );
        assert_eq!(e.execute_line("TRUTH teach(euclid, math)").unwrap(), "T\n");
    }

    #[test]
    fn rollback_invalidates_derived_cache() {
        let mut e = Engine::new();
        run(
            &mut e,
            "DECLARE teach: faculty -> course (many-many)\n\
             DECLARE class_list: course -> student (many-many)\n\
             DECLARE pupil: faculty -> student (many-many)\n\
             DERIVE pupil = teach o class_list\n\
             INSERT teach(euclid, math)\n\
             INSERT class_list(math, john)",
        )
        .into_iter()
        .for_each(|r| {
            r.unwrap();
        });
        // Warm the derived cache, mutate inside a transaction, roll back.
        assert_eq!(e.execute_line("TRUTH pupil(euclid, john)").unwrap(), "T\n");
        e.execute_line("BEGIN").unwrap();
        e.execute_line("DELETE class_list(math, john)").unwrap();
        assert_eq!(e.execute_line("TRUTH pupil(euclid, john)").unwrap(), "F\n");
        e.execute_line("ABORT").unwrap();
        // Rolling back advanced the version counters, so neither the
        // pre-BEGIN `T` entry nor the in-transaction `F` entry may be
        // served; the answer is recomputed against the restored state.
        assert_eq!(e.execute_line("TRUTH pupil(euclid, john)").unwrap(), "T\n");
    }

    #[test]
    fn save_and_load_round_trip() {
        let path =
            std::env::temp_dir().join(format!("fdb_lang_snapshot_{}.json", std::process::id()));
        let path_str = path.to_str().unwrap().to_owned();
        let mut e = Engine::new();
        run(
            &mut e,
            "DECLARE teach: faculty -> course (many-many)\n\
             DECLARE class_list: course -> student (many-many)\n\
             DECLARE pupil: faculty -> student (many-many)\n\
             DERIVE pupil = teach o class_list\n\
             INSERT teach(euclid, math)\n\
             INSERT class_list(math, john)\n\
             DELETE pupil(euclid, john)",
        )
        .into_iter()
        .for_each(|r| {
            r.unwrap();
        });
        e.execute_line(&format!("SAVE \"{path_str}\"")).unwrap();

        let mut fresh = Engine::new();
        fresh.execute_line(&format!("LOAD \"{path_str}\"")).unwrap();
        assert_eq!(
            fresh.execute_line("TRUTH pupil(euclid, john)").unwrap(),
            "F\n"
        );
        let show = fresh.execute_line("SHOW teach").unwrap();
        assert!(show.contains("euclid  math  A  {g1}"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn timeout_statement_sets_and_clears_deadline() {
        let mut e = Engine::new();
        assert_eq!(
            e.execute_line("TIMEOUT 250").unwrap(),
            "statement timeout set to 250 ms\n"
        );
        assert_eq!(e.statement_deadline(), Some(Duration::from_millis(250)));
        assert_eq!(
            e.execute_line("TIMEOUT OFF").unwrap(),
            "statement timeout cleared\n"
        );
        assert_eq!(e.statement_deadline(), None);
        assert!(e.execute_line("TIMEOUT soon").is_err());
    }

    #[test]
    fn cancelled_query_reports_partial() {
        let mut e = Engine::new();
        run(
            &mut e,
            "DECLARE teach: faculty -> course (many-many)\n\
             DECLARE class_list: course -> student (many-many)\n\
             DECLARE pupil: faculty -> student (many-many)\n\
             DERIVE pupil = teach o class_list\n\
             INSERT teach(euclid, math)\n\
             INSERT class_list(math, john)",
        )
        .into_iter()
        .for_each(|r| {
            r.unwrap();
        });
        // Cancel before executing: the governed query stops immediately
        // and the answer is annotated as partial. Cancelling goes
        // through execute() directly because execute_line rearms.
        e.cancel_token().cancel();
        let stmt = crate::parse_statement("QUERY pupil(euclid)", 99).unwrap();
        let out = e.execute(stmt).unwrap();
        assert!(
            out.contains("-- partial: stopped by cancelled"),
            "got: {out}"
        );
        // Next statement through execute_line rearms and completes.
        let out = e.execute_line("QUERY pupil(euclid)").unwrap();
        assert_eq!(out, "pupil(euclid) = {john}\n");
    }

    #[test]
    fn expired_deadline_yields_partial_truth() {
        let mut e = Engine::new();
        run(
            &mut e,
            "DECLARE teach: faculty -> course (many-many)\n\
             DECLARE class_list: course -> student (many-many)\n\
             DECLARE pupil: faculty -> student (many-many)\n\
             DERIVE pupil = teach o class_list\n\
             INSERT teach(euclid, math)\n\
             INSERT class_list(math, john)",
        )
        .into_iter()
        .for_each(|r| {
            r.unwrap();
        });
        // Enough facts that disproving a pupil fact takes more steps
        // than the governor's clock-check stride *in either walk
        // direction* — a hub on each endpoint, with no link between
        // them, so neither forward nor backward seeding is cheap.
        for i in 0..64 {
            e.execute_line(&format!("INSERT teach(euclid, m{i})"))
                .unwrap();
            e.execute_line(&format!("INSERT class_list(w{i}, bob)"))
                .unwrap();
        }
        e.set_statement_deadline(Some(Duration::from_millis(0)));
        std::thread::sleep(Duration::from_millis(5));
        // A True fact still answers T: one witnessing chain is proof,
        // and True is the top of the truth lattice.
        assert_eq!(e.execute_line("TRUTH pupil(euclid, john)").unwrap(), "T\n");
        // A False fact needs exhaustive search, which the dead deadline
        // forbids — the lower bound comes back marked partial.
        let out = e.execute_line("TRUTH pupil(euclid, bob)").unwrap();
        assert!(out.contains("-- partial: stopped by"), "got: {out}");
        e.set_statement_deadline(None);
        assert_eq!(e.execute_line("TRUTH pupil(euclid, bob)").unwrap(), "F\n");
    }

    #[test]
    fn errors_are_surfaced_with_line_numbers() {
        let mut e = Engine::new();
        let err = e.execute_line("INSERT ghost(a, b)").unwrap_err();
        assert!(matches!(err, FdbError::UnknownFunction(_)));
        let err = e.execute_line("GIBBERISH").unwrap_err();
        assert!(matches!(err, FdbError::Parse { line: 2, .. }));
    }

    #[test]
    fn stats_and_schema_and_help() {
        let mut e = Engine::new();
        e.execute_line("DECLARE f: a -> b (one-one)").unwrap();
        assert!(e.execute_line("SCHEMA").unwrap().contains("1. f: a -> b"));
        assert!(e.execute_line("STATS").unwrap().contains("base facts: 0"));
        assert!(e.execute_line("HELP").unwrap().contains("DECLARE"));
    }

    #[test]
    fn replica_engine_serves_reads_refuses_writes_and_promotes() {
        use fdb_core::{LoggedDatabase, SimDisk, WalStorage};
        use fdb_repl::{Replica, ReplicationSource};
        use std::sync::Arc;

        let disk = Arc::new(SimDisk::new());
        let storage: Arc<dyn WalStorage> = Arc::clone(&disk) as _;
        let (mut p, _) =
            LoggedDatabase::open_with(Arc::clone(&storage), "/p", Default::default()).unwrap();
        p.declare("teach", "faculty", "course", "many-many".parse().unwrap())
            .unwrap();
        p.insert("teach", Value::atom("euclid"), Value::atom("math"))
            .unwrap();

        let mut replica = Replica::open(Arc::clone(&storage), "/r").unwrap();
        let mut src = ReplicationSource::for_primary(&p);
        let batch = src.poll(replica.next_seq(), 10_000).unwrap();
        replica.apply_batch(&batch).unwrap();

        let mut e = Engine::with_replica(replica);
        // Reads come from the replica's state.
        assert_eq!(e.execute_line("TRUTH teach(euclid, math)").unwrap(), "T\n");
        assert!(e
            .execute_line("QUERY teach(euclid)")
            .unwrap()
            .contains("math"));
        // Writes are refused while the replica is attached.
        let err = e.execute_line("INSERT teach(a, b)").unwrap_err();
        assert!(matches!(err, FdbError::TxnControl(_)), "got {err:?}");
        let err = e.execute_line("BEGIN").unwrap_err();
        assert!(matches!(err, FdbError::TxnControl(_)));
        // Status renders position and health.
        let status = e.execute_line("REPLICA STATUS").unwrap();
        assert!(status.contains("applied_seq="), "got: {status}");
        assert!(status.contains("diverged=false"), "got: {status}");

        // Fail over: the engine becomes writable on a new term.
        let out = e.execute_line("PROMOTE").unwrap();
        assert!(out.contains("term 2"), "got: {out}");
        assert!(e.replica().is_none());
        e.execute_line("INSERT teach(hilbert, logic)").unwrap();
        assert_eq!(
            e.execute_line("TRUTH teach(hilbert, logic)").unwrap(),
            "T\n"
        );
        // A second PROMOTE has nothing to promote.
        assert!(e.execute_line("PROMOTE").is_err());
    }

    #[test]
    fn replica_status_without_replica_and_parse() {
        let mut e = Engine::new();
        assert_eq!(
            e.execute_line("REPLICA STATUS").unwrap(),
            "not a replica (no replication attached)\n"
        );
        assert!(e.execute_line("REPLICA").is_err());
        assert!(e.execute_line("REPLICA BOGUS").is_err());
    }
}
