//! Abstract syntax of the fdb language.

/// One step of a `DERIVE` expression: a function name, possibly inverted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeriveStep {
    /// Function name.
    pub name: String,
    /// `true` for `name^-1`.
    pub inverse: bool,
}

/// One statement of the language (one line).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Statement {
    /// `DECLARE name: dom -> rng (functionality)`.
    Declare {
        /// Function name.
        name: String,
        /// Domain type name (compound types in brackets).
        domain: String,
        /// Range type name.
        range: String,
        /// Functionality text, e.g. `many-one`.
        functionality: String,
    },
    /// `DERIVE name = f o g^-1 o …`.
    Derive {
        /// The derived function's name.
        name: String,
        /// Derivation steps, first applied first.
        steps: Vec<DeriveStep>,
    },
    /// `INSERT f(x, y)`.
    Insert {
        /// Function name.
        function: String,
        /// Domain value.
        x: String,
        /// Range value.
        y: String,
    },
    /// `DELETE f(x, y)`.
    Delete {
        /// Function name.
        function: String,
        /// Domain value.
        x: String,
        /// Range value.
        y: String,
    },
    /// `REPLACE f(x1, y1) WITH (x2, y2)`.
    Replace {
        /// Function name.
        function: String,
        /// Pair to remove.
        old: (String, String),
        /// Pair to add.
        new: (String, String),
    },
    /// `QUERY f(x)` — the image of `x`.
    Query {
        /// Function name.
        function: String,
        /// Domain value.
        x: String,
    },
    /// `TRUTH f(x, y)`.
    Truth {
        /// Function name.
        function: String,
        /// Domain value.
        x: String,
        /// Range value.
        y: String,
    },
    /// `SHOW f` — the stored table (base) or computed extension (derived).
    Show {
        /// Function name.
        function: String,
    },
    /// `DERIVATIONS f`.
    Derivations {
        /// Function name.
        function: String,
    },
    /// `SCHEMA`.
    Schema,
    /// `STATS`.
    Stats,
    /// `RESOLVE` — run the FD-based ambiguity-resolution pass.
    Resolve,
    /// `CHECK` / `CHECK JSON` — run the consistency checker plus the
    /// `fdb-check` static analyzer over the statements executed so far.
    Check {
        /// `true` for `CHECK JSON`: emit diagnostics as a JSON array.
        json: bool,
    },
    /// `CHECK DATA` — run the data-aware discovery pass and render its
    /// findings (plus any invalidated non-genuine assumptions) as
    /// `FDB05x` diagnostics.
    CheckData,
    /// `DISCOVER` / `DISCOVER JSON` — mine the stored extensions for
    /// incidental FDs, declared-functionality violations (with minimal
    /// repairs) and candidate derivations; install the discovered FDs as
    /// non-genuine planner assumptions.
    Discover {
        /// `true` for `DISCOVER JSON`: emit the report as JSON.
        json: bool,
    },
    /// `STRICT ON` / `STRICT OFF` — toggle pre-flight static analysis of
    /// `SOURCE`d scripts (error-severity findings refuse execution).
    Strict {
        /// Desired strict-mode state.
        on: bool,
    },
    /// `HELP`.
    Help,
    /// `BEGIN` — open a transaction.
    Begin,
    /// `COMMIT` — make the open transaction permanent.
    Commit,
    /// `ABORT` / `ROLLBACK` — roll the whole open transaction back.
    Abort,
    /// `SAVEPOINT name` — set (or replace) a named savepoint inside the
    /// open transaction.
    Savepoint {
        /// The savepoint's name.
        name: String,
    },
    /// `ROLLBACK TO name` — roll back to a named savepoint, which stays
    /// set.
    RollbackTo {
        /// The savepoint to roll back to.
        name: String,
    },
    /// `SAVE "path"` — write a snapshot of the database.
    Save {
        /// Destination file path.
        path: String,
    },
    /// `LOAD "path"` — replace the database with a snapshot.
    Load {
        /// Source file path.
        path: String,
    },
    /// `DUMP "path"` — export a re-runnable script (schema + true facts).
    Dump {
        /// Destination file path.
        path: String,
    },
    /// `EVAL x : f o g^-1 o …` — ad-hoc path-expression query.
    Eval {
        /// The starting value.
        x: String,
        /// Expression steps.
        steps: Vec<DeriveStep>,
    },
    /// `INVERSE f(y)` — the inverse image of `y` under `f`.
    Inverse {
        /// Function name.
        function: String,
        /// Range value.
        y: String,
    },
    /// `EXPLAIN f(x, y)` — evidence for a fact's truth value.
    Explain {
        /// Function name.
        function: String,
        /// Domain value.
        x: String,
        /// Range value.
        y: String,
    },
    /// `EXPLAIN PLAN f(x, y)` — the chain plan each derivation of `f`
    /// compiles to for this query, with cost estimates vs actuals.
    ExplainPlan {
        /// Function name.
        function: String,
        /// Domain value.
        x: String,
        /// Range value.
        y: String,
    },
    /// `EXPLAIN ANALYZE f(x, y)` — execute the truth query and report
    /// per-derivation plans, estimate-vs-actual chain counts, cache
    /// outcome, governor charge and timing.
    ExplainAnalyze {
        /// Function name.
        function: String,
        /// Domain value.
        x: String,
        /// Range value.
        y: String,
    },
    /// `STATS RESET` — zero the process-wide metrics registry.
    StatsReset,
    /// `STATS JSON` — dump the metrics registry as JSON.
    StatsJson,
    /// `SOURCE "path"` — execute a script file, line by line.
    Source {
        /// Script file path.
        path: String,
    },
    /// `TIMEOUT <millis>` / `TIMEOUT OFF` — per-statement deadline for
    /// queries over derived functions.
    Timeout {
        /// `Some(ms)` to set, `None` to clear.
        millis: Option<u64>,
    },
    /// `TRACE ON [SAMPLE <n>]` / `TRACE OFF` — causal statement tracing;
    /// `ON` without `SAMPLE` traces every statement.
    Trace {
        /// Desired tracing state.
        on: bool,
        /// 1-in-n statement sampling rate (`Some` only with `ON`).
        sample: Option<u64>,
    },
    /// `TRACE SLOW <millis>` / `TRACE SLOW OFF` — slow-query log
    /// threshold.
    TraceSlow {
        /// `Some(ms)` to set, `None` to disable the slow log.
        millis: Option<u64>,
    },
    /// `SHOW TRACE` / `SHOW TRACE JSON` — the causal span ring, as text
    /// or Chrome trace-event JSON.
    ShowTrace {
        /// `true` for the Chrome trace-event JSON export.
        json: bool,
    },
    /// `SHOW SLOW` — the slow-query log.
    ShowSlow,
    /// `DUMP TRACE` — write a flight-recorder dump (`flight-<seq>.json`).
    DumpTrace,
    /// `REPLICA STATUS` — replication position, lag and health of an
    /// engine serving reads from an attached replica.
    ReplicaStatus,
    /// `PROMOTE` — fail over: promote the attached replica to a writable
    /// primary on a new, higher term.
    Promote,
    /// Blank line / comment-only line.
    Empty,
}
