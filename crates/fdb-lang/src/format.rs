//! Rendering database state the way the paper prints it.
//!
//! §4.2 prints base tables as quadruple rows (`gauss  n1  T  {}`) and
//! derived extensions with ambiguous facts marked `*` (`laplace john *`).

use fdb_core::Database;
use fdb_storage::Truth;
use fdb_types::{FunctionId, Result};

/// Renders the stored table of a base function as the paper does:
/// one `x  y  T/A  {ncs}` row per fact, in insertion order.
pub fn render_base_table(db: &Database, f: FunctionId) -> String {
    let mut out = String::new();
    for row in db.store().table(f).rows() {
        let ncl = row
            .ncl
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "{}  {}  {}  {{{}}}\n",
            row.x,
            row.y,
            row.truth.flag(),
            ncl
        ));
    }
    out
}

/// Renders the computed extension of a derived function: `x y` per line,
/// ambiguous facts marked with a trailing `*` as in the paper's tables.
pub fn render_derived_extension(db: &Database, f: FunctionId) -> Result<String> {
    Ok(render_derived_pairs(&db.extension(f)?))
}

/// Renders already-computed extension pairs (e.g. from a cache) the same
/// way as [`render_derived_extension`].
pub fn render_derived_pairs(pairs: &[fdb_storage::DerivedPair]) -> String {
    let mut out = String::new();
    for p in pairs {
        match p.truth {
            Truth::True => out.push_str(&format!("{}  {}\n", p.x, p.y)),
            Truth::Ambiguous => out.push_str(&format!("{}  {}  *\n", p.x, p.y)),
            Truth::False => {}
        }
    }
    out
}

/// Renders either kind of function appropriately.
pub fn render_function(db: &Database, f: FunctionId) -> Result<String> {
    if db.is_derived(f) {
        render_derived_extension(db, f)
    } else {
        Ok(render_base_table(db, f))
    }
}

/// Renders the output of `EXPLAIN PLAN f(x, y)`: one line per derivation
/// with the chosen direction and the planner's estimates next to the
/// observed chain count.
pub fn render_plan_reports(
    db: &Database,
    f: FunctionId,
    x: &str,
    y: &str,
    reports: &[fdb_core::PlanReport],
) -> String {
    let name = &db.schema().function(f).name;
    if reports.is_empty() {
        return format!("{name} is a base function: single index probe, no plan\n");
    }
    let mut out = format!("plan for {name}({x}, {y}):\n");
    for r in reports {
        out.push_str(&format!(
            "  derivation {}: {} — direction: {}, est seed rows: {:.1}, est cost: {:.1}, est chains: {:.1}, actual chains: {}\n",
            r.derivation + 1,
            r.rendered,
            r.direction,
            r.est_seed_rows,
            r.est_cost,
            r.est_chains,
            r.actual_chains,
        ));
    }
    out
}

/// Renders the output of `EXPLAIN ANALYZE f(x, y)`. Every timing field
/// is isolated on lines containing the word "time" so tests (and users
/// diffing output) can filter the unstable parts and compare the rest
/// verbatim.
pub fn render_analyze_report(
    db: &Database,
    f: FunctionId,
    x: &str,
    y: &str,
    cache: fdb_exec::CacheProbe,
    report: &fdb_core::AnalyzeReport,
) -> String {
    let name = &db.schema().function(f).name;
    let mut out = format!(
        "analyze {name}({x}, {y}): verdict {}, cache {cache}\n",
        report.verdict.flag()
    );
    if !report.is_derived {
        out.push_str(&format!(
            "  {name} is a base function: single index probe, no plan\n"
        ));
    }
    for r in &report.derivations {
        let stop = match &r.stop {
            Some(reason) => format!(", truncated by {reason}"),
            None => String::new(),
        };
        out.push_str(&format!(
            "  derivation {}: {} — direction: {}, est cost: {:.1}, est chains: {:.1}, actual chains: {}, exact true: {}, nc-demoted: {}, governor steps: {}{stop}\n",
            r.derivation + 1,
            r.rendered,
            r.direction,
            r.est_cost,
            r.est_chains,
            r.actual_chains,
            r.exact_true_chains,
            r.nc_demoted_chains,
            r.governor_steps,
        ));
        out.push_str(&format!("    time: {} ns\n", r.elapsed_ns));
    }
    out.push_str(&format!("  total time: {} ns\n", report.elapsed_ns));
    out
}

/// Quotes a value for script output when it is not a bare identifier.
fn script_value(v: &fdb_types::Value) -> String {
    let s = v.to_string();
    let bare = !s.is_empty()
        && s.chars()
            .all(|c| c.is_alphanumeric() || matches!(c, '_' | '#' | '.' | '-'));
    if bare {
        s
    } else {
        format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
    }
}

/// Exports the database as a re-runnable fdb script: `DECLARE` +
/// `DERIVE` statements for the schema, then one `INSERT` per *true*
/// stored fact.
///
/// Partial information — ambiguous facts, NCs, null-valued chains — has
/// no plain-statement representation (it is the product of update
/// *history*, not of inserts), so dumping a database that carries any is
/// refused; use snapshots (`SAVE`/`LOAD`) for full-fidelity persistence.
pub fn dump_script(db: &Database) -> Result<String> {
    let stats = db.stats();
    if stats.ambiguous_facts > 0 || stats.ncs > 0 || stats.null_facts > 0 {
        return Err(fdb_types::FdbError::Internal(
            "cannot DUMP a database with partial information (ambiguous facts, \
             NCs or null chains); use SAVE for a full-fidelity snapshot"
                .into(),
        ));
    }
    let mut out = String::from("-- fdb dump: re-run with SOURCE\n");
    let schema = db.schema();
    for def in schema.functions() {
        out.push_str(&format!(
            "DECLARE {}: {} -> {} ({})\n",
            def.name,
            schema.type_name(def.domain),
            schema.type_name(def.range),
            def.functionality
        ));
    }
    for f in db.derived_functions() {
        let name = &schema.function(f).name;
        for d in db.derivations(f) {
            out.push_str(&format!("DERIVE {name} = {}\n", d.render(schema)));
        }
    }
    for f in db.base_functions() {
        let name = &schema.function(f).name;
        for row in db.store().table(f).rows() {
            out.push_str(&format!(
                "INSERT {name}({}, {})\n",
                script_value(row.x),
                script_value(row.y)
            ));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_types::{Derivation, Schema, Step, Value};

    fn v(s: &str) -> Value {
        Value::atom(s)
    }

    fn db() -> Database {
        let schema = Schema::builder()
            .function("teach", "faculty", "course", "many-many")
            .function("class_list", "course", "student", "many-many")
            .function("pupil", "faculty", "student", "many-many")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        let (t, c, p) = (
            db.resolve("teach").unwrap(),
            db.resolve("class_list").unwrap(),
            db.resolve("pupil").unwrap(),
        );
        db.register_derived(
            p,
            vec![Derivation::new(vec![Step::identity(t), Step::identity(c)]).unwrap()],
        )
        .unwrap();
        db.insert(t, v("euclid"), v("math")).unwrap();
        db.insert(t, v("laplace"), v("math")).unwrap();
        db.insert(c, v("math"), v("john")).unwrap();
        db.insert(c, v("math"), v("bill")).unwrap();
        db
    }

    #[test]
    fn base_table_rendering_matches_paper_shape() {
        let mut database = db();
        let p = database.resolve("pupil").unwrap();
        database.delete(p, &v("euclid"), &v("john")).unwrap();
        let t = database.resolve("teach").unwrap();
        let text = render_base_table(&database, t);
        assert!(text.contains("euclid  math  A  {g1}"));
        assert!(text.contains("laplace  math  T  {}"));
    }

    #[test]
    fn derived_extension_marks_ambiguity_with_star() {
        let mut database = db();
        let p = database.resolve("pupil").unwrap();
        database.delete(p, &v("euclid"), &v("john")).unwrap();
        let text = render_derived_extension(&database, p).unwrap();
        assert!(text.contains("euclid  bill  *"));
        assert!(text.contains("laplace  john  *"));
        assert!(text.contains("laplace  bill\n"));
        assert!(!text.contains("euclid  john"));
    }

    #[test]
    fn dump_round_trips_through_source() {
        // A clean database dumps to a script that rebuilds it exactly.
        let database = db();
        let script = dump_script(&database).unwrap();
        assert!(script.contains("DECLARE pupil: faculty -> student (many-many)"));
        assert!(script.contains("DERIVE pupil = teach o class_list"));
        assert!(script.contains("INSERT teach(euclid, math)"));

        let mut engine = crate::Engine::new();
        for line in script.lines() {
            engine.execute_line(line).unwrap();
        }
        let rebuilt = engine.database();
        assert_eq!(rebuilt.stats(), database.stats());
        let p = rebuilt.resolve("pupil").unwrap();
        assert_eq!(
            rebuilt.extension(p).unwrap(),
            database
                .extension(database.resolve("pupil").unwrap())
                .unwrap()
        );
    }

    #[test]
    fn dump_refuses_partial_information() {
        let mut database = db();
        let p = database.resolve("pupil").unwrap();
        database.delete(p, &v("euclid"), &v("john")).unwrap();
        assert!(dump_script(&database).is_err());
    }

    #[test]
    fn dump_quotes_non_bare_values() {
        let schema = fdb_types::Schema::builder()
            .function("f", "a", "b", "many-many")
            .build()
            .unwrap();
        let mut database = Database::new(schema);
        let f = database.resolve("f").unwrap();
        database
            .insert(f, Value::atom("Dr. Euclid"), Value::atom("math"))
            .unwrap();
        let script = dump_script(&database).unwrap();
        assert!(script.contains("INSERT f(\"Dr. Euclid\", math)"));
        // And it parses back.
        let mut engine = crate::Engine::new();
        for line in script.lines() {
            engine.execute_line(line).unwrap();
        }
        assert_eq!(engine.database().stats().base_facts, 1);
    }

    #[test]
    fn render_function_dispatches() {
        let database = db();
        let t = database.resolve("teach").unwrap();
        let p = database.resolve("pupil").unwrap();
        assert!(render_function(&database, t).unwrap().contains("T  {}"));
        assert!(render_function(&database, p)
            .unwrap()
            .contains("euclid  john"));
    }
}
