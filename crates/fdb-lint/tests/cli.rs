//! End-to-end tests of the `fdb-lint` binary: exit codes, formats,
//! baselines and FDB000 syntax recovery.

use std::path::PathBuf;
use std::process::{Command, Output};

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fdb_lint_{}_{name}", std::process::id()))
}

fn write_script(name: &str, text: &str) -> PathBuf {
    let path = tmp(name);
    std::fs::write(&path, text).expect("write temp script");
    path
}

fn lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fdb-lint"))
        .args(args)
        .output()
        .expect("run fdb-lint")
}

const CLEAN: &str = "DECLARE teach: faculty -> course (many-many)\n\
                     INSERT teach(euclid, math)\n\
                     QUERY teach(euclid)\n";

const WARNY: &str = "DECLARE teach: faculty -> course (many-many)\n\
                     INSERT teach(euclid, math)\n\
                     DELETE teach(euclid, math)\n";

const ERRORY: &str = "INSERT ghost(a, b)\n";

#[test]
fn exit_codes_track_worst_severity() {
    let clean = write_script("clean.fdb", CLEAN);
    let warny = write_script("warny.fdb", WARNY);
    let errory = write_script("errory.fdb", ERRORY);

    let out = lint(&[clean.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("check: 0 errors, 0 warnings, 0 infos"),
        "{text}"
    );

    let out = lint(&[warny.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("FDB023 warn 3:8:"), "{text}");

    // --deny warn upgrades warnings to a failing exit.
    let out = lint(&["--deny", "warn", warny.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");

    let out = lint(&[errory.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");

    for p in [clean, warny, errory] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn unparseable_lines_become_fdb000_not_a_crash() {
    let bad = write_script(
        "bad.fdb",
        "THIS IS NOT FDBL\nDECLARE teach: faculty -> course (many-many)\n",
    );
    let out = lint(&[bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("FDB000 error 1:"), "{text}");
    std::fs::remove_file(bad).ok();
}

#[test]
fn json_format_maps_files_to_findings() {
    let warny = write_script("json.fdb", WARNY);
    let out = lint(&["--format", "json", warny.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.trim_start().starts_with('{'), "{text}");
    assert!(text.contains("\"FDB023\""), "{text}");
    assert!(text.contains("\"severity\":\"warn\""), "{text}");
    std::fs::remove_file(warny).ok();
}

#[test]
fn sarif_format_is_valid_and_points_at_the_file() {
    let warny = write_script("sarif.fdb", WARNY);
    let out = lint(&["--format", "sarif", warny.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"version\":\"2.1.0\""), "{text}");
    assert!(text.contains("\"ruleId\":\"FDB023\""), "{text}");
    assert!(text.contains("sarif.fdb"), "{text}");
    std::fs::remove_file(warny).ok();
}

#[test]
fn baseline_suppresses_known_findings() {
    let warny = write_script("base.fdb", WARNY);
    let baseline = tmp("baseline.txt");
    let wpath = warny.to_str().unwrap();
    let bpath = baseline.to_str().unwrap();

    // Writing the baseline records the current findings and exits 0.
    let out = lint(&["--baseline", bpath, "--write-baseline", wpath]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let recorded = std::fs::read_to_string(&baseline).expect("baseline written");
    assert!(
        recorded.contains(&format!("FDB023 {wpath}:3")),
        "{recorded}"
    );

    // With the baseline applied the same script is clean…
    let out = lint(&["--baseline", bpath, wpath]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");

    // …but a new finding on another line still fails.
    let grown = format!("{WARNY}INSERT teach(gauss, algebra)\nDELETE teach(gauss, algebra)\n");
    std::fs::write(&warny, grown).expect("grow script");
    let out = lint(&["--baseline", bpath, wpath]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("FDB023 warn 5:8:"), "{text}");

    std::fs::remove_file(warny).ok();
    std::fs::remove_file(baseline).ok();
}

#[test]
fn replica_mode_marker_turns_on_fdb040_per_file() {
    // Same statements, with and without the marker: the lint is scoped
    // to the file that declares itself a replica script.
    let body = "DECLARE teach: faculty -> course (many-many)\n\
                INSERT teach(euclid, math)\n\
                QUERY teach(euclid)\n";
    let replica = write_script("replica.fdb", &format!("-- mode: replica\n{body}"));
    let primary = write_script("primary.fdb", body);

    let out = lint(&[replica.to_str().unwrap(), primary.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("FDB040 error 2:1:"), "{text}");
    assert!(text.contains("FDB040 error 3:1:"), "{text}");
    let fdb040s = text.matches("FDB040").count();
    assert_eq!(fdb040s, 2, "primary file must stay quiet: {text}");

    for p in [replica, primary] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn usage_errors_exit_three() {
    let out = lint(&[]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let out = lint(&["--format", "yaml", "x.fdb"]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let out = lint(&["/nonexistent/definitely_missing.fdb"]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
}
