//! End-to-end tests of the `fdb-lint` binary: exit codes, formats,
//! baselines and FDB000 syntax recovery.

use std::path::PathBuf;
use std::process::{Command, Output};

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fdb_lint_{}_{name}", std::process::id()))
}

fn write_script(name: &str, text: &str) -> PathBuf {
    let path = tmp(name);
    std::fs::write(&path, text).expect("write temp script");
    path
}

fn lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fdb-lint"))
        .args(args)
        .output()
        .expect("run fdb-lint")
}

const CLEAN: &str = "DECLARE teach: faculty -> course (many-many)\n\
                     INSERT teach(euclid, math)\n\
                     QUERY teach(euclid)\n";

const WARNY: &str = "DECLARE teach: faculty -> course (many-many)\n\
                     INSERT teach(euclid, math)\n\
                     DELETE teach(euclid, math)\n";

const ERRORY: &str = "INSERT ghost(a, b)\n";

#[test]
fn exit_codes_track_worst_severity() {
    let clean = write_script("clean.fdb", CLEAN);
    let warny = write_script("warny.fdb", WARNY);
    let errory = write_script("errory.fdb", ERRORY);

    let out = lint(&[clean.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("check: 0 errors, 0 warnings, 0 infos"),
        "{text}"
    );

    let out = lint(&[warny.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("FDB023 warn 3:8:"), "{text}");

    // --deny warn upgrades warnings to a failing exit.
    let out = lint(&["--deny", "warn", warny.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");

    let out = lint(&[errory.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");

    for p in [clean, warny, errory] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn unparseable_lines_become_fdb000_not_a_crash() {
    let bad = write_script(
        "bad.fdb",
        "THIS IS NOT FDBL\nDECLARE teach: faculty -> course (many-many)\n",
    );
    let out = lint(&[bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("FDB000 error 1:"), "{text}");
    std::fs::remove_file(bad).ok();
}

#[test]
fn json_format_maps_files_to_findings() {
    let warny = write_script("json.fdb", WARNY);
    let out = lint(&["--format", "json", warny.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.trim_start().starts_with('{'), "{text}");
    assert!(text.contains("\"FDB023\""), "{text}");
    assert!(text.contains("\"severity\":\"warn\""), "{text}");
    std::fs::remove_file(warny).ok();
}

#[test]
fn sarif_format_is_valid_and_points_at_the_file() {
    let warny = write_script("sarif.fdb", WARNY);
    let out = lint(&["--format", "sarif", warny.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"version\":\"2.1.0\""), "{text}");
    assert!(text.contains("\"ruleId\":\"FDB023\""), "{text}");
    assert!(text.contains("sarif.fdb"), "{text}");
    std::fs::remove_file(warny).ok();
}

#[test]
fn baseline_suppresses_known_findings() {
    let warny = write_script("base.fdb", WARNY);
    let baseline = tmp("baseline.txt");
    let wpath = warny.to_str().unwrap();
    let bpath = baseline.to_str().unwrap();

    // Writing the baseline records the current findings and exits 0.
    let out = lint(&["--baseline", bpath, "--write-baseline", wpath]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let recorded = std::fs::read_to_string(&baseline).expect("baseline written");
    assert!(
        recorded.contains(&format!("FDB023 {wpath}:3")),
        "{recorded}"
    );

    // With the baseline applied the same script is clean…
    let out = lint(&["--baseline", bpath, wpath]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");

    // …but a new finding on another line still fails.
    let grown = format!("{WARNY}INSERT teach(gauss, algebra)\nDELETE teach(gauss, algebra)\n");
    std::fs::write(&warny, grown).expect("grow script");
    let out = lint(&["--baseline", bpath, wpath]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("FDB023 warn 5:8:"), "{text}");

    std::fs::remove_file(warny).ok();
    std::fs::remove_file(baseline).ok();
}

#[test]
fn replica_mode_marker_turns_on_fdb040_per_file() {
    // Same statements, with and without the marker: the lint is scoped
    // to the file that declares itself a replica script.
    let body = "DECLARE teach: faculty -> course (many-many)\n\
                INSERT teach(euclid, math)\n\
                QUERY teach(euclid)\n";
    let replica = write_script("replica.fdb", &format!("-- mode: replica\n{body}"));
    let primary = write_script("primary.fdb", body);

    let out = lint(&[replica.to_str().unwrap(), primary.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("FDB040 error 2:1:"), "{text}");
    assert!(text.contains("FDB040 error 3:1:"), "{text}");
    let fdb040s = text.matches("FDB040").count();
    assert_eq!(fdb040s, 2, "primary file must stay quiet: {text}");

    for p in [replica, primary] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn stale_baseline_keys_are_noted_and_prunable() {
    let warny = write_script("stale.fdb", WARNY);
    let baseline = tmp("stale_baseline.txt");
    let wpath = warny.to_str().unwrap();
    let bpath = baseline.to_str().unwrap();

    // Record the current findings, then fix the script: the recorded
    // key no longer matches anything.
    let out = lint(&["--baseline", bpath, "--write-baseline", wpath]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    std::fs::write(&warny, CLEAN).expect("fix script");
    let out = lint(&["--baseline", bpath, wpath]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("note: stale baseline entry"), "{err}");
    assert!(err.contains(&format!("FDB023 {wpath}:3")), "{err}");

    // Pruning rewrites the file without the stale key and exits 0.
    let out = lint(&["--baseline", bpath, "--prune-baseline", wpath]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("pruned 1 stale baseline entries"), "{text}");
    let rewritten = std::fs::read_to_string(&baseline).expect("baseline kept");
    assert!(!rewritten.contains("FDB023"), "{rewritten}");
    let out = lint(&["--baseline", bpath, wpath]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(
        !String::from_utf8_lossy(&out.stderr).contains("stale"),
        "no notes after pruning"
    );

    // --write-baseline output is sorted and deduplicated: two findings
    // on distinct lines come back in line order, once each.
    let doubled = format!("{WARNY}INSERT teach(gauss, algebra)\nDELETE teach(gauss, algebra)\n");
    std::fs::write(&warny, doubled).expect("grow script");
    let out = lint(&["--baseline", bpath, "--write-baseline", wpath]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let rewritten = std::fs::read_to_string(&baseline).expect("baseline rewritten");
    let keys: Vec<&str> = rewritten.lines().filter(|l| !l.starts_with('#')).collect();
    assert_eq!(keys.len(), 2, "{rewritten}");
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(keys, sorted, "{rewritten}");

    std::fs::remove_file(warny).ok();
    std::fs::remove_file(baseline).ok();
}

#[test]
fn with_store_mines_the_replayed_data() {
    // grade is declared many-many but stores a violated many-one-looking
    // extension? No: store a one-one extension (incidental FD, FDB050)
    // plus a declared many-one function violated by a double mapping
    // (FDB051 with a repair).
    let store = write_script(
        "store.fdb",
        "DECLARE teach: faculty -> course (many-many)\n\
         DECLARE office: faculty -> room (many-one)\n\
         INSERT teach(euclid, math)\n\
         INSERT teach(laplace, stat)\n\
         INSERT office(euclid, e101)\n\
         INSERT office(euclid, e202)\n",
    );
    let spath = store.to_str().unwrap();

    let out = lint(&["--with-store", spath]);
    // The violation is warn-severity, so the exit code is 1.
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fd teach: observed one-one"), "{text}");
    assert!(
        text.contains("violation office: declared many-one"),
        "{text}"
    );
    assert!(text.contains("delete office(euclid,"), "{text}");
    assert!(text.contains("FDB050"), "{text}");
    assert!(text.contains("FDB051"), "{text}");

    // The same findings flow through SARIF with the store file as the
    // artifact.
    let out = lint(&["--format", "sarif", "--with-store", spath]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"ruleId\":\"FDB051\""), "{text}");
    assert!(text.contains("store.fdb"), "{text}");

    // A replay failure is a usage/IO error, not a lint verdict.
    let broken = write_script("broken_store.fdb", "INSERT ghost(a, b)\n");
    let out = lint(&["--with-store", broken.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("replay failed"), "{err}");

    std::fs::remove_file(store).ok();
    std::fs::remove_file(broken).ok();
}

#[test]
fn sarif_multi_file_source_points_each_finding_at_its_file() {
    // `outer` SOURCEs `inner`; both carry a dead write, on different
    // lines. Each SARIF result must carry its own file's uri and the
    // column range of its own span.
    let inner = write_script("sarif_inner.fdb", WARNY);
    // The dead write sits *before* the SOURCE: a world-opening statement
    // mutes the closed-world passes from that point on.
    let outer = write_script(
        "sarif_outer.fdb",
        &format!(
            "DECLARE office: faculty -> room (many-one)\n\
             INSERT office(euclid, e101)\n\
             DELETE office(euclid, e101)\n\
             SOURCE \"{}\"\n",
            inner.display()
        ),
    );
    let opath = outer.to_str().unwrap();
    let ipath = inner.to_str().unwrap();

    fn as_u64(c: &serde::Content) -> Option<u64> {
        match c {
            serde::Content::U64(n) => Some(*n),
            _ => None,
        }
    }

    let out = lint(&["--format", "sarif", opath, ipath]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    let log = serde_json::parse(&text).expect("valid JSON");
    let runs = log
        .as_map()
        .and_then(|m| serde::map_get(m, "runs"))
        .unwrap();
    let run = &runs.as_seq().unwrap()[0];
    let results = run
        .as_map()
        .and_then(|m| serde::map_get(m, "results"))
        .and_then(serde::Content::as_seq)
        .unwrap();
    // One FDB023 per file; collect (uri, startLine, startColumn).
    let mut found = Vec::new();
    for r in results {
        let m = r.as_map().unwrap();
        if serde::map_get(m, "ruleId").and_then(serde::Content::as_str) != Some("FDB023") {
            continue;
        }
        let loc = serde::map_get(m, "locations")
            .and_then(serde::Content::as_seq)
            .unwrap()[0]
            .as_map()
            .and_then(|m| serde::map_get(m, "physicalLocation"))
            .unwrap();
        let uri = loc
            .as_map()
            .and_then(|m| serde::map_get(m, "artifactLocation"))
            .and_then(serde::Content::as_map)
            .and_then(|m| serde::map_get(m, "uri"))
            .and_then(serde::Content::as_str)
            .unwrap()
            .to_owned();
        let region = loc
            .as_map()
            .and_then(|m| serde::map_get(m, "region"))
            .and_then(serde::Content::as_map)
            .unwrap();
        let line = serde::map_get(region, "startLine")
            .and_then(as_u64)
            .unwrap();
        let start = serde::map_get(region, "startColumn")
            .and_then(as_u64)
            .unwrap();
        let end = serde::map_get(region, "endColumn")
            .and_then(as_u64)
            .unwrap();
        found.push((uri, line, start, end));
    }
    assert_eq!(found.len(), 2, "{text}");
    // Both dead writes sit on line 3 of their own file; each span covers
    // the function name after "DELETE " (col 8).
    assert!(
        found
            .iter()
            .any(|(u, l, s, e)| u == opath && *l == 3 && *s == 8 && *e > *s),
        "{found:?}"
    );
    assert!(
        found
            .iter()
            .any(|(u, l, s, e)| u == ipath && *l == 3 && *s == 8 && *e > *s),
        "{found:?}"
    );

    std::fs::remove_file(outer).ok();
    std::fs::remove_file(inner).ok();
}

#[test]
fn usage_errors_exit_three() {
    let out = lint(&[]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let out = lint(&["--format", "yaml", "x.fdb"]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let out = lint(&["/nonexistent/definitely_missing.fdb"]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
}
