//! `fdb-lint` — lint FDBL scripts from the command line.
//!
//! ```text
//! fdb-lint [OPTIONS] FILE...
//!
//!   --format text|json|sarif   output format (default text)
//!   --deny warn                exit 2 (not 1) when warnings remain
//!   --baseline FILE            suppress findings listed in FILE
//!   --write-baseline           regenerate the baseline file and exit
//!   --prune-baseline           drop stale baseline keys and exit
//!   --chain-budget N           FDB030 threshold (default 10000)
//!   --with-store FILE          replay FILE, mine its stored data (FDB05x)
//!
//! exit status: 0 clean, 1 warnings, 2 errors (or warnings under
//! `--deny warn`), 3 usage/IO failure.
//! ```
//!
//! Lines that do not parse become `FDB000` findings rather than aborting
//! the run, so one bad line does not hide the rest of the report.
//! `--with-store` goes one step further than the static passes: the file
//! is *executed* (through the normal engine) and the resulting store is
//! mined for incidental FDs, declared-functionality violations with
//! minimal repairs, and candidate derivations — the data-aware `FDB05x`
//! findings. Baseline keys that no longer match any finding are reported
//! as a note on stderr; `--prune-baseline` rewrites the file without
//! them.

use std::collections::BTreeMap;
use std::process::ExitCode;

use fdb_check::{
    analyze_script, detect_replica_mode, render_content, render_sarif_all, sort_diagnostics,
    summary_line, Baseline, CheckConfig, Code, Diagnostic, Severity,
};
use serde::Content;

struct Options {
    format: Format,
    deny_warn: bool,
    baseline_path: Option<String>,
    write_baseline: bool,
    prune_baseline: bool,
    chain_budget: f64,
    with_store: Option<String>,
    files: Vec<String>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sarif,
}

const USAGE: &str = "usage: fdb-lint [--format text|json|sarif] [--deny warn] \
                     [--baseline FILE [--write-baseline | --prune-baseline]] \
                     [--chain-budget N] [--with-store FILE] FILE...";

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        format: Format::Text,
        deny_warn: false,
        baseline_path: None,
        write_baseline: false,
        prune_baseline: false,
        chain_budget: CheckConfig::default().chain_budget,
        with_store: None,
        files: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => {
                opts.format = match it.next().map(String::as_str) {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    Some("sarif") => Format::Sarif,
                    other => {
                        return Err(format!("--format expects text|json|sarif, got {other:?}"))
                    }
                }
            }
            "--deny" => match it.next().map(String::as_str) {
                Some("warn") => opts.deny_warn = true,
                other => return Err(format!("--deny expects `warn`, got {other:?}")),
            },
            "--baseline" => match it.next() {
                Some(p) => opts.baseline_path = Some(p.clone()),
                None => return Err("--baseline expects a file path".into()),
            },
            "--write-baseline" => opts.write_baseline = true,
            "--prune-baseline" => opts.prune_baseline = true,
            "--with-store" => match it.next() {
                Some(p) => opts.with_store = Some(p.clone()),
                None => return Err("--with-store expects a file path".into()),
            },
            "--chain-budget" => {
                opts.chain_budget = it
                    .next()
                    .and_then(|s| s.parse::<f64>().ok())
                    .filter(|b| b.is_finite() && *b > 0.0)
                    .ok_or("--chain-budget expects a positive number")?;
            }
            "--help" | "-h" => return Err(USAGE.into()),
            f if !f.starts_with('-') => opts.files.push(f.to_owned()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if opts.files.is_empty() && opts.with_store.is_none() {
        return Err(USAGE.into());
    }
    if opts.write_baseline && opts.baseline_path.is_none() {
        return Err("--write-baseline requires --baseline FILE".into());
    }
    if opts.prune_baseline && opts.baseline_path.is_none() {
        return Err("--prune-baseline requires --baseline FILE".into());
    }
    if opts.prune_baseline && opts.write_baseline {
        return Err("--prune-baseline and --write-baseline are mutually exclusive".into());
    }
    Ok(opts)
}

/// Extracts the `col N:` prefix the parser puts on its messages, so
/// syntax findings point at the offending column.
fn parse_error_span(line_no: u32, message: &str) -> fdb_types::Span {
    let col = message
        .strip_prefix("col ")
        .and_then(|rest| rest.split(':').next())
        .and_then(|n| n.parse::<u32>().ok())
        .unwrap_or(1);
    fdb_types::Span::new(line_no, col.saturating_sub(1), col)
}

fn lint_file(path: &str, config: &CheckConfig) -> Result<Vec<Diagnostic>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let (stmts, parse_errors) = fdb_lang::lower_script(&text);
    // A leading `-- mode: replica` comment turns on the FDB040 lint for
    // this file only: writes here would be refused by a replica engine.
    let config = CheckConfig {
        replica_mode: detect_replica_mode(&text),
        ..config.clone()
    };
    let mut diags = analyze_script(&stmts, &config);
    for (line_no, err) in parse_errors {
        let message = match &err {
            fdb_types::FdbError::Parse { message, .. } => message.clone(),
            other => other.to_string(),
        };
        diags.push(Diagnostic::new(
            Code::Syntax,
            parse_error_span(line_no, &message),
            message,
        ));
    }
    sort_diagnostics(&mut diags);
    Ok(diags)
}

/// Replays `path` through a fresh engine and mines the resulting store:
/// the data-aware half of the linter. Returns the byte-stable report
/// text (printed in text mode, and the CI golden format) plus the
/// `FDB05x` diagnostics, which join the normal finding stream.
fn discover_store(path: &str) -> Result<(String, Vec<Diagnostic>), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut engine = fdb_lang::Engine::new();
    for (i, line) in text.lines().enumerate() {
        engine
            .execute_line(line)
            .map_err(|e| format!("{path}:{}: replay failed: {e}", i + 1))?;
    }
    let db = engine.database();
    let derived: BTreeMap<fdb_types::FunctionId, Vec<fdb_types::Derivation>> = db
        .derived_functions()
        .into_iter()
        .map(|f| (f, db.derivations(f).to_vec()))
        .collect();
    let report = fdb_check::discover(
        db.store(),
        db.schema(),
        &derived,
        &fdb_check::DiscoverConfig::default(),
    );
    let mut diags = fdb_check::discovery_diagnostics(&report, db.schema());
    sort_diagnostics(&mut diags);
    Ok((
        fdb_check::render_discovery_text(&report, db.schema()),
        diags,
    ))
}

fn run(args: &[String]) -> Result<u8, String> {
    let opts = parse_args(args)?;
    let config = CheckConfig {
        chain_budget: opts.chain_budget,
        ..CheckConfig::default()
    };

    let mut entries: Vec<(String, Vec<Diagnostic>)> = Vec::new();
    for file in &opts.files {
        entries.push((file.clone(), lint_file(file, &config)?));
    }
    let mut store_report = None;
    if let Some(store) = &opts.with_store {
        let (report_text, diags) = discover_store(store)?;
        store_report = Some(report_text);
        entries.push((store.clone(), diags));
    }

    if opts.write_baseline {
        let path = opts.baseline_path.as_deref().unwrap_or_default();
        let mut baseline = Baseline::default();
        for (file, diags) in &entries {
            baseline.merge(Baseline::from_diagnostics(file, diags));
        }
        std::fs::write(path, baseline.render()).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {} baseline entries to {path}", baseline.len());
        return Ok(0);
    }

    if let Some(path) = &opts.baseline_path {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let mut baseline = Baseline::parse(&text);
        // Keys matching none of this run's (pre-filter) findings are
        // stale: the underlying finding was fixed but the suppression
        // lives on, and would silently mask a regression.
        let stale = baseline.stale_keys(&entries);
        if opts.prune_baseline {
            let removed = baseline.remove_keys(&stale);
            std::fs::write(path, baseline.render())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            println!(
                "pruned {removed} stale baseline entries from {path} ({} kept)",
                baseline.len()
            );
            return Ok(0);
        }
        for key in &stale {
            eprintln!("note: stale baseline entry `{key}` (--prune-baseline to drop)");
        }
        for (file, diags) in &mut entries {
            *diags = baseline.filter(file, std::mem::take(diags));
        }
    }

    match opts.format {
        Format::Text => {
            if let Some(report) = &store_report {
                print!("{report}");
            }
            let mut all = Vec::new();
            for (file, diags) in &entries {
                for d in diags {
                    // `render` is multi-line when hints are present:
                    // prefix only the first line with the file.
                    let rendered = d.render();
                    let mut lines = rendered.lines();
                    if let Some(first) = lines.next() {
                        println!("{file}:{first}");
                    }
                    for rest in lines {
                        println!("{rest}");
                    }
                    all.push(d.clone());
                }
            }
            println!("{}", summary_line(&all));
        }
        Format::Json => {
            let tree = Content::Map(
                entries
                    .iter()
                    .map(|(file, diags)| {
                        (
                            Content::Str(file.clone()),
                            Content::Seq(diags.iter().map(Diagnostic::to_content).collect()),
                        )
                    })
                    .collect(),
            );
            println!("{}", render_content(&tree));
        }
        Format::Sarif => println!("{}", render_sarif_all(&entries)),
    }

    let worst = entries
        .iter()
        .flat_map(|(_, diags)| diags.iter())
        .map(Diagnostic::severity)
        .max();
    Ok(match worst {
        Some(Severity::Error) => 2,
        Some(Severity::Warn) => {
            if opts.deny_warn {
                2
            } else {
                1
            }
        }
        _ => 0,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => ExitCode::from(code),
        Err(msg) => {
            eprintln!("fdb-lint: {msg}");
            ExitCode::from(3)
        }
    }
}
