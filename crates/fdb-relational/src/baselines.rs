//! The three baseline view-update translators of §3.1.
//!
//! * **Naive** — the §3 strawman: pick one base tuple of one witnessing
//!   chain and delete it (resp. insert a chain through fresh constants).
//! * **Dayal–Bernstein `[6]`** — a translation is *correct* iff it has the
//!   desired effect on the view and *no side effect on the view* (the
//!   symmetric difference of the view before/after equals the updated
//!   tuple). Among correct translations the smallest is returned; if none
//!   exists the update is rejected (`None`).
//! * **Fagin–Ullman–Vardi `[9]`** — the new database must differ from the
//!   old in as few facts as possible, regardless of collateral view
//!   damage.
//!
//! Both non-naive delete translators search minimal hitting sets of the
//! witnessing chains, in deterministic (sorted) order; the insert
//! translators search minimal chain completions over the active domain
//! plus one fresh skolem constant per boundary. The searches are
//! exponential in the worst case — these are 1980s semantics specified
//! declaratively, and the benchmarks keep instances small; `MAX_CANDIDATES`
//! guards pathological blowups.

use std::collections::BTreeSet;

use fdb_types::Value;

use crate::chain_db::{BaseTuple, ChainDb};

/// Candidate-set cap for the hitting-set searches.
const MAX_CANDIDATES: usize = 24;

/// A computed translation of a view update into base-table changes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Translation {
    /// Base tuples to delete.
    pub deletions: Vec<BaseTuple>,
    /// Base tuples to insert.
    pub insertions: Vec<BaseTuple>,
}

impl Translation {
    /// Total number of base facts changed (the `[9]` objective).
    pub fn cost(&self) -> usize {
        self.deletions.len() + self.insertions.len()
    }

    /// Applies the translation to a database.
    pub fn apply(&self, db: &mut ChainDb) {
        db.apply_deletions(&self.deletions);
        db.apply_insertions(&self.insertions);
    }
}

/// Naive delete: remove the first base tuple of the first witnessing
/// chain (the translation the §3 example shows causes collateral view
/// deletions). Returns `None` if the view tuple has no chain.
pub fn naive_delete(db: &ChainDb, x: &Value, y: &Value) -> Option<Translation> {
    let chains = db.chains_for(x, y);
    let first = chains.first()?;
    Some(Translation {
        deletions: vec![first[0].clone()],
        insertions: vec![],
    })
}

/// Naive insert: add a full chain through fresh skolem constants
/// (`skN_i`), the closest a conventional framework gets to the paper's
/// null-valued chains — except the skolems are ordinary, fully concrete
/// values the database can never distinguish from real data.
pub fn naive_insert(db: &ChainDb, x: &Value, y: &Value, skolem_seq: &mut u64) -> Translation {
    let k = db.arity();
    let mut boundary = Vec::with_capacity(k + 1);
    boundary.push(x.clone());
    for i in 1..k {
        *skolem_seq += 1;
        boundary.push(Value::atom(format!("sk{}_{}", *skolem_seq, i)));
    }
    boundary.push(y.clone());
    Translation {
        deletions: vec![],
        insertions: (0..k)
            .map(|i| (i, (boundary[i].clone(), boundary[i + 1].clone())))
            .collect(),
    }
}

/// Enumerates subsets of `candidates` by increasing size (and in
/// lexicographic index order within one size), returning the first subset
/// `ok` accepts — i.e. a minimum-cardinality solution with deterministic
/// tie-breaking.
fn min_subset<F: FnMut(&[BaseTuple]) -> bool>(
    candidates: &[BaseTuple],
    mut ok: F,
) -> Option<Vec<BaseTuple>> {
    let n = candidates.len().min(MAX_CANDIDATES);
    let mut subset: Vec<BaseTuple> = Vec::new();
    for size in 1..=n {
        if let Some(found) = combos(candidates, n, 0, size, &mut subset, &mut ok) {
            return Some(found);
        }
    }
    None
}

fn combos<F: FnMut(&[BaseTuple]) -> bool>(
    candidates: &[BaseTuple],
    n: usize,
    start: usize,
    remaining: usize,
    subset: &mut Vec<BaseTuple>,
    ok: &mut F,
) -> Option<Vec<BaseTuple>> {
    if remaining == 0 {
        return ok(subset).then(|| subset.clone());
    }
    for i in start..n {
        if n - i < remaining {
            break;
        }
        subset.push(candidates[i].clone());
        if let Some(found) = combos(candidates, n, i + 1, remaining - 1, subset, ok) {
            return Some(found);
        }
        subset.pop();
    }
    None
}

/// The candidate tuples for deleting view tuple `(x, y)`: every base
/// tuple participating in some witnessing chain, deduplicated, sorted.
fn delete_candidates(db: &ChainDb, x: &Value, y: &Value) -> Vec<BaseTuple> {
    let mut set: BTreeSet<BaseTuple> = BTreeSet::new();
    for chain in db.chains_for(x, y) {
        set.extend(chain);
    }
    set.into_iter().collect()
}

/// Fagin–Ullman–Vardi delete: the minimum-cardinality set of base-tuple
/// deletions after which `(x, y)` is no longer in the view. `None` if the
/// tuple is not in the view.
pub fn fuv_delete(db: &ChainDb, x: &Value, y: &Value) -> Option<Translation> {
    let candidates = delete_candidates(db, x, y);
    if candidates.is_empty() {
        return None;
    }
    let deletions = min_subset(&candidates, |subset| {
        let mut trial = db.clone();
        trial.apply_deletions(subset);
        trial.chains_for(x, y).is_empty()
    })?;
    Some(Translation {
        deletions,
        insertions: vec![],
    })
}

/// Dayal–Bernstein delete: the smallest deletion set that removes
/// `(x, y)` from the view *and changes nothing else in the view*.
/// Rejected (`None`) when no side-effect-free translation exists.
pub fn dayal_bernstein_delete(db: &ChainDb, x: &Value, y: &Value) -> Option<Translation> {
    let candidates = delete_candidates(db, x, y);
    if candidates.is_empty() {
        return None;
    }
    let mut expected = db.view();
    expected.remove(&(x.clone(), y.clone()));
    let deletions = min_subset(&candidates, |subset| {
        let mut trial = db.clone();
        trial.apply_deletions(subset);
        trial.view() == expected
    })?;
    Some(Translation {
        deletions,
        insertions: vec![],
    })
}

/// All minimal chain completions for inserting `(x, y)`: assignments of
/// boundary values minimising the number of missing links, drawing
/// intermediate values from the active domain plus one fresh skolem per
/// boundary.
fn insert_completions(
    db: &ChainDb,
    x: &Value,
    y: &Value,
    skolem_seq: &mut u64,
) -> Vec<Translation> {
    let k = db.arity();
    // Candidate values per boundary 1..k-1.
    let mut boundary_candidates: Vec<Vec<Value>> = Vec::with_capacity(k.saturating_sub(1));
    for i in 1..k {
        let mut vals: Vec<Value> = db.boundary_values(i).into_iter().collect();
        *skolem_seq += 1;
        vals.push(Value::atom(format!("sk{}_{}", *skolem_seq, i)));
        boundary_candidates.push(vals);
    }
    // Exhaustive assignment search (instances in tests/benches are small).
    let mut best_cost = usize::MAX;
    let mut best: Vec<Translation> = Vec::new();
    let mut assignment: Vec<Value> = Vec::with_capacity(k - 1);
    assign(
        db,
        x,
        y,
        &boundary_candidates,
        &mut assignment,
        &mut best_cost,
        &mut best,
    );
    best
}

fn assign(
    db: &ChainDb,
    x: &Value,
    y: &Value,
    cands: &[Vec<Value>],
    assignment: &mut Vec<Value>,
    best_cost: &mut usize,
    best: &mut Vec<Translation>,
) {
    if assignment.len() == cands.len() {
        let k = db.arity();
        let mut boundary = Vec::with_capacity(k + 1);
        boundary.push(x.clone());
        boundary.extend(assignment.iter().cloned());
        boundary.push(y.clone());
        let mut insertions = Vec::new();
        for i in 0..k {
            if !db.relation(i).contains(&boundary[i], &boundary[i + 1]) {
                insertions.push((i, (boundary[i].clone(), boundary[i + 1].clone())));
            }
        }
        let cost = insertions.len();
        if cost < *best_cost {
            *best_cost = cost;
            best.clear();
        }
        if cost == *best_cost {
            best.push(Translation {
                deletions: vec![],
                insertions,
            });
        }
        return;
    }
    for v in &cands[assignment.len()] {
        assignment.push(v.clone());
        assign(db, x, y, cands, assignment, best_cost, best);
        assignment.pop();
    }
}

/// Fagin–Ullman–Vardi insert: a minimum-cardinality set of base-tuple
/// insertions making `(x, y)` derivable (ties broken deterministically by
/// the search order — reusing existing join values where possible).
pub fn fuv_insert(db: &ChainDb, x: &Value, y: &Value, skolem_seq: &mut u64) -> Translation {
    let completions = insert_completions(db, x, y, skolem_seq);
    completions
        .into_iter()
        .next()
        .expect("skolem completion always exists")
}

/// Dayal–Bernstein insert: among the minimum-cost completions, the first
/// whose only view change is the inserted tuple; `None` (rejection) if
/// every minimal completion has side effects. (A skolem chain is always
/// side-effect-free but costs `k`; DB semantics requires correctness
/// *and* minimality, so a cheaper side-effecting completion forces
/// rejection.)
pub fn dayal_bernstein_insert(
    db: &ChainDb,
    x: &Value,
    y: &Value,
    skolem_seq: &mut u64,
) -> Option<Translation> {
    let mut expected = db.view();
    expected.insert((x.clone(), y.clone()));
    insert_completions(db, x, y, skolem_seq)
        .into_iter()
        .find(|t| {
            let mut trial = db.clone();
            t.apply(&mut trial);
            trial.view() == expected
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Value {
        Value::atom(s)
    }

    /// §3.1: r1 = {a1b1, a1b2}, r2 = {b1c1, b2c1}, r3 = {c1d1}.
    fn paper_31() -> ChainDb {
        let mut db = ChainDb::new(3);
        db.insert(0, "a1", "b1");
        db.insert(0, "a1", "b2");
        db.insert(1, "b1", "c1");
        db.insert(1, "b2", "c1");
        db.insert(2, "c1", "d1");
        db
    }

    #[test]
    fn e5_dayal_bernstein_translation_is_correct() {
        // The paper: "a 'correct' translation of this update under [6]
        // semantics is DEL(r1, <a1,b1>) and DEL(r1, <a1,b2>)" — *a*
        // correct translation, not the unique one. Our implementation
        // returns the minimal correct translation (here DEL(r3, <c1,d1>),
        // which on this instance also has zero view side effect). Both
        // must satisfy the [6] correctness criterion.
        let db = paper_31();
        let t = dayal_bernstein_delete(&db, &v("a1"), &v("d1")).unwrap();
        let mut after = db.clone();
        t.apply(&mut after);
        assert!(after.view().is_empty(), "desired effect, no side effect");

        // The paper's illustrative choice is also correct under [6]:
        let papers_choice = Translation {
            deletions: vec![(0, (v("a1"), v("b1"))), (0, (v("a1"), v("b2")))],
            insertions: vec![],
        };
        let mut after = db.clone();
        papers_choice.apply(&mut after);
        assert!(after.view().is_empty());
    }

    #[test]
    fn e5_fuv_deletes_the_single_r3_tuple() {
        // The paper: "according to the semantics of [9] u4 is performed by
        // deleting DEL(r3, <c1,d1>) … the only way which results in a new
        // database that differs by exactly one fact".
        let db = paper_31();
        let t = fuv_delete(&db, &v("a1"), &v("d1")).unwrap();
        assert_eq!(t.deletions, vec![(2, (v("c1"), v("d1")))]);
        assert_eq!(t.cost(), 1);
    }

    #[test]
    fn naive_delete_takes_first_chain_head() {
        let db = paper_31();
        let t = naive_delete(&db, &v("a1"), &v("d1")).unwrap();
        assert_eq!(t.deletions.len(), 1);
        assert_eq!(t.deletions[0].0, 0);
    }

    #[test]
    fn pupil_example_naive_has_side_effects_db_rejects() {
        // §3 example: teach = {euclid→math, laplace→math, laplace→physics},
        // class_list = {math→john, math→bill}; DEL(pupil, <euclid, john>).
        let mut db = ChainDb::new(2);
        db.insert(0, "euclid", "math");
        db.insert(0, "laplace", "math");
        db.insert(0, "laplace", "physics");
        db.insert(1, "math", "john");
        db.insert(1, "math", "bill");
        // Naive: deletes <euclid, math> — killing pupil(euclid, bill) too.
        let t = naive_delete(&db, &v("euclid"), &v("john")).unwrap();
        let mut after = db.clone();
        t.apply(&mut after);
        assert!(!after.view().contains(&(v("euclid"), v("bill"))));
        // Dayal–Bernstein: every translation kills a sibling view tuple →
        // rejection.
        assert!(dayal_bernstein_delete(&db, &v("euclid"), &v("john")).is_none());
        // FUV: one fact — either <euclid,math> or <math,john> — with
        // collateral view damage it does not measure.
        let t = fuv_delete(&db, &v("euclid"), &v("john")).unwrap();
        assert_eq!(t.cost(), 1);
    }

    #[test]
    fn fuv_insert_reuses_existing_links() {
        let db = paper_31();
        let mut seq = 0;
        // Insert (a2, d1): the cheapest completion adds one tuple
        // (a2, b1) or (a2, b2) to r1, reusing r2/r3.
        let t = fuv_insert(&db, &v("a2"), &v("d1"), &mut seq);
        assert_eq!(t.cost(), 1);
        assert_eq!(t.insertions[0].0, 0);
        assert_eq!(t.insertions[0].1 .0, v("a2"));
    }

    #[test]
    fn db_insert_accepts_side_effect_free_minimal_completion() {
        let db = paper_31();
        let mut seq = 0;
        // (a2, d1) via (a2, b1): view gains exactly (a2, d1) — no side
        // effect, so DB accepts the 1-tuple translation.
        let t = dayal_bernstein_insert(&db, &v("a2"), &v("d1"), &mut seq).unwrap();
        assert_eq!(t.cost(), 1);
    }

    #[test]
    fn db_insert_rejects_when_minimal_completion_has_side_effects() {
        // r2 has b1 → {c1, c2}, r3 = {c1→d1, c2→d2}. Inserting (a9, d1) by
        // reusing b1 creates (a9, d2) as well → side effect at cost 1;
        // the skolem chain is side-effect-free but costs 3 (> minimal), so
        // DB (minimal ∧ correct) rejects.
        let mut db = ChainDb::new(3);
        db.insert(1, "b1", "c1");
        db.insert(1, "b1", "c2");
        db.insert(2, "c1", "d1");
        db.insert(2, "c2", "d2");
        let mut seq = 0;
        assert!(dayal_bernstein_insert(&db, &v("a9"), &v("d1"), &mut seq).is_none());
        // FUV happily takes the cost-1 completion with the side effect.
        let t = fuv_insert(&db, &v("a9"), &v("d1"), &mut seq);
        assert_eq!(t.cost(), 1);
    }

    #[test]
    fn naive_insert_builds_full_skolem_chain() {
        let db = paper_31();
        let mut seq = 0;
        let t = naive_insert(&db, &v("a2"), &v("d2"), &mut seq);
        assert_eq!(t.cost(), 3);
        let mut after = db.clone();
        t.apply(&mut after);
        assert!(after.view().contains(&(v("a2"), v("d2"))));
        // Skolem chains never create extra view tuples.
        assert_eq!(after.view().len(), db.view().len() + 1);
    }

    #[test]
    fn delete_of_absent_view_tuple_is_none() {
        let db = paper_31();
        assert!(naive_delete(&db, &v("zz"), &v("d1")).is_none());
        assert!(fuv_delete(&db, &v("zz"), &v("d1")).is_none());
        assert!(dayal_bernstein_delete(&db, &v("zz"), &v("d1")).is_none());
    }
}
