//! Relational substrate and view-update baselines.
//!
//! §3.1 of Yerneni & Lanka contrasts their NC/NVC update semantics with
//! the relational view-update literature: Dayal–Bernstein's "correct
//! translation" criterion `[6]` and Fagin–Ullman–Vardi's minimal-change
//! semantics `[9]`, plus the naive translation their §3 example warns
//! about. None of that 1980s code survives, so this crate re-implements
//! the three baselines over a minimal relational substrate, specialised to
//! *chain views* — views of the form `π_{A,Z}(r₁ ⋈ r₂ ⋈ … ⋈ r_k)` over
//! binary relations, which are exactly the relational mirror of function
//! composition and the shape of every example in the paper.
//!
//! The crate exists so the benchmarks (experiments E5 and E9) can measure
//! what the paper claims qualitatively: the baselines trade side effects
//! (or rejections) for expressibility, while the functional database's
//! NC/NVC semantics stores the partial information and has no side
//! effects by construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod chain_db;
pub mod metrics;

pub use baselines::{
    dayal_bernstein_delete, dayal_bernstein_insert, fuv_delete, fuv_insert, naive_delete,
    naive_insert, Translation,
};
pub use chain_db::{BinaryRelation, ChainDb};
pub use metrics::{delete_side_effects, insert_side_effects, SideEffects};
