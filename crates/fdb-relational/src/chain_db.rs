//! Binary relations chained into a join view.
//!
//! A [`ChainDb`] holds `k` binary relations `r₁ … r_k` understood as a
//! chain schema `r₁(A₀A₁), r₂(A₁A₂), …, r_k(A_{k−1}A_k)`; its *view* is
//! `π_{A₀ A_k}(r₁ ⋈ … ⋈ r_k)` — the relational mirror of the composition
//! `r₁ o … o r_k`.

use std::collections::BTreeSet;

use fdb_types::Value;

/// A binary relation: a set of `(left, right)` pairs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BinaryRelation {
    pairs: BTreeSet<(Value, Value)>,
}

impl BinaryRelation {
    /// Creates an empty relation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a pair; returns `true` if it was new.
    pub fn insert(&mut self, l: impl Into<Value>, r: impl Into<Value>) -> bool {
        self.pairs.insert((l.into(), r.into()))
    }

    /// Removes a pair; returns `true` if it was present.
    pub fn remove(&mut self, l: &Value, r: &Value) -> bool {
        self.pairs.remove(&(l.clone(), r.clone()))
    }

    /// `true` if the pair is present.
    pub fn contains(&self, l: &Value, r: &Value) -> bool {
        self.pairs.contains(&(l.clone(), r.clone()))
    }

    /// Iterates over the pairs in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &(Value, Value)> {
        self.pairs.iter()
    }

    /// Pairs whose left component equals `l`.
    pub fn with_left<'r>(&'r self, l: &'r Value) -> impl Iterator<Item = &'r (Value, Value)> {
        self.pairs.iter().filter(move |(a, _)| a == l)
    }

    /// Pairs whose right component equals `r`.
    pub fn with_right<'r>(&'r self, r: &'r Value) -> impl Iterator<Item = &'r (Value, Value)> {
        self.pairs.iter().filter(move |(_, b)| b == r)
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// `true` if the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// A tuple of one base relation: `(relation index, pair)`.
pub type BaseTuple = (usize, (Value, Value));

/// A database of chained binary relations with its join view.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChainDb {
    relations: Vec<BinaryRelation>,
}

impl ChainDb {
    /// Creates a chain of `k` empty relations.
    pub fn new(k: usize) -> Self {
        ChainDb {
            relations: (0..k).map(|_| BinaryRelation::new()).collect(),
        }
    }

    /// Number of relations in the chain.
    pub fn arity(&self) -> usize {
        self.relations.len()
    }

    /// Access to relation `i`.
    pub fn relation(&self, i: usize) -> &BinaryRelation {
        &self.relations[i]
    }

    /// Mutable access to relation `i`.
    pub fn relation_mut(&mut self, i: usize) -> &mut BinaryRelation {
        &mut self.relations[i]
    }

    /// Inserts a base tuple.
    pub fn insert(&mut self, i: usize, l: impl Into<Value>, r: impl Into<Value>) -> bool {
        self.relations[i].insert(l, r)
    }

    /// Removes a base tuple.
    pub fn remove(&mut self, t: &BaseTuple) -> bool {
        self.relations[t.0].remove(&t.1 .0, &t.1 .1)
    }

    /// Applies a set of deletions.
    pub fn apply_deletions(&mut self, ts: &[BaseTuple]) {
        for t in ts {
            self.remove(t);
        }
    }

    /// Applies a set of insertions.
    pub fn apply_insertions(&mut self, ts: &[BaseTuple]) {
        for (i, (l, r)) in ts {
            self.relations[*i].insert(l.clone(), r.clone());
        }
    }

    /// Total number of base tuples (the "number of facts" of `[9]`).
    pub fn fact_count(&self) -> usize {
        self.relations.iter().map(BinaryRelation::len).sum()
    }

    /// Materialises the view `π_{A₀ A_k}(r₁ ⋈ … ⋈ r_k)`.
    pub fn view(&self) -> BTreeSet<(Value, Value)> {
        let mut out = BTreeSet::new();
        for (a, b) in self.relations[0].iter() {
            self.extend_view(1, a, b, &mut out);
        }
        out
    }

    fn extend_view(
        &self,
        depth: usize,
        start: &Value,
        cur: &Value,
        out: &mut BTreeSet<(Value, Value)>,
    ) {
        if depth == self.relations.len() {
            out.insert((start.clone(), cur.clone()));
            return;
        }
        for (l, r) in self.relations[depth].with_left(cur) {
            debug_assert_eq!(l, cur);
            self.extend_view(depth + 1, start, r, out);
        }
    }

    /// All join chains witnessing the view tuple `(x, y)`: each chain is
    /// one base tuple per relation, adjacent tuples sharing the join
    /// value.
    pub fn chains_for(&self, x: &Value, y: &Value) -> Vec<Vec<BaseTuple>> {
        let mut out = Vec::new();
        let mut acc = Vec::new();
        self.chains_rec(0, x, y, &mut acc, &mut out);
        out
    }

    fn chains_rec(
        &self,
        depth: usize,
        cur: &Value,
        goal: &Value,
        acc: &mut Vec<BaseTuple>,
        out: &mut Vec<Vec<BaseTuple>>,
    ) {
        let last = depth + 1 == self.relations.len();
        let candidates: Vec<(Value, Value)> =
            self.relations[depth].with_left(cur).cloned().collect();
        for (l, r) in candidates {
            if last && &r != goal {
                continue;
            }
            acc.push((depth, (l.clone(), r.clone())));
            if last {
                out.push(acc.clone());
            } else {
                self.chains_rec(depth + 1, &r, goal, acc, out);
            }
            acc.pop();
        }
    }

    /// Every value appearing on the relevant sides of the boundary between
    /// relation `i−1` and relation `i` (candidate intermediate values for
    /// insert translations), 1 ≤ i ≤ k−1.
    pub fn boundary_values(&self, i: usize) -> BTreeSet<Value> {
        let mut vals = BTreeSet::new();
        for (_, r) in self.relations[i - 1].iter() {
            vals.insert(r.clone());
        }
        for (l, _) in self.relations[i].iter() {
            vals.insert(l.clone());
        }
        vals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Value {
        Value::atom(s)
    }

    /// The §3.1 instance: r1 = {a1b1, a1b2}, r2 = {b1c1, b2c1},
    /// r3 = {c1d1}; v1 = {(a1, d1)}.
    pub(crate) fn paper_31() -> ChainDb {
        let mut db = ChainDb::new(3);
        db.insert(0, "a1", "b1");
        db.insert(0, "a1", "b2");
        db.insert(1, "b1", "c1");
        db.insert(1, "b2", "c1");
        db.insert(2, "c1", "d1");
        db
    }

    #[test]
    fn view_of_paper_instance() {
        let db = paper_31();
        let view = db.view();
        assert_eq!(view.len(), 1);
        assert!(view.contains(&(v("a1"), v("d1"))));
    }

    #[test]
    fn chains_for_view_tuple() {
        let db = paper_31();
        let chains = db.chains_for(&v("a1"), &v("d1"));
        assert_eq!(chains.len(), 2); // via b1 and via b2
        for c in &chains {
            assert_eq!(c.len(), 3);
            assert_eq!(c[0].1 .0, v("a1"));
            assert_eq!(c[2].1 .1, v("d1"));
        }
    }

    #[test]
    fn removing_shared_tail_kills_view() {
        let mut db = paper_31();
        db.remove(&(2, (v("c1"), v("d1"))));
        assert!(db.view().is_empty());
        assert!(db.chains_for(&v("a1"), &v("d1")).is_empty());
    }

    #[test]
    fn fact_count() {
        assert_eq!(paper_31().fact_count(), 5);
    }

    #[test]
    fn boundary_values_cover_both_sides() {
        let db = paper_31();
        let b1 = db.boundary_values(1);
        assert!(b1.contains(&v("b1")));
        assert!(b1.contains(&v("b2")));
        let b2 = db.boundary_values(2);
        assert_eq!(b2.len(), 1);
        assert!(b2.contains(&v("c1")));
    }

    #[test]
    fn two_relation_chain_view() {
        let mut db = ChainDb::new(2);
        db.insert(0, "euclid", "math");
        db.insert(0, "laplace", "math");
        db.insert(1, "math", "john");
        db.insert(1, "math", "bill");
        let view = db.view();
        assert_eq!(view.len(), 4);
    }
}
