//! Side-effect measurement — the "goodness" metric of §3.1.
//!
//! "The 'goodness' of the approximation is measured by quantifying the
//! undesirable side effect." For a delete of view tuple `t`, the side
//! effect of a translation is the set of *other* view tuples that changed
//! (disappeared or appeared); for an insert, the set of view tuples other
//! than `t` that appeared or disappeared.

use std::collections::BTreeSet;

use fdb_types::Value;

use crate::baselines::Translation;
use crate::chain_db::ChainDb;

/// Side effects of a translation on the view.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SideEffects {
    /// View tuples (≠ the updated one) that vanished.
    pub lost: BTreeSet<(Value, Value)>,
    /// View tuples (≠ the updated one) that appeared.
    pub gained: BTreeSet<(Value, Value)>,
    /// `true` if the translation failed to achieve the requested effect.
    pub effect_missed: bool,
}

impl SideEffects {
    /// Total number of collateral view changes.
    pub fn count(&self) -> usize {
        self.lost.len() + self.gained.len()
    }

    /// `true` when the translation is "correct" in the `[6]` sense.
    pub fn is_side_effect_free(&self) -> bool {
        self.count() == 0 && !self.effect_missed
    }
}

fn diff(
    before: &BTreeSet<(Value, Value)>,
    after: &BTreeSet<(Value, Value)>,
    target: &(Value, Value),
) -> SideEffects {
    let mut s = SideEffects::default();
    for t in before.difference(after) {
        if t != target {
            s.lost.insert(t.clone());
        }
    }
    for t in after.difference(before) {
        if t != target {
            s.gained.insert(t.clone());
        }
    }
    s
}

/// Applies `translation` to a copy of `db` and measures the side effects
/// of deleting view tuple `(x, y)`.
pub fn delete_side_effects(
    db: &ChainDb,
    translation: &Translation,
    x: &Value,
    y: &Value,
) -> SideEffects {
    let before = db.view();
    let mut trial = db.clone();
    translation.apply(&mut trial);
    let after = trial.view();
    let target = (x.clone(), y.clone());
    let mut s = diff(&before, &after, &target);
    s.effect_missed = after.contains(&target);
    s
}

/// Applies `translation` to a copy of `db` and measures the side effects
/// of inserting view tuple `(x, y)`.
pub fn insert_side_effects(
    db: &ChainDb,
    translation: &Translation,
    x: &Value,
    y: &Value,
) -> SideEffects {
    let before = db.view();
    let mut trial = db.clone();
    translation.apply(&mut trial);
    let after = trial.view();
    let target = (x.clone(), y.clone());
    let mut s = diff(&before, &after, &target);
    s.effect_missed = !after.contains(&target);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{dayal_bernstein_delete, fuv_delete, naive_delete};

    fn v(s: &str) -> Value {
        Value::atom(s)
    }

    fn pupil_db() -> ChainDb {
        let mut db = ChainDb::new(2);
        db.insert(0, "euclid", "math");
        db.insert(0, "laplace", "math");
        db.insert(0, "laplace", "physics");
        db.insert(1, "math", "john");
        db.insert(1, "math", "bill");
        db
    }

    #[test]
    fn naive_delete_side_effects_match_paper() {
        // §3: deleting <euclid, math> collaterally deletes pupil(euclid,
        // bill); deleting <math, john> collaterally deletes pupil(laplace,
        // john).
        let db = pupil_db();
        let t = naive_delete(&db, &v("euclid"), &v("john")).unwrap();
        let s = delete_side_effects(&db, &t, &v("euclid"), &v("john"));
        assert!(!s.effect_missed);
        assert_eq!(s.count(), 1);
        let lost: Vec<_> = s.lost.iter().cloned().collect();
        assert!(lost == vec![(v("euclid"), v("bill"))] || lost == vec![(v("laplace"), v("john"))]);
    }

    #[test]
    fn fuv_delete_has_measured_side_effects_here() {
        let db = pupil_db();
        let t = fuv_delete(&db, &v("euclid"), &v("john")).unwrap();
        let s = delete_side_effects(&db, &t, &v("euclid"), &v("john"));
        assert!(!s.effect_missed);
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn db_delete_when_accepted_is_side_effect_free() {
        // Single-chain instance: DB accepts and is clean.
        let mut db = ChainDb::new(2);
        db.insert(0, "euclid", "math");
        db.insert(1, "math", "john");
        let t = dayal_bernstein_delete(&db, &v("euclid"), &v("john")).unwrap();
        let s = delete_side_effects(&db, &t, &v("euclid"), &v("john"));
        assert!(s.is_side_effect_free());
    }

    #[test]
    fn effect_missed_detection() {
        let db = pupil_db();
        // An empty translation misses the effect.
        let t = Translation {
            deletions: vec![],
            insertions: vec![],
        };
        let s = delete_side_effects(&db, &t, &v("euclid"), &v("john"));
        assert!(s.effect_missed);
        assert_eq!(s.count(), 0);
    }
}
