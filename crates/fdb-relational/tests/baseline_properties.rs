//! Correctness properties of the baseline view-update translators, on
//! random chain databases.

use proptest::prelude::*;

use fdb_relational::{
    dayal_bernstein_delete, dayal_bernstein_insert, delete_side_effects, fuv_delete, fuv_insert,
    insert_side_effects, naive_delete, naive_insert, ChainDb,
};
use fdb_types::Value;

/// Random chain database: k ∈ {2, 3}, small dense domains so views are
/// non-trivial but the combinatorial searches stay fast.
fn arb_chain_db() -> impl Strategy<Value = (ChainDb, Vec<(Value, Value)>)> {
    (2usize..=3, 1usize..12, 2usize..4).prop_flat_map(|(k, tuples, domain)| {
        proptest::collection::vec((0..k, 0..domain, 0..domain), tuples).prop_map(move |entries| {
            let mut db = ChainDb::new(k);
            for (rel, l, r) in entries {
                db.insert(rel, format!("v{rel}#{l}"), format!("v{}#{r}", rel + 1));
            }
            let view: Vec<(Value, Value)> = db.view().into_iter().collect();
            (db, view)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dayal–Bernstein deletes, when accepted, are correct by definition:
    /// effect achieved, zero view side effects.
    #[test]
    fn db_deletes_are_correct((db, view) in arb_chain_db()) {
        for (x, y) in view.iter().take(3) {
            if let Some(t) = dayal_bernstein_delete(&db, x, y) {
                let s = delete_side_effects(&db, &t, x, y);
                prop_assert!(s.is_side_effect_free());
            }
        }
    }

    /// FUV deletes achieve the effect and are minimal: no proper subset of
    /// the returned deletions removes the view tuple.
    #[test]
    fn fuv_deletes_achieve_effect_minimally((db, view) in arb_chain_db()) {
        for (x, y) in view.iter().take(3) {
            let t = fuv_delete(&db, x, y).expect("tuple is in the view");
            let s = delete_side_effects(&db, &t, x, y);
            prop_assert!(!s.effect_missed);
            for skip in 0..t.deletions.len() {
                let mut trial = db.clone();
                for (i, d) in t.deletions.iter().enumerate() {
                    if i != skip {
                        trial.remove(d);
                    }
                }
                prop_assert!(
                    trial.view().contains(&(x.clone(), y.clone())),
                    "a proper subset already removed the tuple: not minimal"
                );
            }
        }
    }

    /// Naive deletes remove one base tuple; they achieve the effect when
    /// the view tuple has a single witnessing chain, and can *miss* it
    /// when several chains witness the tuple — part of what makes the
    /// translation naive.
    #[test]
    fn naive_deletes_single_chain_behaviour((db, view) in arb_chain_db()) {
        for (x, y) in view.iter().take(3) {
            let t = naive_delete(&db, x, y).expect("tuple is in the view");
            prop_assert_eq!(t.deletions.len(), 1);
            let s = delete_side_effects(&db, &t, x, y);
            if db.chains_for(x, y).len() == 1 {
                prop_assert!(!s.effect_missed);
            }
        }
    }

    /// All insert translators achieve the effect; skolem (naive) inserts
    /// are side-effect free; DB inserts, when accepted, are side-effect
    /// free; FUV inserts never cost more than the naive full chain.
    #[test]
    fn insert_translators_achieve_effect((db, _view) in arb_chain_db()) {
        let mut seq = 0u64;
        let x = Value::atom("v0#fresh");
        let y = Value::atom(format!("v{}#0", db.arity()));
        let tn = naive_insert(&db, &x, &y, &mut seq);
        let sn = insert_side_effects(&db, &tn, &x, &y);
        prop_assert!(!sn.effect_missed);
        prop_assert_eq!(sn.count(), 0, "skolem chains never add other view tuples");
        prop_assert_eq!(tn.cost(), db.arity());

        let tf = fuv_insert(&db, &x, &y, &mut seq);
        let sf = insert_side_effects(&db, &tf, &x, &y);
        prop_assert!(!sf.effect_missed);
        prop_assert!(tf.cost() <= tn.cost());

        if let Some(td) = dayal_bernstein_insert(&db, &x, &y, &mut seq) {
            let sd = insert_side_effects(&db, &td, &x, &y);
            prop_assert!(sd.is_side_effect_free());
            prop_assert!(td.cost() <= tf.cost(),
                "DB picks among minimal completions only");
        }
    }

    /// The view is exactly the endpoints of the chains: consistency of the
    /// two traversal implementations.
    #[test]
    fn view_and_chains_agree((db, view) in arb_chain_db()) {
        for (x, y) in &view {
            prop_assert!(!db.chains_for(x, y).is_empty());
        }
        // And chains never witness a non-view pair (spot-check endpoints
        // built from the active boundary values).
        let probe_x = Value::atom("v0#0");
        let probe_y = Value::atom(format!("v{}#0", db.arity()));
        let in_view = view.contains(&(probe_x.clone(), probe_y.clone()));
        prop_assert_eq!(!db.chains_for(&probe_x, &probe_y).is_empty(), in_view);
    }
}
