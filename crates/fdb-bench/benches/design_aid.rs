//! E8 — Method 2.1 cost: polynomial on acyclic graphs, exponential cycle
//! enumeration on cyclic ones.
//!
//! * `design_acyclic/*` grows acyclic schemas: per §2.2, each addition
//!   finds at most one cycle in `O(n)`, the whole session `O(n³)`
//!   worst-case (our measured growth is gentler because the paths are
//!   short).
//! * `design_ladder/*` grows a `width`-parallel ladder where the number
//!   of simple cycles created by the closing edges is `widthᵐ` — the
//!   exponential case the paper warns about. Enumeration runs unbounded
//!   to expose the blow-up; sizes are kept small.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use fdb_graph::{DesignConfig, DesignSession, FirstCandidateDesigner, KeepAllDesigner, PathLimits};
use fdb_types::Schema;
use fdb_workload::Topology;

fn run_session(schema: &Schema, keep_all: bool, config: DesignConfig) {
    let mut session = DesignSession::with_config(config);
    let mut first = FirstCandidateDesigner;
    let mut keep = KeepAllDesigner;
    for def in schema.functions() {
        let designer: &mut dyn fdb_graph::Designer = if keep_all { &mut keep } else { &mut first };
        session
            .add_function(
                &def.name,
                schema.type_name(def.domain),
                schema.type_name(def.range),
                def.functionality,
                designer,
            )
            .expect("bench schemas replay cleanly");
    }
    std::hint::black_box(session.base_functions());
}

fn bench_design(c: &mut Criterion) {
    let mut group = c.benchmark_group("design_acyclic");
    group.sample_size(20);
    for topo in [Topology::Path, Topology::Tree] {
        for n in [16usize, 32, 64, 128, 256] {
            let schema = topo.build(n);
            group.throughput(Throughput::Elements(n as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("{topo:?}"), n),
                &schema,
                |b, schema| b.iter(|| run_session(schema, false, DesignConfig::default())),
            );
        }
    }
    group.finish();

    // Cyclic case A: the designer breaks every cycle (graph stays thin;
    // each addition's cycle set stays small) — the paper's intended
    // acyclic-maintenance mode.
    let mut group = c.benchmark_group("design_ladder_breaking");
    group.sample_size(20);
    for rungs in [4usize, 8, 16, 32] {
        let schema = Topology::Ladder { width: 3 }.build(rungs * 3);
        group.throughput(Throughput::Elements((rungs * 3) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(rungs), &schema, |b, schema| {
            b.iter(|| run_session(schema, false, DesignConfig::default()))
        });
    }
    group.finish();

    // Cyclic case B: the designer keeps every cycle (KeepAll), the graph
    // stays a 2-wide ladder, and the final function closes the ladder end
    // to end — the 2^m simple paths between its endpoints each become a
    // cycle, so unbounded enumeration is exponential in the rung count m
    // ("addition of an edge may result in an exponential number of
    // cycles", §2.2). Small sizes only.
    let mut group = c.benchmark_group("design_ladder_keep_all");
    group.sample_size(10);
    for rungs in [4usize, 6, 8, 10, 12] {
        let mut schema = Topology::Ladder { width: 2 }.build(rungs * 2);
        schema
            .declare(
                "close",
                "t0",
                &format!("t{rungs}"),
                fdb_types::Functionality::ManyMany,
            )
            .unwrap();
        let config = DesignConfig {
            cycle_limits: PathLimits::unbounded_for_benchmarks(),
            derivation_limits: PathLimits::unbounded_for_benchmarks(),
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(rungs),
            &(schema, config),
            |b, (schema, config)| b.iter(|| run_session(schema, true, *config)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_design);
criterion_main!(benches);
