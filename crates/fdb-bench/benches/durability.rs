//! Durability trade-offs: append throughput per `SyncPolicy`, recovery
//! latency per checkpoint interval.
//!
//! * `append_100/<policy>` — time to drive 100 logged inserts through a
//!   fresh `LoggedDatabase` on the real filesystem. `Always` pays an
//!   fsync per record; `EveryN` amortises it; `OnCheckpoint` defers it
//!   entirely.
//! * `recovery/<interval>` — time for `open_with` to recover a
//!   600-record log laid down with the given checkpoint interval. Tight
//!   intervals replay a short suffix from a recent snapshot; `none`
//!   replays every record from scratch.

use std::path::PathBuf;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use fdb_core::{DurabilityConfig, FileStorage, LoggedDatabase, SyncPolicy, WalStorage};
use fdb_types::{Functionality, Value};

fn v(s: String) -> Value {
    Value::atom(s)
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "fdb_bench_durability_{}_{tag}_{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn setup(dir: &PathBuf, config: DurabilityConfig) -> LoggedDatabase {
    let storage: Arc<dyn WalStorage> = Arc::new(FileStorage);
    let mut ldb = LoggedDatabase::create_with(storage, dir, config).unwrap();
    ldb.declare("teach", "faculty", "course", Functionality::ManyMany)
        .unwrap();
    ldb.declare("class_list", "course", "student", Functionality::ManyMany)
        .unwrap();
    ldb.declare("pupil", "faculty", "student", Functionality::ManyMany)
        .unwrap();
    ldb.derive("pupil", &[("teach", false), ("class_list", false)])
        .unwrap();
    ldb
}

fn bench_append_throughput(c: &mut Criterion) {
    let policies: [(&str, SyncPolicy); 4] = [
        ("always", SyncPolicy::Always),
        ("every16", SyncPolicy::EveryN(16)),
        ("every64", SyncPolicy::EveryN(64)),
        ("on_checkpoint", SyncPolicy::OnCheckpoint),
    ];
    let mut group = c.benchmark_group("append_100");
    group.sample_size(20);
    for (name, policy) in policies {
        let dir = fresh_dir(name);
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    setup(
                        &dir,
                        DurabilityConfig {
                            sync_policy: policy,
                            checkpoint_every: None,
                            segment_max_bytes: 4 * 1024 * 1024,
                        },
                    )
                },
                |mut ldb| {
                    for i in 0..100u32 {
                        ldb.insert("teach", v(format!("p{i}")), v(format!("c{i}")))
                            .unwrap();
                    }
                    ldb
                },
                BatchSize::PerIteration,
            );
        });
        std::fs::remove_dir_all(&dir).ok();
    }
    group.finish();
}

fn bench_recovery_latency(c: &mut Criterion) {
    let intervals: [(&str, Option<u64>); 3] =
        [("ckpt64", Some(64)), ("ckpt256", Some(256)), ("none", None)];
    let mut group = c.benchmark_group("recovery_600");
    group.sample_size(20);
    for (name, checkpoint_every) in intervals {
        let config = DurabilityConfig {
            sync_policy: SyncPolicy::EveryN(64),
            checkpoint_every,
            segment_max_bytes: 64 * 1024,
        };
        let dir = fresh_dir(name);
        // Lay down the log once; recovery is read-only so it can be
        // re-measured against the same directory.
        let mut ldb = setup(&dir, config);
        for i in 0..600u32 {
            let (x, y) = (format!("p{}", i % 40), format!("c{}", i % 25));
            if i % 5 == 4 {
                ldb.delete("pupil", v(x), v(y)).unwrap();
            } else {
                ldb.insert("teach", v(x), v(y)).unwrap();
            }
        }
        ldb.sync().unwrap();
        drop(ldb);

        group.bench_function(name, |b| {
            b.iter(|| {
                let storage: Arc<dyn WalStorage> = Arc::new(FileStorage);
                let (recovered, report) = LoggedDatabase::open_with(storage, &dir, config).unwrap();
                assert!(report.corruption.is_empty());
                recovered.database().stats().base_facts
            });
        });
        std::fs::remove_dir_all(&dir).ok();
    }
    group.finish();
}

criterion_group!(benches, bench_append_throughput, bench_recovery_latency);
criterion_main!(benches);
