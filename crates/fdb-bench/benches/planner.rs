//! Planner vs interpreter on derived evaluation (E12).
//!
//! The recorded claim: on the inverse-heavy bound-right-endpoint
//! workload the cost-based backward plan beats the forward interpreter
//! by ≥5× median, because the interpreter fans out through every
//! inverse image of the hub while the plan walks one chain back from
//! the rare endpoint. `bin/planner_report` regenerates the committed
//! `BENCH_planner.json` baseline from the same workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use fdb_bench::inverse_heavy_db;
use fdb_storage::{chain, ChainLimits, Truth};
use fdb_types::Value;

fn bench_planner(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner_vs_interpreter_truth");
    group.sample_size(30);
    for n in [500usize, 2_000] {
        let db = inverse_heavy_db(n);
        let top = db.resolve("top").unwrap();
        let derivations = db.derivations(top).to_vec();
        let (hub, t0) = (Value::atom("hub"), Value::atom("t0"));
        let limits = ChainLimits::default();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("interpreter", n), &db, |b, db| {
            b.iter(|| {
                assert_eq!(
                    chain::derived_truth(db.store(), &derivations, &hub, &t0, limits),
                    Truth::True
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("planner", n), &db, |b, db| {
            b.iter(|| {
                assert_eq!(
                    fdb_exec::derived_truth(db.store(), &derivations, &hub, &t0, limits),
                    Truth::True
                )
            })
        });
    }
    group.finish();

    // Extension of the same derived function: both paths enumerate every
    // chain, so this guards against the executor regressing the
    // unbound case while winning the bound one.
    let mut group = c.benchmark_group("planner_vs_interpreter_extension");
    group.sample_size(20);
    let db = inverse_heavy_db(500);
    let top = db.resolve("top").unwrap();
    let derivations = db.derivations(top).to_vec();
    let limits = ChainLimits::default();
    group.bench_function("interpreter", |b| {
        b.iter(|| chain::derived_extension(db.store(), &derivations, limits))
    });
    group.bench_function("planner", |b| {
        b.iter(|| fdb_exec::derived_extension(db.store(), &derivations, limits))
    });
    group.finish();
}

criterion_group!(benches, bench_planner);
criterion_main!(benches);
