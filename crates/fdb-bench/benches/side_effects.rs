//! E9 — side-effect comparison: translation cost of view deletes under
//! naive / Dayal–Bernstein / Fagin–Ullman–Vardi semantics versus the
//! fdb NC/NVC derived delete.
//!
//! Timing is secondary here (the `[6]`/`[9]` searches are combinatorial
//! by specification); the headline numbers — side-effect counts and
//! rejection rates, which must be 0/0 for fdb — are produced by
//! `cargo run -p fdb-bench --bin side_effects_report --release`.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

use fdb_core::Database;
use fdb_relational::{dayal_bernstein_delete, fuv_delete, naive_delete};
use fdb_types::{Derivation, Schema, Step};
use fdb_workload::chain_db_workload;

fn mirror_fdb(db: &fdb_relational::ChainDb) -> Database {
    let schema = Schema::builder()
        .function("r1", "A", "B", "many-many")
        .function("r2", "B", "C", "many-many")
        .function("view", "A", "C", "many-many")
        .build()
        .unwrap();
    let mut fdb = Database::new(schema);
    let (r1, r2, view) = (
        fdb.resolve("r1").unwrap(),
        fdb.resolve("r2").unwrap(),
        fdb.resolve("view").unwrap(),
    );
    fdb.register_derived(
        view,
        vec![Derivation::new(vec![Step::identity(r1), Step::identity(r2)]).unwrap()],
    )
    .unwrap();
    for i in 0..2 {
        let f = if i == 0 { r1 } else { r2 };
        for (l, r) in db.relation(i).iter() {
            fdb.insert(f, l.clone(), r.clone()).unwrap();
        }
    }
    fdb
}

fn bench_side_effects(c: &mut Criterion) {
    for tuples in [50usize, 200] {
        let db = chain_db_workload(0xE9, 2, tuples, (tuples / 5).max(4));
        let view: Vec<_> = db.view().into_iter().collect();
        let (x, y) = view.first().expect("workload view non-empty").clone();
        let fdb = mirror_fdb(&db);
        let view_fn = fdb.resolve("view").unwrap();

        let mut group = c.benchmark_group(format!("view_delete_{tuples}"));
        group.sample_size(20);

        group.bench_function(BenchmarkId::new("naive", tuples), |b| {
            b.iter(|| naive_delete(&db, &x, &y))
        });
        group.bench_function(BenchmarkId::new("dayal_bernstein", tuples), |b| {
            b.iter(|| dayal_bernstein_delete(&db, &x, &y))
        });
        group.bench_function(BenchmarkId::new("fagin_ullman_vardi", tuples), |b| {
            b.iter(|| fuv_delete(&db, &x, &y))
        });
        group.bench_function(BenchmarkId::new("fdb_nc_nvc", tuples), |b| {
            b.iter_batched(
                || fdb.clone(),
                |mut d| {
                    d.delete(view_fn, &x, &y).unwrap();
                    d
                },
                BatchSize::LargeInput,
            )
        });
        group.finish();
    }
}

criterion_group!(benches, bench_side_effects);
criterion_main!(benches);
