//! E10 — update-operation microbenchmarks.
//!
//! Cost of each §4.1 procedure against instance size: `base-insert`,
//! `base-delete`, `derived-insert` (NVC creation and clean-up),
//! `derived-delete` (chain enumeration + NC creation), and the ambiguity
//! bookkeeping (`dismantle-NC` through conflicting inserts).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

use fdb_core::Database;
use fdb_types::{Derivation, Schema, Step, Value};
use fdb_workload::populate;

fn university_db(seed: u64, facts: usize, domain: usize) -> Database {
    let schema = Schema::builder()
        .function("teach", "faculty", "course", "many-many")
        .function("class_list", "course", "student", "many-many")
        .function("pupil", "faculty", "student", "many-many")
        .build()
        .unwrap();
    let mut db = Database::new(schema);
    let (t, c, p) = (
        db.resolve("teach").unwrap(),
        db.resolve("class_list").unwrap(),
        db.resolve("pupil").unwrap(),
    );
    db.register_derived(
        p,
        vec![Derivation::new(vec![Step::identity(t), Step::identity(c)]).unwrap()],
    )
    .unwrap();
    populate(&mut db, seed, facts, domain);
    db
}

fn v(s: String) -> Value {
    Value::atom(s)
}

fn bench_updates(c: &mut Criterion) {
    for size in [1_000usize, 10_000] {
        let domain = (size / 10).max(8);
        let base = university_db(7, size, domain);
        let teach = base.resolve("teach").unwrap();
        let pupil = base.resolve("pupil").unwrap();

        let mut group = c.benchmark_group(format!("updates_{size}"));
        group.sample_size(30);

        group.bench_function(BenchmarkId::new("base_insert", size), |b| {
            let mut i = 0u64;
            b.iter_batched(
                || base.clone(),
                |mut db| {
                    i += 1;
                    db.insert(
                        teach,
                        v(format!("faculty#new{i}")),
                        v(format!("course#new{i}")),
                    )
                    .unwrap();
                    db
                },
                BatchSize::LargeInput,
            )
        });

        group.bench_function(BenchmarkId::new("base_delete", size), |b| {
            // Delete an existing fact (the first row).
            let (x, y) = {
                let row = base.store().table(teach).rows().next().unwrap();
                (row.x.clone(), row.y.clone())
            };
            b.iter_batched(
                || base.clone(),
                |mut db| {
                    db.delete(teach, &x, &y).unwrap();
                    db
                },
                BatchSize::LargeInput,
            )
        });

        group.bench_function(BenchmarkId::new("derived_insert_fresh", size), |b| {
            let mut i = 0u64;
            b.iter_batched(
                || base.clone(),
                |mut db| {
                    i += 1;
                    db.insert(
                        pupil,
                        v(format!("faculty#new{i}")),
                        v(format!("student#new{i}")),
                    )
                    .unwrap();
                    db
                },
                BatchSize::LargeInput,
            )
        });

        group.bench_function(BenchmarkId::new("derived_insert_cleanup", size), |b| {
            // Second insert of the same derived fact: exists-NVC + clean-up.
            let mut seeded = base.clone();
            seeded
                .insert(pupil, v("faculty#nvc".into()), v("student#nvc".into()))
                .unwrap();
            b.iter_batched(
                || seeded.clone(),
                |mut db| {
                    db.insert(pupil, v("faculty#nvc".into()), v("student#nvc".into()))
                        .unwrap();
                    db
                },
                BatchSize::LargeInput,
            )
        });

        group.bench_function(BenchmarkId::new("derived_delete", size), |b| {
            // Delete a derived fact that actually has chains.
            let ext = base.extension(pupil).unwrap();
            let target = ext.first().expect("populated instance has pupils").clone();
            b.iter_batched(
                || base.clone(),
                |mut db| {
                    db.delete(pupil, &target.x, &target.y).unwrap();
                    db
                },
                BatchSize::LargeInput,
            )
        });

        group.bench_function(BenchmarkId::new("truth_query_derived", size), |b| {
            let ext = base.extension(pupil).unwrap();
            let target = ext.first().unwrap().clone();
            b.iter(|| base.truth(pupil, &target.x, &target.y).unwrap())
        });

        group.finish();
    }
}

criterion_group!(benches, bench_updates);
criterion_main!(benches);
