//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **delete policy** — `Faithful` (the paper: negate exact chains only)
//!   vs `Strict` (also negate ambiguous chains): cost of the extra chain
//!   enumeration, on instances with many null links;
//! * **materialised extensions** — pull-based truth queries vs the
//!   version-checked cache, on read-heavy workloads;
//! * **insert policy** — `FirstDerivation` (longer NVCs) vs
//!   `ShortestDerivation` on a diamond schema.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

use fdb_core::database::InsertPolicy;
use fdb_core::{Database, MaterializedExtension};
use fdb_storage::chain::DeletePolicy;
use fdb_types::{Derivation, Schema, Step, Value};

fn v(s: String) -> Value {
    Value::atom(s)
}

/// University instance with `n` NVC-backed derived inserts (lots of null
/// links for ambiguous matching to chew on).
fn nullful_university(n: usize) -> Database {
    let schema = Schema::builder()
        .function("teach", "faculty", "course", "many-many")
        .function("class_list", "course", "student", "many-many")
        .function("pupil", "faculty", "student", "many-many")
        .build()
        .unwrap();
    let mut db = Database::new(schema);
    let (t, c, p) = (
        db.resolve("teach").unwrap(),
        db.resolve("class_list").unwrap(),
        db.resolve("pupil").unwrap(),
    );
    db.register_derived(
        p,
        vec![Derivation::new(vec![Step::identity(t), Step::identity(c)]).unwrap()],
    )
    .unwrap();
    for i in 0..n {
        db.insert(t, v(format!("prof{i}")), v(format!("course{}", i % 10)))
            .unwrap();
        db.insert(c, v(format!("course{}", i % 10)), v(format!("stud{i}")))
            .unwrap();
        db.insert(p, v(format!("ghost{i}")), v(format!("stud{i}")))
            .unwrap(); // NVC
    }
    db
}

fn bench_ablations(c: &mut Criterion) {
    // --- delete policy ---
    let mut group = c.benchmark_group("delete_policy");
    group.sample_size(20);
    for n in [50usize, 200] {
        let base = nullful_university(n);
        let pupil = base.resolve("pupil").unwrap();
        for policy in [DeletePolicy::Faithful, DeletePolicy::Strict] {
            group.bench_with_input(
                BenchmarkId::new(format!("{policy:?}"), n),
                &base,
                |b, base| {
                    b.iter_batched(
                        || {
                            let mut db = base.clone();
                            db.set_delete_policy(policy);
                            db
                        },
                        |mut db| {
                            db.delete(pupil, &v("prof0".into()), &v("stud0".into()))
                                .unwrap();
                            db
                        },
                        BatchSize::LargeInput,
                    )
                },
            );
        }
    }
    group.finish();

    // --- materialised extension vs live truth queries ---
    let mut group = c.benchmark_group("materialized_vs_live");
    group.sample_size(20);
    for n in [100usize, 400] {
        let db = nullful_university(n);
        let pupil = db.resolve("pupil").unwrap();
        let probes: Vec<(Value, Value)> = (0..50)
            .map(|i| (v(format!("prof{i}")), v(format!("stud{i}"))))
            .collect();
        group.bench_with_input(BenchmarkId::new("live", n), &db, |b, db| {
            b.iter(|| {
                probes
                    .iter()
                    .map(|(x, y)| db.truth(pupil, x, y).unwrap())
                    .filter(|t| *t == fdb_storage::Truth::True)
                    .count()
            })
        });
        let cache = MaterializedExtension::new(&db, pupil).unwrap();
        group.bench_with_input(BenchmarkId::new("materialized", n), &cache, |b, cache| {
            b.iter(|| {
                probes
                    .iter()
                    .map(|(x, y)| cache.truth(x, y))
                    .filter(|t| *t == fdb_storage::Truth::True)
                    .count()
            })
        });
    }
    group.finish();

    // --- insert policy on the diamond schema ---
    let mut group = c.benchmark_group("insert_policy");
    group.sample_size(30);
    let diamond = {
        let schema = Schema::builder()
            .function("hop1", "a", "b", "many-many")
            .function("hop2", "b", "c", "many-many")
            .function("direct", "a", "c", "many-many")
            .function("reaches", "a", "c", "many-many")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        let (h1, h2, d, r) = (
            db.resolve("hop1").unwrap(),
            db.resolve("hop2").unwrap(),
            db.resolve("direct").unwrap(),
            db.resolve("reaches").unwrap(),
        );
        db.register_derived(
            r,
            vec![
                Derivation::new(vec![Step::identity(h1), Step::identity(h2)]).unwrap(),
                Derivation::single(Step::identity(d)),
            ],
        )
        .unwrap();
        db
    };
    let reaches = diamond.resolve("reaches").unwrap();
    for policy in [
        InsertPolicy::FirstDerivation,
        InsertPolicy::ShortestDerivation,
    ] {
        group.bench_function(BenchmarkId::new(format!("{policy:?}"), 1), |b| {
            let mut i = 0u64;
            b.iter_batched(
                || {
                    let mut db = diamond.clone();
                    db.set_insert_policy(policy);
                    db
                },
                |mut db| {
                    i += 1;
                    db.insert(reaches, v(format!("x{i}")), v(format!("z{i}")))
                        .unwrap();
                    db
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
