//! E7 — Lemma 3: Algorithm AMS runs in `O(n²)`.
//!
//! Times `minimal_schema` across schema sizes and topologies. The series
//! over `n` is the paper's (implicit) figure; the fitted exponent is
//! extracted by `cargo run -p fdb-bench --bin scaling --release`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use fdb_graph::minimal_schema;
use fdb_workload::{SchemaGenConfig, Topology};

fn bench_ams(c: &mut Criterion) {
    let mut group = c.benchmark_group("ams_minimal_schema");
    group.sample_size(20);
    for topo in [Topology::Path, Topology::Tree, Topology::Grid] {
        for n in [16usize, 32, 64, 128, 256] {
            let schema = topo.build(n);
            group.throughput(Throughput::Elements(n as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("{topo:?}"), n),
                &schema,
                |b, schema| b.iter(|| minimal_schema(schema)),
            );
        }
    }
    group.finish();

    // Random dense schemas stress the classification with many candidate
    // walks per edge.
    let mut group = c.benchmark_group("ams_random_schema");
    group.sample_size(20);
    for n in [16usize, 32, 64, 128] {
        let schema = SchemaGenConfig {
            n_functions: n,
            n_types: (n / 4).max(2),
            seed: 0xA115,
        }
        .generate();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &schema, |b, schema| {
            b.iter(|| minimal_schema(schema))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ams);
criterion_main!(benches);
